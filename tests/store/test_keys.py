"""Key construction: canonical serialization and SHA-256 addressing."""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.store import (
    STORE_SCHEMA_VERSION,
    array_digest,
    canonical_json,
    content_key,
    file_digest,
    result_key,
)


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_separators(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_nan_rejected(self):
        # Payloads must pass to_jsonable first (NaN -> None); a NaN
        # reaching the key layer is a bug, not a silent "NaN" literal.
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_float_round_trip_via_repr(self):
        value = 0.1 + 0.2
        assert canonical_json(value) == repr(value)


class TestContentKey:
    def test_is_sha256_hex(self):
        key = content_key({"a": 1})
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_deterministic_across_orderings(self):
        assert content_key({"x": 1, "y": 2}) == content_key({"y": 2, "x": 1})

    def test_distinct_inputs_distinct_keys(self):
        assert content_key({"a": 1}) != content_key({"a": 2})


class TestArrayDigest:
    def test_sensitive_to_values_shape_dtype(self):
        a = np.arange(6, dtype=float)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a + 1.0)
        assert array_digest(a) != array_digest(a.reshape(2, 3))
        assert array_digest(a) != array_digest(a.astype(np.float32))

    def test_extra_context_changes_digest(self):
        a = np.arange(4.0)
        assert array_digest(a, extra={"parameter": "S"}) != array_digest(
            a, extra={"parameter": "Y"}
        )

    def test_non_contiguous_view_equals_contiguous_copy(self):
        base = np.arange(12, dtype=float).reshape(3, 4)
        view = base[:, ::2]
        assert array_digest(view) == array_digest(np.ascontiguousarray(view))


class TestFileDigest:
    def test_content_addressed_not_path_addressed(self, tmp_path):
        a = tmp_path / "a.s2p"
        b = tmp_path / "b.s2p"
        a.write_bytes(b"identical bytes")
        b.write_bytes(b"identical bytes")
        assert file_digest(a) == file_digest(b)
        b.write_bytes(b"different bytes")
        assert file_digest(a) != file_digest(b)


class TestResultKey:
    def test_cache_control_fields_do_not_enter_the_key(self):
        base = RunConfig(num_threads=2)
        cached = base.merged(cache="readwrite", cache_dir="/tmp/somewhere")
        assert result_key(
            stage="check", input_digest="d" * 64, config=base
        ) == result_key(stage="check", input_digest="d" * 64, config=cached)

    def test_solver_config_does_enter_the_key(self):
        one = RunConfig(num_threads=1)
        two = RunConfig(num_threads=2)
        assert result_key(
            stage="check", input_digest="d" * 64, config=one
        ) != result_key(stage="check", input_digest="d" * 64, config=two)

    def test_stage_params_and_schema_discriminate(self):
        kwargs = dict(input_digest="d" * 64, config=RunConfig())
        base = result_key(stage="check", **kwargs)
        assert base != result_key(stage="hinf", **kwargs)
        assert base != result_key(stage="check", params={"rtol": 1e-6}, **kwargs)
        assert base != result_key(
            stage="check", schema=STORE_SCHEMA_VERSION + 1, **kwargs
        )

    def test_config_free_key(self):
        key = result_key(stage="fit", input_digest="a" * 64, config=None)
        assert len(key) == 64
