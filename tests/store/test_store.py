"""ResultStore behavior: hits, misses, eviction, corruption, concurrency."""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.core.config import ConfigError
from repro.store import STORE_SCHEMA_VERSION, ResultStore, content_key
from repro.store.store import default_max_bytes


def _key(tag) -> str:
    return content_key({"tag": str(tag)})


class TestBasicTraffic:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _key("a")
        assert store.get(key) is None
        assert store.put(key, {"value": 42}, stage="check")
        assert store.get(key) == {"value": 42}
        assert store.counters["misses"] == 1
        assert store.counters["hits"] == 1
        assert store.counters["writes"] == 1

    def test_contains_does_not_count(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _key("a")
        assert not store.contains(key)
        store.put(key, {"v": 1})
        assert store.contains(key)
        assert store.counters["hits"] == 0
        assert store.counters["misses"] == 0

    def test_distinct_instances_share_entries(self, tmp_path):
        ResultStore(tmp_path).put(_key("a"), {"v": 1})
        assert ResultStore(tmp_path).get(_key("a")) == {"v": 1}

    def test_payload_must_be_dict(self, tmp_path):
        with pytest.raises(TypeError):
            ResultStore(tmp_path).put(_key("a"), [1, 2, 3])

    def test_malformed_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path).get("../../etc/passwd")

    @pytest.mark.skipif(
        hasattr(os, "geteuid") and os.geteuid() == 0,
        reason="root ignores file permission bits",
    )
    def test_unwritable_root_is_a_soft_failure(self, tmp_path):
        read_only = tmp_path / "ro"
        read_only.mkdir()
        os.chmod(read_only, 0o500)
        try:
            store = ResultStore(read_only)
            assert store.put(_key("a"), {"v": 1}) is False
        finally:
            os.chmod(read_only, 0o700)


class TestCorruptionRecovery:
    def test_truncated_entry_is_a_miss_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _key("a")
        store.put(key, {"v": 1})
        path = store._entry_path(key)
        path.write_bytes(path.read_bytes()[:10])
        assert store.get(key) is None
        assert store.counters["corrupt"] == 1
        assert not path.exists()
        # The store heals: a rewrite serves again.
        store.put(key, {"v": 2})
        assert store.get(key) == {"v": 2}

    def test_non_json_garbage_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _key("a")
        path = store._entry_path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\xff not json")
        assert store.get(key) is None
        assert not path.exists()

    def test_key_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key_a, key_b = _key("a"), _key("b")
        store.put(key_a, {"v": 1})
        # Copy a's envelope to b's address: the embedded key disagrees.
        path_b = store._entry_path(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(store._entry_path(key_a).read_bytes())
        assert store.get(key_b) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        old = ResultStore(tmp_path, schema=STORE_SCHEMA_VERSION)
        key = _key("a")
        old.put(key, {"v": 1})
        new = ResultStore(tmp_path, schema=STORE_SCHEMA_VERSION + 1)
        assert new.get(key) is None
        assert new.counters["misses"] == 1
        # The stale-schema entry was reclaimed, not left to rot.
        assert not new.contains(key)

    def test_corrupt_index_is_rebuilt_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_key("a"), {"v": 1})
        (tmp_path / "index.json").write_bytes(b"{broken")
        assert store.get(_key("a")) == {"v": 1}
        assert store.stats()["entries"] == 1
        assert store.rebuild_index() == 1
        doc = json.loads((tmp_path / "index.json").read_bytes())
        assert len(doc["entries"]) == 1


class TestEviction:
    def test_lru_eviction_respects_size_cap(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=0)  # unlimited while filling
        payload = {"blob": "x" * 512}
        for i in range(10):
            store.put(_key(i), payload)
            time.sleep(0.01)  # distinct mtimes for a deterministic LRU order
        # Touch the two oldest so they become most-recently-used.
        assert store.get(_key(0)) is not None
        assert store.get(_key(1)) is not None
        time.sleep(0.01)
        sizes = [size for _k, _p, size, _m in store._scan()]
        cap = sum(sizes) - 3 * max(sizes)  # force at least 3 evictions
        removed = store.prune(cap)["removed"]
        assert removed >= 3
        assert store.get(_key(0)) is not None, "recently used entry evicted"
        assert store.get(_key(1)) is not None, "recently used entry evicted"
        assert store.stats()["total_bytes"] <= cap

    def test_put_evicts_beyond_cap(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=2048)
        for i in range(40):
            store.put(_key(i), {"blob": "y" * 256})
        stats = store.stats()
        assert stats["total_bytes"] <= 2048
        assert store.counters["evictions"] > 0

    def test_prune_zero_empties_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(4):
            store.put(_key(i), {"v": i})
        summary = store.prune(0)
        assert summary["removed"] == 4
        assert summary["total_bytes"] == 0
        assert store.stats()["entries"] == 0

    def test_put_under_cap_does_not_rescan(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path, max_bytes=1 << 20)
        store.put(_key("seed"), {"v": 0})  # seeds the byte estimate
        calls = []
        original = store._scan

        def counting_scan():
            calls.append(1)
            return original()

        monkeypatch.setattr(store, "_scan", counting_scan)
        for i in range(20):
            store.put(_key(i), {"v": i})
        assert not calls, "put() scanned the store while under the cap"

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(5):
            store.put(_key(i), {"v": i})
        assert store.clear() == 5
        assert store.stats()["entries"] == 0
        assert store.get(_key(0)) is None


class TestEnvironment:
    def test_max_bytes_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1234")
        assert default_max_bytes() == 1234
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert default_max_bytes() is None

    def test_malformed_max_bytes_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ConfigError, match="REPRO_CACHE_MAX_BYTES"):
            default_max_bytes()
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "-5")
        with pytest.raises(ConfigError, match="REPRO_CACHE_MAX_BYTES"):
            default_max_bytes()

    def test_cache_dir_env_steers_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "steered"))
        assert ResultStore().root == tmp_path / "steered"


def _thread_writer(args):
    root, tag = args
    store = ResultStore(root)
    for i in range(20):
        key = _key(f"{tag}-{i % 5}")
        store.put(key, {"writer": str(tag), "i": i})
        store.get(key)
    return True


class TestConcurrency:
    def test_many_threads_shared_instance(self, tmp_path):
        store = ResultStore(tmp_path)
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(
                pool.map(
                    lambda tag: [
                        store.put(_key(f"t-{tag}-{i % 4}"), {"t": tag, "i": i})
                        for i in range(25)
                    ],
                    range(8),
                )
            )
        stats = store.stats()
        assert stats["entries"] == 8 * 4
        for tag in range(8):
            for i in range(4):
                assert store.get(_key(f"t-{tag}-{i}")) is not None

    def test_thread_pool_distinct_instances(self, tmp_path):
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(_thread_writer, [(tmp_path, t) for t in range(6)])
            )
        assert all(results)
        store = ResultStore(tmp_path)
        # 6 writers x 5 keys each, all readable and well-formed.
        assert store.stats()["entries"] == 30
        for tag in range(6):
            for i in range(5):
                assert store.get(_key(f"{tag}-{i}")) is not None

    def test_process_pool_writers(self, tmp_path):
        try:
            with ProcessPoolExecutor(max_workers=4) as pool:
                results = list(
                    pool.map(_thread_writer, [(tmp_path, t) for t in range(4)])
                )
        except OSError as exc:  # pragma: no cover - constrained hosts
            pytest.skip(f"process pool unavailable: {exc}")
        assert all(results)
        store = ResultStore(tmp_path)
        assert store.stats()["entries"] == 20
        for tag in range(4):
            for i in range(5):
                assert store.get(_key(f"{tag}-{i}")) is not None
