"""Transparent session-level caching: counters, modes, payload identity."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Macromodel
from repro.core.config import RunConfig
from repro.macromodel.realization import pole_residue_to_simo
from repro.store import STAGES, ResultStore, decode_result, encode_result
from repro.synth.generator import random_macromodel


@pytest.fixture()
def model():
    return random_macromodel(8, 2, seed=11, sigma_target=1.05)


def _rw(tmp_path, **kwargs) -> RunConfig:
    return RunConfig(cache="readwrite", cache_dir=str(tmp_path), **kwargs)


def _dump(payload) -> str:
    return json.dumps(payload, sort_keys=True)


class TestCheckCaching:
    def test_second_check_is_a_hit_with_identical_payload(self, tmp_path, model):
        config = _rw(tmp_path)
        first = Macromodel.from_pole_residue(model, config=config).check_passivity()
        assert first.cache_stats == {"hits": 0, "misses": 1, "writes": 1}

        second = Macromodel.from_pole_residue(model, config=config).check_passivity()
        assert second.cache_stats == {"hits": 1, "misses": 0, "writes": 0}
        assert _dump(second.passivity_report.to_dict()) == _dump(
            first.passivity_report.to_dict()
        )
        # The hit rebuilt the full solve provenance, not a hollow shell.
        assert second.passivity_report.solve is not None
        np.testing.assert_array_equal(
            second.passivity_report.solve.omegas,
            first.passivity_report.solve.omegas,
        )

    def test_hit_skips_the_eigensweep_entirely(self, tmp_path, model, monkeypatch):
        config = _rw(tmp_path)
        Macromodel.from_pole_residue(model, config=config).check_passivity()

        import repro.passivity.characterization as characterization

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("eigensweep ran despite a cache hit")

        monkeypatch.setattr(characterization, "solve", boom)
        session = Macromodel.from_pole_residue(model, config=config)
        session.check_passivity()
        assert session.cache_stats["hits"] == 1

    def test_different_config_is_a_miss(self, tmp_path, model):
        Macromodel.from_pole_residue(model, config=_rw(tmp_path)).check_passivity()
        other = Macromodel.from_pole_residue(
            model, config=_rw(tmp_path, num_threads=2)
        ).check_passivity()
        assert other.cache_stats["hits"] == 0
        assert other.cache_stats["misses"] == 1

    def test_different_model_is_a_miss(self, tmp_path, model):
        config = _rw(tmp_path)
        Macromodel.from_pole_residue(model, config=config).check_passivity()
        other_model = random_macromodel(8, 2, seed=12, sigma_target=1.05)
        other = Macromodel.from_pole_residue(
            other_model, config=config
        ).check_passivity()
        assert other.cache_stats["hits"] == 0

    def test_simo_sessions_bypass_the_cache(self, tmp_path, model):
        simo = pole_residue_to_simo(model)
        session = Macromodel.from_pole_residue(simo, config=_rw(tmp_path))
        session.check_passivity()
        assert session.cache_stats == {"hits": 0, "misses": 0, "writes": 0}


class TestModes:
    def test_off_mode_never_touches_the_store(self, tmp_path, model):
        session = Macromodel.from_pole_residue(
            model, config=RunConfig(cache="off", cache_dir=str(tmp_path))
        ).check_passivity()
        assert session.cache_stats == {"hits": 0, "misses": 0, "writes": 0}
        assert ResultStore(tmp_path).stats()["entries"] == 0

    def test_read_mode_serves_but_never_writes(self, tmp_path, model):
        read_config = RunConfig(cache="read", cache_dir=str(tmp_path))
        first = Macromodel.from_pole_residue(model, config=read_config)
        first.check_passivity()
        assert first.cache_stats == {"hits": 0, "misses": 1, "writes": 0}
        assert ResultStore(tmp_path).stats()["entries"] == 0

        Macromodel.from_pole_residue(model, config=_rw(tmp_path)).check_passivity()
        second = Macromodel.from_pole_residue(model, config=read_config)
        second.check_passivity()
        assert second.cache_stats["hits"] == 1

    def test_off_is_bit_identical_to_no_cache(self, tmp_path, model):
        cached = Macromodel.from_pole_residue(
            model, config=_rw(tmp_path)
        ).check_passivity()
        plain = Macromodel.from_pole_residue(model).check_passivity()
        a = cached.passivity_report.to_dict()
        b = plain.passivity_report.to_dict()
        # Timings differ run to run; everything semantic must agree.
        for payload in (a, b):
            payload.pop("work", None)
        assert _dump(a) == _dump(b)


class TestOtherStages:
    def test_enforce_hinf_solve_fit_round_trip(self, tmp_path, model):
        config = _rw(tmp_path)
        first = (
            Macromodel.from_pole_residue(model, config=config)
            .check_passivity()
            .enforce()
            .hinf()
        )
        second = (
            Macromodel.from_pole_residue(model, config=config)
            .check_passivity()
            .enforce()
            .hinf()
        )
        assert second.cache_stats == {"hits": 3, "misses": 0, "writes": 0}
        assert _dump(second.enforcement_result.to_dict()) == _dump(
            first.enforcement_result.to_dict()
        )
        assert _dump(second.hinf_result.to_dict()) == _dump(
            first.hinf_result.to_dict()
        )
        # The enforced model itself round-tripped bit-exactly.
        np.testing.assert_array_equal(second.model.poles, first.model.poles)
        np.testing.assert_array_equal(second.model.residues, first.model.residues)

    def test_find_crossings_cached(self, tmp_path, model):
        config = _rw(tmp_path)
        first = Macromodel.from_pole_residue(model, config=config).find_crossings()
        second = Macromodel.from_pole_residue(model, config=config).find_crossings()
        assert second.cache_stats["hits"] == 1
        assert _dump(second.solve_result.to_dict()) == _dump(
            first.solve_result.to_dict()
        )

    def test_fit_cached_across_sessions(self, tmp_path, model):
        freqs = np.linspace(0.01, 16.0, 120)
        samples = model.frequency_response(freqs)
        config = _rw(tmp_path)
        first = Macromodel.from_samples(freqs, samples, config=config).fit(
            num_poles=8
        )
        second = Macromodel.from_samples(freqs, samples, config=config).fit(
            num_poles=8
        )
        assert second.cache_stats["hits"] == 1
        assert _dump(second.fit_result.to_dict()) == _dump(
            first.fit_result.to_dict()
        )
        third = Macromodel.from_samples(freqs, samples, config=config).fit(
            num_poles=10
        )
        assert third.cache_stats["hits"] == 0

    def test_session_to_dict_reports_cache_traffic(self, tmp_path, model):
        config = _rw(tmp_path)
        session = Macromodel.from_pole_residue(model, config=config)
        session.check_passivity()
        assert session.to_dict()["cache"] == {
            "hits": 0,
            "misses": 1,
            "writes": 1,
        }
        plain = Macromodel.from_pole_residue(model).check_passivity()
        assert "cache" not in plain.to_dict()


class TestCorruptEntryFallback:
    def test_corrupt_cache_entry_recomputes(self, tmp_path, model):
        config = _rw(tmp_path)
        Macromodel.from_pole_residue(model, config=config).check_passivity()
        store = ResultStore(tmp_path)
        entries = store._scan()
        assert len(entries) == 1
        entries[0][1].write_bytes(b"{ corrupted")
        session = Macromodel.from_pole_residue(model, config=config)
        session.check_passivity()
        assert session.cache_stats == {"hits": 0, "misses": 1, "writes": 1}
        assert session.passivity_report is not None


class TestPropertyCachedEqualsFresh:
    """Satellite requirement: cached and freshly computed ``to_dict()``
    payloads are identical, over randomized models and stages."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        stage=st.sampled_from(["check", "solve", "hinf"]),
    )
    def test_cached_payload_equals_fresh_payload(self, tmp_path_factory, seed, stage):
        tmp_path = tmp_path_factory.mktemp("prop-store")
        model = random_macromodel(6, 2, seed=seed, sigma_target=1.04)
        config = RunConfig(cache="readwrite", cache_dir=str(tmp_path))

        def run(session):
            if stage == "check":
                return session.check_passivity().passivity_report
            if stage == "solve":
                return session.find_crossings().solve_result
            return session.hinf().hinf_result

        fresh = run(Macromodel.from_pole_residue(model, config=config))
        cached_session = Macromodel.from_pole_residue(model, config=config)
        cached = run(cached_session)
        assert cached_session.cache_stats["hits"] == 1
        assert _dump(cached.to_dict()) == _dump(fresh.to_dict())

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_codec_round_trip_is_exact(self, seed):
        model = random_macromodel(6, 2, seed=seed, sigma_target=1.04)
        session = Macromodel.from_pole_residue(model).check_passivity().hinf()
        for stage, result in (
            ("check", session.passivity_report),
            ("hinf", session.hinf_result),
        ):
            payload = encode_result(stage, result)
            rebuilt = decode_result(stage, json.loads(json.dumps(payload)))
            assert _dump(encode_result(stage, rebuilt)) == _dump(payload)

    def test_every_registered_stage_has_both_directions(self):
        for stage, (encoder, decoder) in STAGES.items():
            assert callable(encoder) and callable(decoder), stage
