"""Batched/scalar equivalence of the frequency-domain kernel layer.

Every batched kernel introduced by the multi-shift refactor must agree
with the historical one-point-at-a-time path to near machine precision
(<= 1e-12), including the degenerate realizations (empty columns,
real-only poles, pairs-only poles) where the broadcast layouts are most
likely to go wrong.
"""

import numpy as np
import pytest

from repro.hamiltonian.operator import HamiltonianOperator
from repro.macromodel.realization import pole_residue_to_simo, simo_from_columns
from repro.macromodel.simo import SimoColumn
from repro.passivity.sampling import sampled_violations
from repro.synth import random_macromodel
from repro.vectfit.vector_fitting import _basis
from tests.conftest import make_pole_residue

TOL = 1e-12


def _empty_column() -> SimoColumn:
    return SimoColumn(
        np.empty(0),
        np.empty((0, 0)),
        np.empty(0, dtype=complex),
        np.empty((0, 0), dtype=complex),
    )


def _real_only_column(p: int, seed: int) -> SimoColumn:
    rng = np.random.default_rng(seed)
    return SimoColumn(
        -rng.uniform(0.5, 2.0, 3),
        0.4 * rng.standard_normal((3, p)),
        np.empty(0, dtype=complex),
        np.empty((0, p), dtype=complex),
    )


def _pairs_only_column(p: int, seed: int) -> SimoColumn:
    rng = np.random.default_rng(seed)
    return SimoColumn(
        np.empty(0),
        np.empty((0, p)),
        -rng.uniform(0.1, 0.5, 2) + 1j * rng.uniform(1.0, 8.0, 2),
        0.4
        * (rng.standard_normal((2, p)) + 1j * rng.standard_normal((2, p))),
    )


def _mixed_simo():
    return pole_residue_to_simo(make_pole_residue(seed=3))


def _realizations():
    """Realization zoo: mixed, real-only, pairs-only, with-empty-column."""
    p = 2
    rng = np.random.default_rng(9)
    d = 0.05 * rng.standard_normal((p, p))
    return {
        "mixed": _mixed_simo(),
        "real_only": simo_from_columns(
            [_real_only_column(p, 1), _real_only_column(p, 2)], d
        ),
        "pairs_only": simo_from_columns(
            [_pairs_only_column(p, 3), _pairs_only_column(p, 4)], d
        ),
        "empty_column": simo_from_columns(
            [_empty_column(), _pairs_only_column(p, 5)], d
        ),
    }


@pytest.fixture(params=["mixed", "real_only", "pairs_only", "empty_column"])
def simo(request):
    return _realizations()[request.param]


@pytest.fixture
def shifts():
    return 0.02 + 1j * np.linspace(0.3, 11.0, 23)


class TestSimoBatched:
    def test_transfer_many_matches_loop(self, simo, shifts):
        batch = simo.transfer_many(shifts)
        loop = np.stack([simo.transfer(s) for s in shifts])
        assert batch.shape == (shifts.size, simo.num_ports, simo.num_ports)
        np.testing.assert_allclose(batch, loop, atol=TOL, rtol=0.0)

    def test_gamma_many_matches_loop(self, simo, shifts):
        batch = simo.gamma_many(shifts)
        loop = np.stack([simo.gamma(s) for s in shifts])
        np.testing.assert_allclose(batch, loop, atol=TOL, rtol=0.0)

    def test_solve_shifted_many_vector_rhs(self, simo, shifts, rng):
        if simo.order == 0:
            pytest.skip("order-0 realization has no states to solve")
        rhs = rng.standard_normal(simo.order)
        batch = simo.solve_shifted_many(shifts, rhs)
        loop = np.stack([simo.solve_shifted(s, rhs) for s in shifts])
        np.testing.assert_allclose(batch, loop, atol=TOL, rtol=0.0)

    def test_solve_shifted_many_block_rhs(self, simo, shifts, rng):
        rhs = rng.standard_normal((simo.order, 4))
        batch = simo.solve_shifted_many(shifts, rhs)
        loop = np.stack([simo.solve_shifted(s, rhs) for s in shifts])
        assert batch.shape == (shifts.size, simo.order, 4)
        np.testing.assert_allclose(batch, loop, atol=TOL, rtol=0.0)

    def test_solve_shifted_many_transpose(self, simo, shifts, rng):
        rhs = rng.standard_normal((simo.order, 3))
        batch = simo.solve_shifted_many(shifts, rhs, transpose=True)
        loop = np.stack(
            [simo.solve_shifted(s, rhs, transpose=True) for s in shifts]
        )
        np.testing.assert_allclose(batch, loop, atol=TOL, rtol=0.0)

    def test_solve_shifted_many_pole_collision_raises(self, simo):
        if simo.poles().size == 0:
            pytest.skip("no poles to collide with")
        pole = simo.poles()[0]
        with pytest.raises(ZeroDivisionError):
            simo.solve_shifted_many(
                [complex(pole), 1j * 2.0], np.ones(simo.order)
            )

    def test_frequency_response_matches_loop(self, simo):
        freqs = np.linspace(0.0, 9.0, 17)
        batch = simo.frequency_response(freqs)
        loop = np.stack([simo.transfer(1j * w) for w in freqs])
        np.testing.assert_allclose(batch, loop, atol=TOL, rtol=0.0)


class TestStateSpaceBatched:
    def test_transfer_many_matches_loop(self):
        ss = _mixed_simo().to_statespace()
        pts = 0.01 + 1j * np.linspace(0.2, 10.0, 29)
        batch = ss.transfer_many(pts)
        loop = np.stack([ss.transfer(s) for s in pts])
        np.testing.assert_allclose(batch, loop, atol=TOL, rtol=0.0)

    def test_chunked_path_matches_single_chunk(self):
        ss = _mixed_simo().to_statespace()
        pts = 1j * np.linspace(0.1, 5.0, 13)
        # A tiny byte budget forces one-point chunks.
        chunked = ss.transfer_many(pts, max_chunk_bytes=1)
        whole = ss.transfer_many(pts)
        np.testing.assert_allclose(chunked, whole, atol=TOL, rtol=0.0)

    def test_order_zero(self):
        from repro.macromodel.statespace import StateSpace

        ss = StateSpace(
            np.zeros((0, 0)), np.zeros((0, 2)), np.zeros((2, 0)), 0.3 * np.eye(2)
        )
        out = ss.transfer_many(1j * np.linspace(0.0, 1.0, 5))
        assert out.shape == (5, 2, 2)
        np.testing.assert_allclose(out, np.broadcast_to(0.3 * np.eye(2), (5, 2, 2)))


class TestPoleResidueBatched:
    def test_transfer_many_matches_loop(self):
        model = make_pole_residue(seed=11)
        pts = 0.05 + 1j * np.linspace(0.4, 12.0, 31)
        batch = model.transfer_many(pts)
        loop = np.stack([model.transfer(s) for s in pts])
        np.testing.assert_allclose(batch, loop, atol=TOL, rtol=0.0)


class TestBlockedOperatorApplies:
    @pytest.fixture
    def op(self):
        return HamiltonianOperator(_mixed_simo())

    def test_blocked_matvec_matches_columns(self, op, rng):
        block = rng.standard_normal((op.dimension, 5)) + 1j * rng.standard_normal(
            (op.dimension, 5)
        )
        blocked = op.matvec(block)
        columns = np.stack([op.matvec(block[:, j]) for j in range(5)], axis=1)
        np.testing.assert_allclose(blocked, columns, atol=TOL, rtol=0.0)

    def test_blocked_shift_invert_matches_columns(self, op, rng):
        si = op.shift_invert(1j * 2.7)
        block = rng.standard_normal((op.dimension, 4)) + 1j * rng.standard_normal(
            (op.dimension, 4)
        )
        blocked = si.matvec(block)
        columns = np.stack([si.matvec(block[:, j]) for j in range(4)], axis=1)
        np.testing.assert_allclose(blocked, columns, atol=TOL, rtol=0.0)

    def test_blocked_apply_counts_column_work(self):
        from repro.utils.timing import WorkCounter

        work = WorkCounter()
        op = HamiltonianOperator(_mixed_simo(), work=work)
        op.matvec(np.ones((op.dimension, 6)))
        assert work.operator_applies == 6
        op.matvec(np.ones(op.dimension))
        assert work.operator_applies == 7

    def test_bad_shapes_rejected(self, op):
        with pytest.raises(ValueError):
            op.matvec(np.zeros(3))
        with pytest.raises(ValueError):
            op.matvec(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            op.matvec(np.zeros((op.dimension, 2, 2)))


def _reference_sampled_violations(
    model,
    omega_max,
    *,
    threshold=1.0,
    initial_points=64,
    variation_tol=0.05,
    min_interval=1e-6,
    seed_resonances=True,
):
    """The historical scalar recursion (pre-wave), without a budget.

    Kept verbatim as the ground truth the wave-based implementation must
    reproduce whenever the evaluation budget is not binding.
    """
    from repro.macromodel.simo import SimoRealization

    width_floor = min_interval * omega_max

    def sigma_at(w):
        return float(
            np.linalg.svd(model.transfer(1j * w), compute_uv=False)[0]
        )

    grid = np.linspace(0.0, omega_max, initial_points)
    if seed_resonances:
        poles = (
            model.poles() if isinstance(model, SimoRealization) else model.poles
        )
        resonant = poles[poles.imag > 0]
        if resonant.size:
            w0 = resonant.imag
            damping = np.abs(resonant.real)
            clusters = np.concatenate([w0 + k * damping for k in (-1.0, 0.0, 1.0)])
            clusters = clusters[(clusters >= 0.0) & (clusters <= omega_max)]
            grid = np.union1d(grid, clusters)
    grid = list(grid)
    values = [sigma_at(w) for w in grid]
    stack = [
        (grid[i], grid[i + 1], values[i], values[i + 1])
        for i in range(len(grid) - 1)
    ]
    samples = list(zip(grid, values))
    while stack:
        lo, hi, s_lo, s_hi = stack.pop()
        if hi - lo <= width_floor:
            continue
        needs_refine = (
            abs(s_hi - s_lo) > variation_tol
            or (s_lo - threshold) * (s_hi - threshold) < 0.0
            or max(s_lo, s_hi) > threshold - variation_tol
        )
        if not needs_refine:
            continue
        mid = 0.5 * (lo + hi)
        s_mid = sigma_at(mid)
        samples.append((mid, s_mid))
        stack.append((lo, mid, s_lo, s_mid))
        stack.append((mid, hi, s_mid, s_hi))
    samples.sort()
    freqs = np.array([w for w, _ in samples])
    sigmas = np.array([s for _, s in samples])
    violating = sigmas > threshold
    intervals = []
    start = None
    for i, flag in enumerate(violating):
        if flag and start is None:
            start = freqs[i]
        elif not flag and start is not None:
            intervals.append((float(start), float(freqs[i])))
            start = None
    if start is not None:
        intervals.append((float(start), float(freqs[-1])))
    return {
        "intervals": intervals,
        "evaluations": len(samples),
        "max_sigma": float(sigmas.max()),
    }


class TestWaveSamplingEquivalence:
    @pytest.fixture(scope="class")
    def violating(self):
        return random_macromodel(10, 3, seed=5, sigma_target=1.06)

    @pytest.mark.parametrize("seed_resonances", [True, False])
    def test_matches_scalar_recursion(self, violating, seed_resonances):
        """With a non-binding budget the wave refinement visits exactly the
        sample set of the scalar recursion (refine decisions are local to
        each interval), so every report field must agree."""
        ref = _reference_sampled_violations(
            violating, 15.0, seed_resonances=seed_resonances
        )
        wave = sampled_violations(
            violating, 15.0, seed_resonances=seed_resonances
        )
        assert wave.evaluations == ref["evaluations"]
        assert abs(wave.max_sigma - ref["max_sigma"]) <= TOL
        assert len(wave.violations) == len(ref["intervals"])
        for (lo_w, hi_w), (lo_r, hi_r) in zip(wave.violations, ref["intervals"]):
            assert abs(lo_w - lo_r) <= TOL
            assert abs(hi_w - hi_r) <= TOL

    def test_budget_cap_enforced_during_seeding(self, violating):
        """Regression for the seeding budget leak: an oversized initial grid
        must not overrun max_evaluations."""
        report = sampled_violations(
            violating, 15.0, initial_points=500, max_evaluations=100
        )
        assert report.evaluations <= 100

    def test_budget_cap_enforced_during_refinement(self, violating):
        report = sampled_violations(violating, 15.0, max_evaluations=200)
        assert report.evaluations <= 200


class TestVectfitBasisBatched:
    def test_basis_matches_naive_loop(self):
        rng = np.random.default_rng(17)
        freqs = np.linspace(0.1, 10.0, 40)
        real_poles = -rng.uniform(0.5, 2.0, 3)
        pair_upper = -0.1 * rng.uniform(0.5, 2.0, 4) + 1j * rng.uniform(
            1.0, 9.0, 4
        )
        poles = np.empty(3 + 8, dtype=complex)
        poles[:3] = real_poles
        poles[3::2] = pair_upper
        poles[4::2] = np.conj(pair_upper)
        phi, rp, pp = _basis(freqs, poles)
        s = 1j * freqs
        columns = [1.0 / (s - r) for r in rp]
        for q in pp:
            inv_up = 1.0 / (s - q)
            inv_dn = 1.0 / (s - np.conj(q))
            columns.append(inv_up + inv_dn)
            columns.append(1j * (inv_up - inv_dn))
        np.testing.assert_allclose(
            phi, np.stack(columns, axis=1), atol=TOL, rtol=0.0
        )
