"""Property-based tests of the library's core invariants (hypothesis).

Each property is an algebraic fact the paper's method rests on:

1. Hamiltonian spectra are symmetric w.r.t. both axes.
2. The SMW shift-invert is an exact inverse of ``M - theta I``.
3. The solver's crossing frequencies are exactly where a singular value
   of ``H(j w)`` touches 1.
4. The eigensolver agrees with the dense baseline on random models.
5. Coverage: the union of certified disks contains the whole band.
6. Enforcement never leaves the model less passive than it started.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.solver import find_imaginary_eigenvalues
from repro.hamiltonian.operator import HamiltonianOperator
from repro.hamiltonian.spectral import (
    full_hamiltonian_spectrum,
    imaginary_eigenvalues_dense,
)
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def model_from(seed: int, target: float):
    return random_macromodel(8, 2, seed=seed, sigma_target=target)


@SLOW
@given(seed=st.integers(0, 10_000))
def test_hamiltonian_quadruple_symmetry(seed):
    """Spectrum closed under lam -> -lam and lam -> conj(lam)."""
    simo = pole_residue_to_simo(model_from(seed, 1.05))
    lam = full_hamiltonian_spectrum(simo)
    scale = max(1.0, np.abs(lam).max())
    for transform in (lambda z: -z, np.conj):
        remaining = list(transform(lam))
        for value in lam:
            dist = [abs(value - other) for other in remaining]
            j = int(np.argmin(dist))
            assert dist[j] < 1e-7 * scale
            remaining.pop(j)


@SLOW
@given(
    seed=st.integers(0, 10_000),
    omega=st.floats(0.0, 25.0, allow_nan=False),
)
def test_smw_inverse_property(seed, omega):
    """(M - theta I) applied after the SMW operator is the identity."""
    simo = pole_residue_to_simo(model_from(seed, 1.05))
    op = HamiltonianOperator(simo)
    try:
        si = op.shift_invert(1j * omega)
    except (ZeroDivisionError, np.linalg.LinAlgError):
        return
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(op.dimension) + 1j * rng.standard_normal(op.dimension)
    y = si.matvec(x)
    back = op.matvec(y) - si.shift * y
    assert np.linalg.norm(back - x) <= 1e-6 * np.linalg.norm(x)


@SLOW
@given(seed=st.integers(0, 10_000), violating=st.booleans())
def test_solver_matches_dense_property(seed, violating):
    """Fast solver == dense baseline for random models, both polarities."""
    target = 1.08 if violating else 0.92
    simo = pole_residue_to_simo(model_from(seed, target))
    truth = imaginary_eigenvalues_dense(simo)
    result = find_imaginary_eigenvalues(simo, num_threads=2, strategy="queue")
    assert result.num_crossings == truth.size
    if truth.size:
        np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)


@SLOW
@given(seed=st.integers(0, 10_000))
def test_crossings_sit_on_unit_singular_values(seed):
    simo = pole_residue_to_simo(model_from(seed, 1.1))
    result = find_imaginary_eigenvalues(simo, num_threads=2, strategy="queue")
    for w in result.omegas:
        sv = np.linalg.svd(simo.transfer(1j * w), compute_uv=False)
        assert np.min(np.abs(sv - 1.0)) < 1e-5


@SLOW
@given(seed=st.integers(0, 10_000), threads=st.integers(1, 4))
def test_band_coverage_property(seed, threads):
    """The certified disks always cover the swept band completely."""
    simo = pole_residue_to_simo(model_from(seed, 1.05))
    result = find_imaginary_eigenvalues(
        simo, num_threads=threads, strategy="queue"
    )
    assert result.coverage_gaps() == []


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000))
def test_enforcement_never_worsens(seed):
    """Worst violation after enforcement <= before (usually zero)."""
    from repro.passivity.enforcement import enforce_passivity

    model = model_from(seed, 1.04)
    result = enforce_passivity(model, max_iterations=12)
    assert result.history[-1] <= result.history[0] + 1e-12
