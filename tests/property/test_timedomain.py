"""Property tests of the time-domain subsystem (hypothesis).

Two facts anchor the subsystem's correctness:

1. The FFT of a simulated impulse response matches
   ``PoleResidueModel.transfer_many`` on the (alias-folded) DFT grid to
   below 1e-6 — the integrator and the frequency-domain kernels are the
   same operator, seen from both domains.
2. Enforced models are contractive in simulation: whatever seeded PRBS
   pattern drives them, the port-energy gain never exceeds ``1 + 1e-8``
   (the recursive-convolution map of a ``sigma <= 1`` model is a
   ``sinc^2``-convex combination of frequency-response values, hence
   itself a contraction).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Macromodel
from repro.synth import random_macromodel
from repro.timedomain import Stimulus, default_timestep, impulse_fft_check, simulate

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

VERY_SLOW = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _well_damped(seed: int, target: float):
    # Moderate Q keeps the impulse-response window (and hence the FFT
    # truncation error) small enough for tight tolerances.
    return random_macromodel(
        8, 2, seed=seed, sigma_target=target, q_range=(2.0, 10.0),
        band=(0.5, 4.0),
    )


@SLOW
@given(seed=st.integers(0, 10_000))
def test_impulse_fft_matches_transfer_many(seed):
    model = _well_damped(seed, 1.02)
    dt = default_timestep(model)
    slowest = float(np.min(np.abs(model.poles.real)))
    num_steps = 1 << int(np.ceil(np.log2(14.0 / (slowest * dt))))
    check = impulse_fft_check(model, dt=dt, num_steps=num_steps, aliases=24)
    assert check.max_folded_error <= 1e-6, check.to_dict()
    assert check.max_discrete_error <= 1e-6, check.to_dict()


@VERY_SLOW
@given(seed=st.integers(0, 10_000))
def test_enforced_models_never_gain_energy(seed):
    model = _well_damped(seed, 1.04)
    session = Macromodel.from_pole_residue(model)
    session.check_passivity(num_threads=2)
    if not session.is_passive:
        session.enforce()
    assert session.is_passive
    stimulus = Stimulus.prbs(seed=seed + 1, bit_steps=4)
    result = simulate(session.model, stimulus, num_steps=8192)
    assert result.energy.energy_gain <= 1.0 + 1e-8, result.energy.summary()
