"""Property: a faulty store never returns a wrong payload (hypothesis).

Under injected partial-write (``truncate``), bit-rot (``corrupt``), and
transient I/O faults, every :meth:`ResultStore.get` must either round-trip
the exact payload that was put, or miss cleanly (``None`` — the caller
recomputes).  Serving a *different* payload would silently poison every
downstream passivity verdict, so that is the one outcome the store must
make impossible.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.faults import FaultPlan
from repro.store import ResultStore

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# JSON-shaped payloads: nested dicts/lists of finite scalars, as the
# service stores them (job results are to_jsonable()'d dicts).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_payloads = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(
        _scalars,
        st.lists(_scalars, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), _scalars, max_size=3),
    ),
    min_size=1,
    max_size=6,
)


def _exercise(plan_text, payloads, seed):
    """Put/get every payload under ``plan_text``; assert never-wrong."""
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        keys = [f"{i:02d}" + "ab" * 19 for i in range(len(payloads))]
        faults.activate(FaultPlan.parse(plan_text, seed=seed))
        try:
            stored = {}
            for key, payload in zip(keys, payloads):
                if store.put(key, payload, stage="prop"):
                    stored[key] = payload
            for key, payload in zip(keys, payloads):
                for _ in range(3):  # repeated reads must stay safe too
                    got = store.get(key)
                    assert got is None or got == payload, (
                        f"store returned a WRONG payload for {key}:"
                        f" {got!r} != {payload!r}"
                    )
        finally:
            faults.deactivate()
        # With faults gone, an entry that still exists must round-trip.
        for key, payload in stored.items():
            got = store.get(key)
            assert got is None or got == payload


@SLOW
@given(
    payloads=st.lists(_payloads, min_size=1, max_size=6),
    seed=st.integers(0, 10_000),
)
def test_truncated_writes_never_serve_garbage(payloads, seed):
    _exercise("store.write:truncate@0.5", payloads, seed)


@SLOW
@given(
    payloads=st.lists(_payloads, min_size=1, max_size=6),
    seed=st.integers(0, 10_000),
)
def test_corrupted_reads_never_serve_garbage(payloads, seed):
    _exercise("store.read:corrupt@0.5", payloads, seed)


@SLOW
@given(
    payloads=st.lists(_payloads, min_size=1, max_size=6),
    seed=st.integers(0, 10_000),
)
def test_combined_fault_storm_never_serves_garbage(payloads, seed):
    _exercise(
        "store.write:truncate@0.3;store.read:corrupt@0.3", payloads, seed
    )


@SLOW
@given(
    payloads=st.lists(_payloads, min_size=1, max_size=4),
    seed=st.integers(0, 10_000),
)
def test_io_errors_miss_but_keep_entries(payloads, seed):
    """Transient I/O errors cause misses, never deletions: once the
    fault plan is lifted, every successfully written entry reads back."""
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        keys = [f"{i:02d}" + "cd" * 19 for i in range(len(payloads))]
        stored = {}
        for key, payload in zip(keys, payloads):
            if store.put(key, payload, stage="prop"):
                stored[key] = payload
        faults.activate(FaultPlan.parse("store.read:io_error@0.7", seed=seed))
        try:
            for key, payload in stored.items():
                got = store.get(key)
                assert got is None or got == payload
        finally:
            faults.deactivate()
        for key, payload in stored.items():
            assert store.get(key) == payload, (
                "a transient read fault must not evict a valid entry"
            )
