"""Property-based round-trip tests for fitting, realization, and file I/O."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel
from repro.touchstone.reader import parse_touchstone
from repro.touchstone.writer import format_touchstone
from repro.vectfit.vector_fitting import vector_fit

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SLOW
@given(seed=st.integers(0, 10_000), ports=st.integers(1, 3))
def test_vector_fit_exact_recovery_property(seed, ports):
    """Sampling an exact rational model and refitting recovers it."""
    truth = random_macromodel(8, ports, seed=seed, sigma_target=None)
    freqs = np.linspace(0.02, 14.0, 200)
    fit = vector_fit(freqs, truth.frequency_response(freqs), num_poles=8)
    assert fit.rms_error < 1e-7
    # Transfer matrices agree off the sampling grid too.
    probe = 1j * 7.37
    np.testing.assert_allclose(
        fit.model.transfer(probe), truth.transfer(probe), atol=1e-6
    )


@SLOW
@given(seed=st.integers(0, 10_000))
def test_simo_realization_transfer_property(seed):
    """pole/residue -> SIMO -> dense state space all agree pointwise."""
    model = random_macromodel(6, 2, seed=seed, sigma_target=None)
    simo = pole_residue_to_simo(model)
    dense = simo.to_statespace()
    w = 0.1 + (seed % 97) * 0.1
    h0 = model.transfer(1j * w)
    np.testing.assert_allclose(simo.transfer(1j * w), h0, atol=1e-9)
    np.testing.assert_allclose(dense.transfer(1j * w), h0, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ports=st.integers(1, 4),
    points=st.integers(2, 12),
    fmt=st.sampled_from(["RI", "MA", "DB"]),
)
def test_touchstone_roundtrip_property(seed, ports, points, fmt):
    """write -> parse is lossless for any size/format combination."""
    rng = np.random.default_rng(seed)
    freqs = np.sort(rng.uniform(1e5, 1e9, points))
    while np.any(np.diff(freqs) <= 0):  # enforce strict monotonicity
        freqs = np.sort(rng.uniform(1e5, 1e9, points))
    s = rng.standard_normal((points, ports, ports)) + 1j * rng.standard_normal(
        (points, ports, ports)
    )
    text = format_touchstone(freqs, s, fmt=fmt)
    back = parse_touchstone(text, num_ports=ports)
    np.testing.assert_allclose(back.matrices, s, atol=1e-7)
    np.testing.assert_allclose(back.freqs_hz, freqs, rtol=1e-9)


@SLOW
@given(seed=st.integers(0, 10_000))
def test_conversion_roundtrip_property(seed):
    """SS -> pole/residue -> SS preserves the transfer matrix."""
    from repro.macromodel.conversion import statespace_to_pole_residue

    model = random_macromodel(6, 2, seed=seed, sigma_target=None)
    ss = pole_residue_to_simo(model).to_statespace()
    back = statespace_to_pole_residue(ss)
    probe = 1j * (1.0 + seed % 11)
    np.testing.assert_allclose(back.transfer(probe), ss.transfer(probe), atol=1e-8)
    assert back.is_real_model()
