"""The injector: determinism, kind semantics, and the disabled fast path."""

import sqlite3
import time

import pytest

from repro import faults
from repro.core.config import ConfigError
from repro.faults import FaultPlan


@pytest.fixture(autouse=True)
def _clean_injector():
    """Every test starts and ends with no active plan."""
    faults.deactivate()
    yield
    faults.deactivate()


def _fire_pattern(plan, point, rolls):
    faults.activate(plan)
    pattern = []
    for _ in range(rolls):
        try:
            pattern.append(faults.inject(point) or "none")
        except Exception as exc:
            pattern.append(type(exc).__name__)
    faults.deactivate()
    return pattern


class TestDeterminism:
    def test_same_seed_same_pattern(self):
        plan = FaultPlan.parse("store.write:io_error@0.3", seed=7)
        first = _fire_pattern(plan, "store.write", 200)
        second = _fire_pattern(plan, "store.write", 200)
        assert first == second
        assert "OSError" in first  # p=0.3 over 200 rolls must fire

    def test_different_seeds_differ(self):
        a = _fire_pattern(
            FaultPlan.parse("store.write:io_error@0.3", seed=1),
            "store.write",
            200,
        )
        b = _fire_pattern(
            FaultPlan.parse("store.write:io_error@0.3", seed=2),
            "store.write",
            200,
        )
        assert a != b

    def test_points_draw_independent_streams(self):
        # Interleaving calls at another point must not perturb the
        # pattern a point produces on its own.
        plan = FaultPlan.parse(
            "store.write:io_error@0.3;store.read:io_error@0.3", seed=3
        )
        alone = _fire_pattern(plan, "store.write", 100)
        faults.activate(plan)
        interleaved = []
        for _ in range(100):
            try:
                faults.inject("store.read")
            except OSError:
                pass
            try:
                interleaved.append(faults.inject("store.write") or "none")
            except OSError:
                interleaved.append("OSError")
        faults.deactivate()
        assert interleaved == alone


class TestKinds:
    def test_io_error_raises_oserror(self):
        faults.activate(FaultPlan.parse("store.write:io_error@1"))
        with pytest.raises(OSError, match="injected io_error"):
            faults.inject("store.write")

    def test_busy_raises_locked_operational_error(self):
        faults.activate(FaultPlan.parse("queue.claim:busy@1"))
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            faults.inject("queue.claim")

    def test_error_raises_runtime_error(self):
        faults.activate(FaultPlan.parse("worker.run:error@1"))
        with pytest.raises(RuntimeError, match="injected error"):
            faults.inject("worker.run")

    def test_hang_stalls_then_returns_none(self):
        faults.activate(FaultPlan.parse("worker.run:hang@1"))
        t0 = time.perf_counter()
        assert faults.inject("worker.run") is None
        assert time.perf_counter() - t0 >= 0.04

    def test_data_kinds_returned_to_caller(self):
        faults.activate(FaultPlan.parse("store.read:corrupt@1"))
        assert faults.inject("store.read") == "corrupt"
        faults.activate(FaultPlan.parse("store.write:truncate@1"))
        assert faults.inject("store.write") == "truncate"

    def test_zero_probability_never_fires(self):
        faults.activate(FaultPlan.parse("store.write:io_error@0"))
        for _ in range(100):
            assert faults.inject("store.write") is None

    def test_unlisted_point_never_fires(self):
        faults.activate(FaultPlan.parse("store.write:io_error@1"))
        assert faults.inject("queue.claim") is None


class TestLifecycle:
    def test_disabled_inject_is_none(self):
        assert faults.inject("store.write") is None
        assert faults.active_plan() is None
        assert faults.counters() == {}

    def test_counters_track_checked_and_fired(self):
        faults.activate(FaultPlan.parse("store.write:io_error@1"))
        for _ in range(3):
            with pytest.raises(OSError):
                faults.inject("store.write")
        counts = faults.counters()
        assert counts["store.write"] == {"checked": 3, "fired": 3}

    def test_init_from_env_parses_and_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "queue.ack:busy@0.5")
        faults.init_from_env()
        assert faults.active_plan().by_point["queue.ack"].kind == "busy"
        monkeypatch.setenv("REPRO_FAULTS", "queue.ack:busy@nope")
        with pytest.raises(ConfigError):
            faults.init_from_env()

    def test_activate_survives_init_from_env(self, monkeypatch):
        # An explicit test plan must not be clobbered by a later
        # constructor calling init_from_env with an unchanged env.
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        plan = FaultPlan.parse("store.write:truncate@1")
        faults.activate(plan)
        faults.init_from_env()
        assert faults.active_plan() is not None
        assert faults.active_plan().by_point["store.write"].kind == "truncate"

    def test_deactivate_clears(self):
        faults.activate(FaultPlan.parse("store.write:io_error@1"))
        faults.deactivate()
        assert faults.inject("store.write") is None
