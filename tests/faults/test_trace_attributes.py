"""Injected faults surface on the distributed trace.

Chaos-suite jobs must be debuggable after the fact: every fault the
injector fires while a trace is active is recorded as a structured
event on the innermost open span, and the worker annotates each attempt
with the per-point fired-counter delta.
"""

import pytest

from repro import faults
from repro.obs import trace
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def clean_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def _activate_trace():
    ctx = trace.TraceContext(
        trace_id=trace.new_trace_id(), span_id="root", job_id="chaos-job"
    )
    return trace.activate(ctx, job_id="chaos-job")


class TestFaultEventsOnSpans:
    def test_fired_fault_lands_on_the_open_span(self):
        faults.activate(faults.FaultPlan.parse("store.write:io_error@1.0"))
        with _activate_trace() as sink:
            with trace.span("store.put"):
                with pytest.raises(OSError):
                    faults.inject("store.write")
        (span,) = sink
        assert span["attributes"]["faults"] == [
            {"point": "store.write", "kind": "io_error"}
        ]

    def test_data_faults_are_recorded_too(self):
        faults.activate(faults.FaultPlan.parse("store.read:corrupt@1.0"))
        with _activate_trace() as sink:
            with trace.span("store.get"):
                assert faults.inject("store.read") == "corrupt"
        (span,) = sink
        assert span["attributes"]["faults"][0]["kind"] == "corrupt"

    def test_unfired_points_leave_spans_clean(self):
        faults.activate(faults.FaultPlan.parse("store.write:io_error@0.0"))
        with _activate_trace() as sink:
            with trace.span("store.put"):
                assert faults.inject("store.write") is None
        (span,) = sink
        assert "faults" not in span["attributes"]

    def test_fault_outside_any_trace_is_harmless(self):
        faults.activate(faults.FaultPlan.parse("store.write:error@1.0"))
        with pytest.raises(RuntimeError):
            faults.inject("store.write")


class TestStoreUnderChaosIsTraced:
    def test_store_write_fault_annotates_the_put_span(self, tmp_path):
        """A real store call under an active plan: the traced ``store.put``
        span carries both the failure outcome and the fault event."""
        store = ResultStore(root=tmp_path / "store")
        faults.activate(faults.FaultPlan.parse("store.write:io_error@1.0"))
        with _activate_trace() as sink:
            ok = store.put("ab12" * 4, {"status": "ok"}, stage="fit")
        faults.deactivate()
        assert ok is False  # the injected OSError degrades the write
        puts = [s for s in sink if s["name"] == "store.put"]
        assert len(puts) == 1
        assert puts[0]["attributes"]["ok"] is False
        assert {"point": "store.write", "kind": "io_error"} in puts[0][
            "attributes"
        ]["faults"]
