"""`repro faults list` and the docs stay in sync with the registry."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.faults import INJECTION_POINTS

DOCS = Path(__file__).resolve().parents[2] / "docs" / "quickstart.md"


class TestFaultsListCLI:
    def test_lists_every_registered_point(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in INJECTION_POINTS:
            assert name in out
        assert "REPRO_FAULTS is unset" in out

    def test_json_payload_mirrors_registry(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert main(["faults", "list", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["plan"] is None
        assert {p["name"] for p in doc["points"]} == set(INJECTION_POINTS)
        by_name = {p["name"]: p for p in doc["points"]}
        for name, point in INJECTION_POINTS.items():
            assert by_name[name]["kinds"] == list(point.kinds)

    def test_active_plan_is_shown(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "queue.claim:busy@0.1")
        assert main(["faults", "list"]) == 0
        assert "queue.claim:busy@0.1" in capsys.readouterr().out

    def test_malformed_plan_exits_nonzero(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "queue.claim:busy@oops")
        assert main(["faults", "list"]) == 1
        assert "invalid REPRO_FAULTS" in capsys.readouterr().err


class TestDocsSync:
    @pytest.mark.skipif(not DOCS.exists(), reason="docs not in this checkout")
    def test_quickstart_documents_every_injection_point(self):
        text = DOCS.read_text()
        assert "## Failure modes and recovery" in text
        for name in INJECTION_POINTS:
            assert name in text, (
                f"injection point {name!r} is registered but undocumented"
                " in docs/quickstart.md (run `repro faults list`)"
            )

    @pytest.mark.skipif(not DOCS.exists(), reason="docs not in this checkout")
    def test_quickstart_documents_observability_cli(self):
        """Every flag of the bench/profile subcommands is documented.

        Derived from the live parser, so adding a flag without a docs
        mention fails here — the same anti-drift contract the fault
        registry has.
        """
        import argparse

        from repro.cli import build_parser

        text = DOCS.read_text()
        assert "## Observability" in text
        (subs,) = [
            action
            for action in build_parser()._actions
            if isinstance(action, argparse._SubParsersAction)
        ]
        for command in ("bench", "profile", "trace"):
            assert f"repro {command}" in text, (
                f"subcommand `repro {command}` is undocumented in"
                " docs/quickstart.md"
            )
            for action in subs.choices[command]._actions:
                for flag in action.option_strings:
                    if flag in ("-h", "--help"):
                        continue
                    assert flag in text, (
                        f"`repro {command} {flag}` is undocumented in"
                        " docs/quickstart.md"
                    )
        # The bench tiers and the scrape endpoint ship in the same PR.
        for token in ("--tier serial", "--tier multicore", "/v1/metrics"):
            assert token in text, f"{token!r} undocumented in quickstart"

    @pytest.mark.skipif(not DOCS.exists(), reason="docs not in this checkout")
    def test_quickstart_documents_every_tracing_env_var(self):
        """Each `REPRO_TRACE_*`/`REPRO_LOG_*` knob the code reads has a
        row in the quickstart's env-config table — derived from the
        modules' own variable tuples, so a new knob cannot ship
        undocumented."""
        from repro.obs.trace import TRACE_ENV_VARS
        from repro.utils.logging import LOG_ENV_VARS

        text = DOCS.read_text()
        assert "### Tracing a job" in text
        for variable in (*TRACE_ENV_VARS, *LOG_ENV_VARS):
            assert f"| `{variable}` |" in text, (
                f"{variable} is read by the code but has no row in the"
                " docs/quickstart.md env-config table"
            )
        # The trace surfaces themselves are documented too.
        for token in ("/trace", "repro trace", "X-Repro-Trace-Id"):
            assert token in text, f"{token!r} undocumented in quickstart"
