"""FaultPlan grammar: valid plans parse, malformed plans fail loudly."""

import pytest

from repro.core.config import ConfigError
from repro.faults import FAULT_KINDS, INJECTION_POINTS, FaultPlan


class TestParse:
    def test_single_clause(self):
        plan = FaultPlan.parse("store.write:io_error@0.05")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.point == "store.write"
        assert spec.kind == "io_error"
        assert spec.probability == pytest.approx(0.05)

    def test_multi_clause_issue_example(self):
        plan = FaultPlan.parse(
            "store.write:io_error@0.05;queue.claim:busy@0.1;worker.run:hang@0.02"
        )
        assert set(plan.by_point) == {
            "store.write",
            "queue.claim",
            "worker.run",
        }
        assert plan.by_point["queue.claim"].kind == "busy"
        assert plan.by_point["worker.run"].probability == pytest.approx(0.02)

    def test_whitespace_and_empty_clauses_tolerated(self):
        plan = FaultPlan.parse("  store.read:corrupt@1 ; ;queue.ack:busy@0 ")
        assert set(plan.by_point) == {"store.read", "queue.ack"}

    def test_describe_round_trips(self):
        text = "store.write:io_error@0.05;queue.claim:busy@0.1"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.describe()).by_point == plan.by_point

    def test_boundary_probabilities(self):
        assert FaultPlan.parse("worker.run:hang@0").specs[0].probability == 0.0
        assert FaultPlan.parse("worker.run:hang@1").specs[0].probability == 1.0


class TestMalformed:
    @pytest.mark.parametrize(
        "text",
        [
            "store.write",  # no kind, no probability
            "store.write:io_error",  # no probability
            "store.write@0.5",  # no kind
            "nonsense.point:io_error@0.5",  # unknown point
            "store.write:frobnicate@0.5",  # unknown kind
            "store.write:busy@0.5",  # kind unsupported by the point
            "store.write:io_error@lots",  # non-numeric probability
            "store.write:io_error@1.5",  # probability out of range
            "store.write:io_error@-0.1",  # probability out of range
            "store.write:io_error@0.1;store.write:truncate@0.1",  # duplicate
            "  ;  ",  # set but empty
        ],
    )
    def test_raises_config_error(self, text):
        with pytest.raises(ConfigError):
            FaultPlan.parse(text)

    def test_config_error_is_a_value_error(self):
        # main() maps ValueError to exit 1 — ConfigError must qualify.
        assert issubclass(ConfigError, ValueError)


class TestFromEnv:
    def test_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None

    def test_env_plan_and_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "queue.claim:busy@0.25")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "42")
        plan = FaultPlan.from_env()
        assert plan.seed == 42
        assert plan.by_point["queue.claim"].probability == pytest.approx(0.25)

    def test_malformed_seed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "queue.claim:busy@0.25")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "soon")
        with pytest.raises(ConfigError):
            FaultPlan.from_env()


class TestRegistry:
    def test_every_point_kind_is_known(self):
        for point in INJECTION_POINTS.values():
            assert point.kinds, point.name
            for kind in point.kinds:
                assert kind in FAULT_KINDS

    def test_registry_names_are_the_keys(self):
        for name, point in INJECTION_POINTS.items():
            assert point.name == name

    def test_expected_points_registered(self):
        # The contract the docs, CLI, and chaos suite all rely on.
        assert set(INJECTION_POINTS) == {
            "store.write",
            "store.read",
            "queue.enqueue",
            "queue.claim",
            "queue.ack",
            "queue.heartbeat",
            "worker.run",
            "http.request",
        }
