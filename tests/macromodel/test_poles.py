"""Unit and property tests for repro.macromodel.poles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.macromodel import poles as pl


class TestPartitionPoles:
    def test_real_only(self):
        real, pairs = pl.partition_poles([-1.0, -2.0])
        np.testing.assert_array_equal(np.sort(real), [-2.0, -1.0])
        assert pairs.size == 0

    def test_pairs_normalized_upper(self):
        real, pairs = pl.partition_poles([-1 - 2j, -1 + 2j])
        assert real.size == 0
        assert pairs.size == 1
        assert pairs[0].imag > 0

    def test_order_independent(self):
        a = pl.partition_poles([-1 + 2j, -3.0, -1 - 2j])
        b = pl.partition_poles([-3.0, -1 - 2j, -1 + 2j])
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_missing_conjugate_raises(self):
        with pytest.raises(ValueError, match="conjugate"):
            pl.partition_poles([-1 + 2j])

    def test_mismatched_conjugate_raises(self):
        with pytest.raises(ValueError, match="conjugate"):
            pl.partition_poles([-1 + 2j, -1 - 2.5j])

    def test_empty(self):
        real, pairs = pl.partition_poles([])
        assert real.size == 0 and pairs.size == 0

    def test_repeated_pairs(self):
        real, pairs = pl.partition_poles([-1 + 2j, -1 - 2j, -1 + 2j, -1 - 2j])
        assert pairs.size == 2


class TestReconstructPoles:
    def test_roundtrip(self):
        original = np.array([-1.0, -0.5 + 3j, -0.5 - 3j, -2.0])
        real, pairs = pl.partition_poles(original)
        full = pl.reconstruct_poles(real, pairs)
        np.testing.assert_allclose(np.sort_complex(full), np.sort_complex(original))

    def test_interleaved_layout(self):
        full = pl.reconstruct_poles([-1.0], [-0.5 + 2j])
        np.testing.assert_allclose(full, [-1.0, -0.5 + 2j, -0.5 - 2j])


class TestConjugateComplete:
    def test_complete(self):
        assert pl.conjugate_pairs_complete([-1 + 1j, -1 - 1j, -2.0])

    def test_incomplete(self):
        assert not pl.conjugate_pairs_complete([-1 + 1j, -2.0])


class TestIsStable:
    def test_stable(self):
        assert pl.is_stable([-1.0, -0.1 + 5j, -0.1 - 5j])

    def test_unstable(self):
        assert not pl.is_stable([1.0])

    def test_marginal_rejected_strict(self):
        assert not pl.is_stable([1j, -1j], strict=True)

    def test_marginal_accepted_nonstrict(self):
        assert pl.is_stable([1j, -1j], strict=False)

    def test_margin(self):
        assert pl.is_stable([-1.0], margin=0.5)
        assert not pl.is_stable([-0.4], margin=0.5)

    def test_empty_stable(self):
        assert pl.is_stable([])


class TestMakeStable:
    def test_flips_real_part(self):
        out = pl.make_stable([1.0 + 2j, 1.0 - 2j])
        np.testing.assert_allclose(out.real, [-1.0, -1.0])
        np.testing.assert_allclose(out.imag, [2.0, -2.0])

    def test_leaves_stable_untouched(self):
        poles = np.array([-1.0 + 0.5j, -1.0 - 0.5j])
        np.testing.assert_array_equal(pl.make_stable(poles), poles)

    def test_axis_pole_pushed_left(self):
        out = pl.make_stable([2j, -2j], min_real=0.01)
        assert np.all(out.real < 0)

    def test_does_not_mutate_input(self):
        poles = np.array([1.0 + 0j])
        pl.make_stable(poles)
        assert poles[0] == 1.0


@settings(max_examples=50, deadline=None)
@given(
    reals=st.lists(st.floats(-10, -0.01), min_size=0, max_size=4),
    pair_res=st.lists(
        st.tuples(st.floats(-5, -0.01), st.floats(0.1, 10)), min_size=0, max_size=4
    ),
)
def test_partition_reconstruct_roundtrip_property(reals, pair_res):
    """partition -> reconstruct preserves the multiset of poles."""
    pairs = [complex(a, b) for a, b in pair_res]
    full = list(reals) + pairs + [np.conj(q) for q in pairs]
    if not full:
        return
    real_out, pairs_out = pl.partition_poles(np.array(full, dtype=complex))
    rebuilt = pl.reconstruct_poles(real_out, pairs_out)
    np.testing.assert_allclose(
        np.sort_complex(rebuilt), np.sort_complex(np.array(full, dtype=complex)),
        atol=1e-12,
    )
