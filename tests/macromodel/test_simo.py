"""Unit and property tests for the structured SIMO realization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.macromodel.realization import pole_residue_to_simo
from repro.macromodel.simo import SimoColumn, SimoRealization, segment_sum
from tests.conftest import make_pole_residue


class TestSegmentSum:
    def test_vector(self):
        out = segment_sum(np.array([1.0, 2.0, 3.0, 4.0]), np.array([0, 2, 4]))
        np.testing.assert_array_equal(out, [3.0, 7.0])

    def test_matrix(self):
        vals = np.arange(8.0).reshape(4, 2)
        out = segment_sum(vals, np.array([0, 1, 4]))
        np.testing.assert_array_equal(out, [[0.0, 1.0], [12.0, 15.0]])

    def test_empty_segments(self):
        out = segment_sum(np.array([1.0, 2.0]), np.array([0, 0, 2, 2]))
        np.testing.assert_array_equal(out, [0.0, 3.0, 0.0])

    def test_all_empty(self):
        out = segment_sum(np.zeros(0), np.array([0, 0]))
        np.testing.assert_array_equal(out, [0.0])

    def test_complex(self):
        out = segment_sum(np.array([1j, 2j]), np.array([0, 2]))
        assert out[0] == 3j


class TestSimoColumn:
    def test_order_counts_pairs_twice(self):
        col = SimoColumn(
            np.array([-1.0]),
            np.array([[1.0, 2.0]]),
            np.array([-0.5 + 3j]),
            np.array([[1 + 1j, 2 - 1j]]),
        )
        assert col.order == 3
        assert col.num_ports == 2

    def test_all_poles(self):
        col = SimoColumn(
            np.array([-1.0]),
            np.array([[1.0]]),
            np.array([-0.5 + 3j]),
            np.array([[1 + 1j]]),
        )
        np.testing.assert_allclose(
            np.sort_complex(col.all_poles()),
            np.sort_complex(np.array([-1.0, -0.5 + 3j, -0.5 - 3j])),
        )

    def test_rejects_lower_half_pair(self):
        with pytest.raises(ValueError, match="upper half"):
            SimoColumn(
                np.array([]),
                np.zeros((0, 1)),
                np.array([-1 - 1j]),
                np.ones((1, 1)) + 0j,
            )

    def test_rejects_residue_count_mismatch(self):
        with pytest.raises(ValueError, match="match"):
            SimoColumn(
                np.array([-1.0, -2.0]), np.ones((1, 2)), np.array([]), np.zeros((0, 2))
            )


class TestAgainstDense:
    """Every structured kernel must agree with its dense counterpart."""

    @pytest.fixture
    def simo(self):
        return pole_residue_to_simo(make_pole_residue(seed=7))

    def test_transfer_equals_pole_residue(self, simo):
        model = make_pole_residue(seed=7)
        for s in (0.3j, 5.0j, 0.5 + 2.0j):
            np.testing.assert_allclose(
                simo.transfer(s), model.transfer(s), atol=1e-12
            )

    def test_transfer_equals_dense_statespace(self, simo):
        ss = simo.to_statespace()
        for s in (1.0j, 0.1 + 7.0j):
            np.testing.assert_allclose(simo.transfer(s), ss.transfer(s), atol=1e-10)

    def test_apply_a(self, simo, rng):
        a = simo.dense_a()
        x = rng.standard_normal(simo.order) + 1j * rng.standard_normal(simo.order)
        np.testing.assert_allclose(simo.apply_a(x), a @ x, atol=1e-12)

    def test_apply_a_transpose(self, simo, rng):
        a = simo.dense_a()
        x = rng.standard_normal(simo.order) + 0j
        np.testing.assert_allclose(
            simo.apply_a(x, transpose=True), a.T @ x, atol=1e-12
        )

    def test_apply_a_matrix_input(self, simo, rng):
        a = simo.dense_a()
        x = rng.standard_normal((simo.order, 3))
        np.testing.assert_allclose(simo.apply_a(x), a @ x, atol=1e-12)

    def test_solve_shifted(self, simo, rng):
        a = simo.dense_a()
        shift = 0.3 + 1.1j
        rhs = rng.standard_normal(simo.order) + 1j * rng.standard_normal(simo.order)
        x = simo.solve_shifted(shift, rhs)
        np.testing.assert_allclose(
            (a - shift * np.eye(simo.order)) @ x, rhs, atol=1e-11
        )

    def test_solve_shifted_transpose(self, simo, rng):
        a = simo.dense_a()
        shift = -0.4 + 2.0j
        rhs = rng.standard_normal(simo.order) + 0j
        x = simo.solve_shifted(shift, rhs, transpose=True)
        np.testing.assert_allclose(
            (a.T - shift * np.eye(simo.order)) @ x, rhs, atol=1e-11
        )

    def test_solve_shifted_matrix_rhs(self, simo, rng):
        a = simo.dense_a()
        shift = 1.7j
        rhs = rng.standard_normal((simo.order, 4)) + 0j
        x = simo.solve_shifted(shift, rhs)
        np.testing.assert_allclose(
            (a - shift * np.eye(simo.order)) @ x, rhs, atol=1e-11
        )

    def test_solve_on_pole_raises(self, simo):
        pole = simo.real_val[0] if simo.real_val.size else complex(
            simo.pair_alpha[0], simo.pair_beta[0]
        )
        with pytest.raises(ZeroDivisionError):
            simo.solve_shifted(complex(pole), np.ones(simo.order))

    def test_apply_b(self, simo, rng):
        b = simo.dense_b()
        u = rng.standard_normal(simo.num_ports)
        np.testing.assert_allclose(simo.apply_b(u), b @ u, atol=1e-12)

    def test_apply_bt(self, simo, rng):
        b = simo.dense_b()
        x = rng.standard_normal(simo.order) + 1j * rng.standard_normal(simo.order)
        np.testing.assert_allclose(simo.apply_bt(x), b.T @ x, atol=1e-12)

    def test_apply_c_ct(self, simo, rng):
        x = rng.standard_normal(simo.order)
        y = rng.standard_normal(simo.num_ports)
        np.testing.assert_allclose(simo.apply_c(x), simo.c @ x)
        np.testing.assert_allclose(simo.apply_ct(y), simo.c.T @ y)

    def test_gamma_definition(self, simo):
        a = simo.dense_a()
        b = simo.dense_b()
        shift = 0.2 + 3.0j
        expected = simo.c @ np.linalg.solve(
            a - shift * np.eye(simo.order), b.astype(complex)
        )
        np.testing.assert_allclose(simo.gamma(shift), expected, atol=1e-10)

    def test_gamma_transpose_consistency(self, simo):
        shift = 0.1 + 2.5j
        np.testing.assert_allclose(
            simo.gamma_transpose(shift), simo.gamma(shift).T, atol=1e-10
        )


class TestMetadata:
    def test_poles_union(self, small_simo, small_model):
        np.testing.assert_allclose(
            np.sort_complex(small_simo.poles()),
            np.sort_complex(np.tile(small_model.poles, small_model.num_ports)),
        )

    def test_stability(self, small_simo):
        assert small_simo.is_stable()

    def test_spectral_radius_bound(self, small_simo):
        bound = small_simo.spectral_radius_bound()
        assert bound >= np.abs(small_simo.poles()).max() - 1e-12

    def test_column_orders_sum(self, small_simo):
        assert small_simo.column_orders.sum() == small_simo.order

    def test_columns_roundtrip(self, small_simo):
        cols = small_simo.columns
        rebuilt = SimoRealization(cols, small_simo.d)
        assert rebuilt.order == small_simo.order
        np.testing.assert_allclose(rebuilt.c, small_simo.c)

    def test_repr(self, small_simo):
        assert "SimoRealization" in repr(small_simo)

    def test_port_count_mismatch_rejected(self, small_simo):
        with pytest.raises(ValueError, match="columns"):
            SimoRealization(small_simo.columns[:2], small_simo.d)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_simo_transfer_matches_pole_residue_property(seed):
    """Structured O(n p) transfer == partial-fraction sum, any model."""
    model = make_pole_residue(seed=seed, num_ports=2, num_real=1, num_pairs=2)
    simo = pole_residue_to_simo(model)
    s = 1j * (seed % 13 + 0.5)
    np.testing.assert_allclose(simo.transfer(s), model.transfer(s), atol=1e-10)
