"""Unit tests for generic state-space -> pole/residue conversion."""

import numpy as np
import pytest

from repro.macromodel import pole_residue_to_simo
from repro.macromodel.conversion import (
    statespace_to_pole_residue,
    statespace_to_simo,
)
from repro.macromodel.statespace import StateSpace
from repro.synth import random_macromodel
from tests.conftest import make_pole_residue


@pytest.fixture
def dense_ss(small_simo):
    return small_simo.to_statespace()


class TestConversion:
    def test_transfer_preserved(self, dense_ss):
        pr = statespace_to_pole_residue(dense_ss)
        for s in (0.3j, 2.0j, 0.5 + 4.0j):
            np.testing.assert_allclose(
                pr.transfer(s), dense_ss.transfer(s), atol=1e-10
            )

    def test_result_is_real_model(self, dense_ss):
        pr = statespace_to_pole_residue(dense_ss)
        assert pr.is_real_model()

    def test_poles_are_a_eigenvalues(self, dense_ss):
        pr = statespace_to_pole_residue(dense_ss)
        np.testing.assert_allclose(
            np.sort(np.abs(pr.poles)), np.sort(np.abs(dense_ss.poles())), atol=1e-9
        )

    def test_simo_shortcut(self, dense_ss):
        simo = statespace_to_simo(dense_ss)
        np.testing.assert_allclose(
            simo.transfer(1.7j), dense_ss.transfer(1.7j), atol=1e-9
        )

    def test_random_rotated_realization(self, rng):
        """A similarity-rotated realization converts back faithfully."""
        model = make_pole_residue(seed=17, num_ports=2)
        ss = pole_residue_to_simo(model).to_statespace()
        t = rng.standard_normal((ss.order, ss.order)) + 3 * np.eye(ss.order)
        rotated = ss.similarity(t)
        pr = statespace_to_pole_residue(rotated)
        np.testing.assert_allclose(
            pr.transfer(2.2j), model.transfer(2.2j), atol=1e-7
        )

    def test_defective_a_rejected(self):
        # Jordan block: defective, eigenvector matrix singular.
        a = np.array([[-1.0, 1.0], [0.0, -1.0]])
        ss = StateSpace(a, np.ones((2, 1)), np.ones((1, 2)), np.zeros((1, 1)))
        with pytest.raises(ValueError, match="defective"):
            statespace_to_pole_residue(ss)

    def test_zero_order_rejected(self):
        ss = StateSpace(
            np.zeros((0, 0)), np.zeros((0, 1)), np.zeros((1, 0)), np.zeros((1, 1))
        )
        with pytest.raises(ValueError, match="zero-order"):
            statespace_to_pole_residue(ss)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            statespace_to_pole_residue(np.eye(3))

    def test_eigensolver_works_on_converted_model(self):
        """End-to-end: dense SS input -> conversion -> crossings."""
        from repro.core.solver import find_imaginary_eigenvalues
        from repro.hamiltonian.spectral import imaginary_eigenvalues_dense

        model = random_macromodel(8, 2, seed=55, sigma_target=1.06)
        ss = pole_residue_to_simo(model).to_statespace()
        converted = statespace_to_simo(ss)
        result = find_imaginary_eigenvalues(converted, num_threads=2)
        truth = imaginary_eigenvalues_dense(pole_residue_to_simo(model))
        assert result.num_crossings == truth.size
        if truth.size:
            np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-4)
