"""Unit tests for macromodel analysis utilities."""

import numpy as np
import pytest

from repro.macromodel.analysis import (
    dc_gain,
    modal_dominance,
    reduce_by_dominance,
    resonances,
    response_error,
)
from repro.macromodel.rational import PoleResidueModel
from repro.synth import random_macromodel
from tests.conftest import make_pole_residue


@pytest.fixture(scope="module")
def model():
    return random_macromodel(12, 3, seed=71, sigma_target=None)


class TestDcGain:
    def test_matches_transfer_at_zero(self, model):
        np.testing.assert_allclose(dc_gain(model), model.transfer(0.0).real, atol=1e-12)

    def test_is_real(self, model):
        assert not np.iscomplexobj(dc_gain(model))


class TestResonances:
    def test_one_per_pair(self, model):
        from repro.macromodel.poles import partition_poles

        _, pairs = partition_poles(model.poles)
        assert len(resonances(model)) == pairs.size

    def test_sorted_by_frequency(self, model):
        freqs = [r.frequency for r in resonances(model)]
        assert freqs == sorted(freqs)

    def test_q_factor_definition(self, model):
        for info in resonances(model):
            assert info.q_factor == pytest.approx(
                info.frequency / (2.0 * info.damping)
            )

    def test_no_pairs_no_resonances(self):
        rc = PoleResidueModel(
            np.array([-1.0, -2.0], dtype=complex),
            0.2 * np.ones((2, 1, 1), dtype=complex),
            np.zeros((1, 1)),
        )
        assert resonances(rc) == []


class TestModalDominance:
    def test_shape(self, model):
        assert modal_dominance(model).shape == (model.num_poles,)

    def test_scaling_with_residues(self, model):
        boosted = PoleResidueModel(
            model.poles, 2.0 * model.residues, model.d
        )
        np.testing.assert_allclose(
            modal_dominance(boosted), 2.0 * modal_dominance(model)
        )

    def test_low_damping_dominates(self):
        poles = np.array([-0.01 + 5j, -0.01 - 5j, -1.0 + 5j, -1.0 - 5j])
        residues = np.ones((4, 1, 1), dtype=complex)
        residues[2:] = 1.0
        model = PoleResidueModel(poles, residues, np.zeros((1, 1)))
        dom = modal_dominance(model)
        assert dom[0] > dom[2]


class TestReduceByDominance:
    def test_keep_all_is_identity(self, model):
        reduced, lost = reduce_by_dominance(model, model.num_poles)
        assert reduced is model
        assert lost == 0.0

    def test_reduction_keeps_pairs_together(self, model):
        reduced, _ = reduce_by_dominance(model, 6)
        assert reduced.is_real_model()
        # All remaining complex poles still have partners.
        from repro.macromodel.poles import conjugate_pairs_complete

        assert conjugate_pairs_complete(reduced.poles)

    def test_accuracy_ordering(self, model):
        """Keeping more poles never increases the response error."""
        freqs = np.linspace(0.01, 15.0, 200)
        err_small = response_error(model, reduce_by_dominance(model, 4)[0], freqs)
        err_large = response_error(model, reduce_by_dominance(model, 10)[0], freqs)
        assert err_large <= err_small + 1e-12

    def test_dominant_pole_retained(self, model):
        dom = modal_dominance(model)
        top = model.poles[int(np.argmax(dom))]
        reduced, _ = reduce_by_dominance(model, 2)
        assert np.min(np.abs(reduced.poles - top)) < 1e-12


class TestResponseError:
    def test_zero_for_identical(self, model):
        freqs = np.linspace(0.1, 10.0, 50)
        assert response_error(model, model, freqs) == 0.0

    def test_positive_for_different(self, model):
        other = make_pole_residue(seed=99)
        freqs = np.linspace(0.1, 10.0, 50)
        assert response_error(model, other, freqs) > 0.0
