"""Unit tests for repro.macromodel.rational."""

import numpy as np
import pytest

from repro.macromodel.rational import PoleResidueModel
from tests.conftest import make_pole_residue


class TestConstruction:
    def test_basic_properties(self, small_model):
        assert small_model.num_ports == 3
        assert small_model.num_poles == 8
        assert small_model.order == 24

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="match"):
            PoleResidueModel(
                np.array([-1.0]), np.zeros((2, 2, 2)), np.zeros((2, 2))
            )

    def test_rejects_nonsquare_residues(self):
        with pytest.raises(ValueError, match="square"):
            PoleResidueModel(
                np.array([-1.0]), np.zeros((1, 2, 3)), np.zeros((2, 2))
            )

    def test_rejects_d_shape_mismatch(self):
        with pytest.raises(ValueError, match="d has shape"):
            PoleResidueModel(
                np.array([-1.0]), np.zeros((1, 2, 2)), np.zeros((3, 3))
            )

    def test_rejects_conjugate_incomplete_poles(self):
        with pytest.raises(ValueError, match="conjugate"):
            PoleResidueModel(
                np.array([-1.0 + 1j]), np.zeros((1, 2, 2)), np.zeros((2, 2))
            )


class TestEvaluation:
    def test_transfer_partial_fractions(self, small_model):
        s = 0.5 + 2.0j
        expected = small_model.d.astype(complex)
        for pole, res in zip(small_model.poles, small_model.residues):
            expected = expected + res / (s - pole)
        np.testing.assert_allclose(small_model.transfer(s), expected)

    def test_transfer_many_matches_loop(self, small_model):
        pts = np.array([1j, 2j, 0.5 + 1j])
        batch = small_model.transfer_many(pts)
        for i, s in enumerate(pts):
            np.testing.assert_allclose(batch[i], small_model.transfer(s))

    def test_frequency_response_uses_jw(self, small_model):
        freqs = np.array([0.5, 1.5])
        resp = small_model.frequency_response(freqs)
        np.testing.assert_allclose(resp[0], small_model.transfer(0.5j))

    def test_real_on_real_axis(self, small_model):
        h = small_model.transfer(3.7)
        np.testing.assert_allclose(h.imag, 0.0, atol=1e-12)

    def test_conjugate_symmetry(self, small_model):
        s = 0.2 + 4.0j
        np.testing.assert_allclose(
            small_model.transfer(np.conj(s)), np.conj(small_model.transfer(s))
        )

    def test_asymptotic_limit_is_d(self, small_model):
        h = small_model.transfer(1e9)
        np.testing.assert_allclose(h.real, small_model.d, atol=1e-6)


class TestModelChecks:
    def test_is_stable(self, small_model):
        assert small_model.is_stable()

    def test_is_real_model(self, small_model):
        assert small_model.is_real_model()

    def test_broken_symmetry_detected(self, small_model):
        residues = small_model.residues.copy()
        # Corrupt one complex residue without touching its conjugate.
        idx = next(
            i for i, p in enumerate(small_model.poles) if abs(p.imag) > 1e-6
        )
        residues[idx] = residues[idx] + 0.5j
        broken = PoleResidueModel(small_model.poles, residues, small_model.d)
        assert not broken.is_real_model()

    def test_column_residues(self, small_model):
        col = small_model.column_residues(1)
        np.testing.assert_array_equal(col, small_model.residues[:, :, 1])

    def test_column_residues_out_of_range(self, small_model):
        with pytest.raises(IndexError):
            small_model.column_residues(5)


class TestAlgebra:
    def test_perturb_residues(self, small_model):
        delta = np.zeros_like(small_model.residues)
        delta[0, 0, 0] = 0.25
        perturbed = small_model.perturb_residues(delta)
        assert perturbed.residues[0, 0, 0] == small_model.residues[0, 0, 0] + 0.25
        # Original untouched.
        assert small_model.residues[0, 0, 0] != perturbed.residues[0, 0, 0]

    def test_perturb_residues_shape_check(self, small_model):
        with pytest.raises(ValueError):
            small_model.perturb_residues(np.zeros((1, 3, 3)))

    def test_with_d(self, small_model):
        new_d = np.zeros_like(small_model.d)
        out = small_model.with_d(new_d)
        np.testing.assert_array_equal(out.d, new_d)
        np.testing.assert_array_equal(out.poles, small_model.poles)

    def test_repr_mentions_size(self, small_model):
        assert "ports=3" in repr(small_model)


def test_factory_orders():
    model = make_pole_residue(seed=3, num_ports=2, num_real=1, num_pairs=2)
    assert model.num_poles == 5
    assert model.order == 10
