"""Unit tests for repro.macromodel.statespace."""

import numpy as np
import pytest

from repro.macromodel.statespace import StateSpace


def make_statespace(seed=0, n=6, p=2):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a = a - (np.abs(np.linalg.eigvals(a).real).max() + 0.5) * np.eye(n)
    return StateSpace(
        a,
        rng.standard_normal((n, p)),
        rng.standard_normal((p, n)),
        0.1 * rng.standard_normal((p, p)),
    )


class TestConstruction:
    def test_shapes(self):
        ss = make_statespace()
        assert ss.order == 6
        assert ss.num_ports == 2

    def test_rejects_nonsquare_a(self):
        with pytest.raises(ValueError, match="square"):
            StateSpace(
                np.zeros((2, 3)), np.zeros((2, 1)), np.zeros((1, 2)), np.zeros((1, 1))
            )

    def test_rejects_b_rows(self):
        with pytest.raises(ValueError, match="rows"):
            StateSpace(
                np.zeros((2, 2)), np.zeros((3, 1)), np.zeros((1, 2)), np.zeros((1, 1))
            )

    def test_rejects_c_shape(self):
        with pytest.raises(ValueError, match="c must have shape"):
            StateSpace(
                np.zeros((2, 2)), np.zeros((2, 1)), np.zeros((2, 2)), np.zeros((1, 1))
            )

    def test_rejects_d_shape(self):
        with pytest.raises(ValueError, match="d must have shape"):
            StateSpace(
                np.zeros((2, 2)), np.zeros((2, 1)), np.zeros((1, 2)), np.zeros((2, 2))
            )


class TestBehaviour:
    def test_poles_are_eigenvalues(self):
        ss = make_statespace()
        np.testing.assert_allclose(
            np.sort_complex(ss.poles()), np.sort_complex(np.linalg.eigvals(ss.a))
        )

    def test_stability(self):
        ss = make_statespace()
        assert ss.is_stable()

    def test_unstable_detected(self):
        ss = make_statespace()
        unstable = StateSpace(ss.a + 100 * np.eye(ss.order), ss.b, ss.c, ss.d)
        assert not unstable.is_stable()

    def test_transfer_definition(self):
        ss = make_statespace()
        s = 0.4 + 1.3j
        expected = ss.d + ss.c @ np.linalg.solve(
            s * np.eye(ss.order) - ss.a, ss.b.astype(complex)
        )
        np.testing.assert_allclose(ss.transfer(s), expected)

    def test_frequency_response_stack(self):
        ss = make_statespace()
        freqs = np.array([0.1, 1.0])
        resp = ss.frequency_response(freqs)
        np.testing.assert_allclose(resp[1], ss.transfer(1.0j))

    def test_similarity_invariance(self):
        ss = make_statespace()
        rng = np.random.default_rng(5)
        t = rng.standard_normal((ss.order, ss.order)) + 2 * np.eye(ss.order)
        ss2 = ss.similarity(t)
        s = 0.7j
        np.testing.assert_allclose(ss2.transfer(s), ss.transfer(s), atol=1e-9)

    def test_similarity_shape_check(self):
        ss = make_statespace()
        with pytest.raises(ValueError):
            ss.similarity(np.eye(3))

    def test_repr(self):
        assert "order=6" in repr(make_statespace())
