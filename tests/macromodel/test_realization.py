"""Unit tests for repro.macromodel.realization."""

import numpy as np
import pytest

from repro.macromodel.realization import (
    pole_residue_to_simo,
    realize_column,
    simo_from_columns,
)


class TestRealizeColumn:
    def test_real_pole_column(self):
        col = realize_column([-2.0], [[1.0, -1.0]])
        assert col.order == 1
        np.testing.assert_array_equal(col.real_poles, [-2.0])

    def test_pair_column(self):
        col = realize_column(
            [-1 + 3j, -1 - 3j], [[1 + 2j, 0.0], [1 - 2j, 0.0]]
        )
        assert col.order == 2
        assert col.pair_poles[0] == -1 + 3j
        np.testing.assert_allclose(col.pair_residues[0], [1 + 2j, 0.0])

    def test_pair_column_order_of_rows_irrelevant(self):
        a = realize_column([-1 + 3j, -1 - 3j], [[1 + 2j], [1 - 2j]])
        b = realize_column([-1 - 3j, -1 + 3j], [[1 - 2j], [1 + 2j]])
        np.testing.assert_allclose(a.pair_residues, b.pair_residues)

    def test_real_pole_with_complex_residue_rejected(self):
        with pytest.raises(ValueError, match="imaginary"):
            realize_column([-1.0], [[1.0 + 0.5j]])

    def test_nonconjugate_residues_rejected(self):
        with pytest.raises(ValueError, match="not conjugate"):
            realize_column(
                [-1 + 3j, -1 - 3j], [[1 + 2j], [1 + 2j]]
            )

    def test_missing_conjugate_pole_rejected(self):
        with pytest.raises(ValueError, match="conjugate"):
            realize_column([-1 + 3j], [[1.0 + 0j]])

    def test_empty_column(self):
        col = realize_column([], np.zeros((0, 2)))
        assert col.order == 0

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError, match="match"):
            realize_column([-1.0, -2.0], [[1.0]])


class TestPoleResidueToSimo:
    def test_order_is_p_times_m(self, small_model):
        simo = pole_residue_to_simo(small_model)
        assert simo.order == small_model.order
        assert simo.num_ports == small_model.num_ports

    def test_transfer_agreement(self, small_model):
        simo = pole_residue_to_simo(small_model)
        s = 0.9j
        np.testing.assert_allclose(
            simo.transfer(s), small_model.transfer(s), atol=1e-12
        )

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            pole_residue_to_simo(np.zeros((2, 2)))

    def test_d_carried_over(self, small_model):
        simo = pole_residue_to_simo(small_model)
        np.testing.assert_array_equal(simo.d, small_model.d)


class TestSimoFromColumns:
    def test_heterogeneous_columns(self):
        col0 = realize_column([-1.0], [[0.5, 0.0]])
        col1 = realize_column(
            [-0.5 + 2j, -0.5 - 2j], [[0.1 + 0.2j, 1.0 + 0j], [0.1 - 0.2j, 1.0 - 0j]]
        )
        simo = simo_from_columns([col0, col1], np.zeros((2, 2)))
        assert simo.order == 3
        np.testing.assert_array_equal(simo.column_orders, [1, 2])

    def test_transfer_of_heterogeneous(self):
        col0 = realize_column([-1.0], [[0.5, 0.0]])
        col1 = realize_column([-2.0], [[0.0, 0.25]])
        simo = simo_from_columns([col0, col1], np.zeros((2, 2)))
        s = 1.5j
        expected = np.array(
            [[0.5 / (s + 1.0), 0.0], [0.0, 0.25 / (s + 2.0)]]
        )
        np.testing.assert_allclose(simo.transfer(s), expected, atol=1e-14)
