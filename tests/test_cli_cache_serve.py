"""CLI coverage for the store/service surface: ``cache``, ``serve``,
``--version``, ``--cache`` flags, and the pure-JSON stdout contract."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main, version_string
from repro.synth import random_macromodel
from repro.touchstone import write_touchstone


@pytest.fixture(scope="module")
def violating_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-cache") / "device.s2p"
    model = random_macromodel(8, 2, seed=21, sigma_target=1.04)
    freqs = np.linspace(0.05, 14.0, 200)
    write_touchstone(path, freqs / (2 * np.pi), model.frequency_response(freqs))
    return str(path)


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {version_string()}"


class TestParser:
    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_fit_commands_accept_cache_flags(self):
        args = build_parser().parse_args(
            ["check", "x.s2p", "--cache", "readwrite", "--cache-dir", "/tmp/x"]
        )
        assert args.cache == "readwrite"
        assert args.cache_dir == "/tmp/x"
        assert {"cache", "cache_dir"} <= args._explicit

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8080
        assert args.cache == "readwrite"
        assert args.print_config is False

    def test_serve_accepts_queue_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--queue",
                "/tmp/q.sqlite3",
                "--lease",
                "90",
                "--rate",
                "2",
                "--burst",
                "5",
            ]
        )
        assert args.queue == "/tmp/q.sqlite3"
        assert args.lease == 90.0
        assert args.rate == 2.0
        assert args.burst == 5
        assert {"queue", "lease", "rate", "burst"} <= args._explicit

    def test_worker_defaults(self):
        args = build_parser().parse_args(["worker"])
        assert args.backend == "process"
        assert args.queue is None  # resolved from env/store at runtime
        assert args.max_jobs is None and args.idle_exit is None

    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs"])

    def test_jobs_purge_requires_state(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs", "purge"])
        args = build_parser().parse_args(["jobs", "purge", "--state", "failed"])
        assert args.state == "failed"


class TestCacheCommand:
    def test_stats_json_is_pure_json(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 0
        assert payload["root"] == str(tmp_path)

    def test_stats_human(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:    0" in out

    def test_clear_and_prune(self, tmp_path, capsys):
        from repro.store import ResultStore, content_key

        store = ResultStore(tmp_path)
        for i in range(3):
            store.put(content_key({"i": i}), {"v": i})
        assert main(["cache", "prune", "--cache-dir", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 0
        assert (
            main(
                [
                    "cache",
                    "prune",
                    "--cache-dir",
                    str(tmp_path),
                    "--max-bytes",
                    "1",
                    "--json",
                ]
            )
            == 0
        )
        assert json.loads(capsys.readouterr().out)["removed"] == 3
        store.put(content_key({"x": 1}), {"v": 1})
        assert main(["cache", "clear", "--cache-dir", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 1


class TestServePrintConfig:
    def test_print_config_is_pure_json(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--print-config",
                "--port",
                "0",
                "--workers",
                "3",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == 3
        assert payload["config"]["cache"] == "readwrite"
        assert payload["store"]["root"] == str(tmp_path)
        assert payload["port"] == 0  # the requested port, no socket bound

    def test_print_config_works_while_the_port_is_taken(
        self, tmp_path, capsys, monkeypatch
    ):
        import socket

        monkeypatch.setenv("REPRO_QUEUE_PATH", str(tmp_path / "q.sqlite3"))
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            taken = sock.getsockname()[1]
            code = main(["serve", "--print-config", "--port", str(taken)])
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["port"] == taken

    def test_print_config_includes_the_queue(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--print-config",
                "--port",
                "0",
                "--workers",
                "0",
                "--cache-dir",
                str(tmp_path),
                "--queue",
                str(tmp_path / "q.sqlite3"),
                "--lease",
                "90",
                "--rate",
                "1.5",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queue"]["path"] == str(tmp_path / "q.sqlite3")
        assert payload["queue"]["lease_seconds"] == 90.0
        assert payload["queue"]["rate"] == 1.5

    def test_queue_env_layers_under_flags(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_PATH", str(tmp_path / "env.sqlite3"))
        monkeypatch.setenv("REPRO_QUEUE_MAX_ATTEMPTS", "7")
        argv = [
            "serve",
            "--print-config",
            "--port",
            "0",
            "--workers",
            "0",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queue"]["path"] == str(tmp_path / "env.sqlite3")
        assert payload["queue"]["max_attempts"] == 7
        # An explicit flag beats the environment.
        assert main(argv + ["--queue", str(tmp_path / "flag.sqlite3")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queue"]["path"] == str(tmp_path / "flag.sqlite3")

    def test_env_and_flags_layer(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_PATH", str(tmp_path / "q.sqlite3"))
        monkeypatch.setenv("REPRO_CACHE", "read")
        assert main(["serve", "--print-config", "--port", "0"]) == 0
        assert json.loads(capsys.readouterr().out)["config"]["cache"] == "read"
        assert (
            main(["serve", "--print-config", "--port", "0", "--cache", "off"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["cache"] == "off"
        assert payload["store"] is None


class TestCheckWithCache:
    def test_repeated_check_hits_the_store(self, violating_file, tmp_path, capsys):
        argv = [
            "check",
            violating_file,
            "--poles",
            "8",
            "--cache",
            "readwrite",
            "--cache-dir",
            str(tmp_path),
            "--json",
        ]
        assert main(argv) == 2  # NOT passive
        first = json.loads(capsys.readouterr().out)
        assert first["cache"] == {"hits": 0, "misses": 2, "writes": 2}

        assert main(argv) == 2
        second = json.loads(capsys.readouterr().out)
        assert second["cache"] == {"hits": 2, "misses": 0, "writes": 0}
        assert second["passivity"] == first["passivity"]
        assert second["fit"] == first["fit"]

    def test_cache_env_applies(self, violating_file, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "readwrite")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["check", violating_file, "--poles", "8", "--json"]
        assert main(argv) == 2
        json.loads(capsys.readouterr().out)
        assert main(argv) == 2
        second = json.loads(capsys.readouterr().out)
        assert second["cache"]["hits"] == 2


class TestBatchWithCache:
    def test_fleet_cache_counters(self, tmp_path, capsys):
        argv = [
            "batch",
            "--synth",
            "2",
            "--synth-order",
            "6",
            "--backend",
            "serial",
            "--cache",
            "readwrite",
            "--cache-dir",
            str(tmp_path),
            "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache_hits"] == 0
        assert first["cache_misses"] == 2
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache_hits"] == 2
        assert second["cache_misses"] == 0
        assert second["results"][0]["crossings"] == first["results"][0]["crossings"]
