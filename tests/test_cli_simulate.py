"""CLI tests for the ``repro simulate`` subcommand."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.synth import random_macromodel
from repro.touchstone import write_touchstone


@pytest.fixture(scope="module")
def passive_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-sim") / "passive.s2p"
    model = random_macromodel(10, 2, seed=34, sigma_target=0.9)
    freqs = np.linspace(0.05, 14.0, 250)
    write_touchstone(path, freqs / (2 * np.pi), model.frequency_response(freqs))
    return str(path)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["simulate", "--synth"])
        assert args.stimulus == "prbs"
        assert args.steps == 4096
        assert args.integrator == "recursive"
        assert args.path is None

    def test_stimulus_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--synth", "--stimulus", "x"])


class TestSynth:
    def test_synth_prbs_json(self, capsys):
        code = main(
            ["simulate", "--synth", "--seed", "7", "--steps", "1024", "--json"]
        )
        assert code == 0  # PRBS on a mildly violating model still contracts
        payload = json.loads(capsys.readouterr().out)
        gain = payload["simulation"]["energy"]["energy_gain"]
        assert isinstance(gain, float) and 0.0 <= gain <= 1.0
        assert payload["simulation"]["stimulus"]["kind"] == "prbs"

    def test_worst_tone_witnesses_violation(self, capsys):
        code = main(
            [
                "simulate",
                "--synth",
                "--seed",
                "7",
                "--stimulus",
                "worst-tone",
                "--steps",
                "200000",
                "--threads",
                "2",
                "--json",
            ]
        )
        assert code == 2  # energy gain > 1: the witness fires
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulation"]["energy"]["energy_gain"] > 1.0
        assert payload["simulation"]["energy"]["passive"] is False

    def test_statespace_integrator(self, capsys):
        code = main(
            [
                "simulate",
                "--synth",
                "--seed",
                "3",
                "--steps",
                "256",
                "--integrator",
                "statespace",
                "--discretization",
                "zoh",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulation"]["integrator"] == "statespace"
        assert payload["simulation"]["discretization"] == "zoh"

    def test_resistance_termination(self, capsys):
        code = main(
            [
                "simulate",
                "--synth",
                "--seed",
                "3",
                "--steps",
                "256",
                "--resistance",
                "100",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulation"]["termination"]["resistances"] == [100.0]


class TestErrors:
    def test_no_input(self, capsys):
        assert main(["simulate"]) == 1
        assert "nothing to simulate" in capsys.readouterr().err

    def test_tone_requires_freq(self, capsys):
        assert main(["simulate", "--synth", "--stimulus", "tone"]) == 1
        assert "--tone-freq" in capsys.readouterr().err


class TestFile:
    def test_touchstone_input(self, passive_file, capsys):
        code = main(
            [
                "simulate",
                passive_file,
                "--poles",
                "10",
                "--steps",
                "512",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulation"]["energy"]["passive"] is True


class TestBatchFlag:
    def test_batch_simulate_reports_gain(self, capsys):
        code = main(
            [
                "batch",
                "--synth",
                "1",
                "--synth-order",
                "6",
                "--backend",
                "serial",
                "--simulate",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        gain = payload["results"][0]["energy_gain"]
        assert isinstance(gain, float)
