"""Unit tests for the unified RunConfig."""

import json

import numpy as np
import pytest

from repro.core.config import ConfigError, RunConfig, ensure_representation
from repro.core.options import SolverOptions


class TestConstruction:
    def test_defaults(self):
        config = RunConfig()
        assert config.num_threads == 1
        assert config.representation == "scattering"
        assert config.strategy == "auto"
        assert config.omega_min == 0.0
        assert config.omega_max is None
        assert isinstance(config.options, SolverOptions)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunConfig().num_threads = 2

    def test_bad_threads(self):
        with pytest.raises(ValueError):
            RunConfig(num_threads=0)

    def test_bad_strategy_lists_choices(self):
        with pytest.raises(ValueError, match="unknown strategy.*bisection"):
            RunConfig(strategy="bogus")

    def test_bad_representation_lists_choices(self):
        with pytest.raises(ValueError, match="unknown representation.*immittance"):
            RunConfig(representation="bogus")

    def test_bad_band(self):
        with pytest.raises(ValueError, match="omega_max"):
            RunConfig(omega_min=2.0, omega_max=1.0)

    def test_bad_options_type(self):
        with pytest.raises(TypeError, match="SolverOptions"):
            RunConfig(options={"krylov_dim": 40})

    def test_ensure_representation(self):
        assert ensure_representation("immittance") == "immittance"
        with pytest.raises(ValueError, match="unknown representation"):
            ensure_representation("Y")


class TestFromDict:
    def test_round_trip(self):
        config = RunConfig(
            num_threads=4,
            strategy="static",
            representation="immittance",
            omega_min=0.5,
            omega_max=10.0,
            options=SolverOptions(krylov_dim=40, num_wanted=4),
        )
        rebuilt = RunConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_to_dict_is_json_serializable(self):
        payload = RunConfig(num_threads=2).to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_nested_options_mapping(self):
        config = RunConfig.from_dict({"options": {"krylov_dim": 50}})
        assert config.options.krylov_dim == 50

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            RunConfig.from_dict({"threads": 4})

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError):
            RunConfig.from_dict([("num_threads", 4)])

    def test_values_coerced_to_plain_python(self):
        config = RunConfig(
            num_threads=np.int64(2),
            omega_min=np.float64(0.5),
            omega_max=np.float64(9.0),
        )
        assert type(config.num_threads) is int
        assert type(config.omega_min) is float
        assert type(config.omega_max) is float
        assert json.loads(json.dumps(config.to_dict()))["omega_max"] == 9.0

    def test_string_band_value_rejected(self):
        with pytest.raises(TypeError, match="omega_max"):
            RunConfig.from_dict({"omega_max": "10"})


class TestFromEnv:
    def test_empty_environment_gives_defaults(self):
        assert RunConfig.from_env({}) == RunConfig()

    def test_overrides(self):
        config = RunConfig.from_env(
            {
                "REPRO_NUM_THREADS": "6",
                "REPRO_STRATEGY": "queue",
                "REPRO_REPRESENTATION": "immittance",
                "REPRO_OMEGA_MIN": "0.25",
                "REPRO_OMEGA_MAX": "9.5",
                "REPRO_SEED": "123",
            }
        )
        assert config.num_threads == 6
        assert config.strategy == "queue"
        assert config.representation == "immittance"
        assert config.omega_min == 0.25
        assert config.omega_max == 9.5
        assert config.options.seed == 123

    def test_omega_max_auto(self):
        config = RunConfig.from_env({"REPRO_OMEGA_MAX": "none"})
        assert config.omega_max is None

    def test_empty_omega_max_clears_base_band(self):
        base = RunConfig(omega_max=5.0)
        config = RunConfig.from_env({"REPRO_OMEGA_MAX": ""}, base=base)
        assert config.omega_max is None

    def test_base_preserved(self):
        base = RunConfig(num_threads=3, strategy="static")
        config = RunConfig.from_env({"REPRO_NUM_THREADS": "5"}, base=base)
        assert config.num_threads == 5
        assert config.strategy == "static"

    def test_invalid_value_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            RunConfig.from_env({"REPRO_STRATEGY": "bogus"})

    def test_malformed_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
            RunConfig.from_env({"REPRO_NUM_THREADS": "four"})
        with pytest.raises(ValueError, match="REPRO_OMEGA_MAX"):
            RunConfig.from_env({"REPRO_OMEGA_MAX": "fast"})

    def test_backend_from_env(self):
        config = RunConfig.from_env(
            {"REPRO_BACKEND": "process", "REPRO_NUM_THREADS": "4"}
        )
        assert config.backend == "process"
        assert config.resolved_strategy() == "process"


class TestConfigError:
    """Every env parse failure is one uniform type naming the variable."""

    @pytest.mark.parametrize(
        "variable,value",
        [
            ("REPRO_NUM_THREADS", "four"),
            ("REPRO_NUM_THREADS", "4.5"),
            ("REPRO_OMEGA_MIN", "wide"),
            ("REPRO_OMEGA_MAX", "fast"),
            ("REPRO_SEED", "entropy"),
        ],
    )
    def test_malformed_values_raise_config_error(self, variable, value):
        with pytest.raises(ConfigError, match=variable):
            RunConfig.from_env({variable: value})

    @pytest.mark.parametrize(
        "environ",
        [
            {"REPRO_STRATEGY": "bogus"},
            {"REPRO_BACKEND": "gpu"},
            {"REPRO_REPRESENTATION": "admittance"},
            {"REPRO_NUM_THREADS": "0"},
            {"REPRO_OMEGA_MIN": "5", "REPRO_OMEGA_MAX": "1"},
        ],
    )
    def test_semantic_rejections_are_config_errors_too(self, environ):
        with pytest.raises(ConfigError):
            RunConfig.from_env(environ)

    def test_config_error_is_a_value_error(self):
        # Existing `except ValueError` call sites keep working.
        assert issubclass(ConfigError, ValueError)

    def test_importable_from_the_top_level(self):
        import repro

        assert repro.ConfigError is ConfigError

    def test_direct_construction_not_wrapped(self):
        # Only the environment path promises the uniform type; plain
        # constructor misuse stays a ValueError (possibly ConfigError's
        # parent) with the canonical message.
        with pytest.raises(ValueError, match="unknown strategy"):
            RunConfig(strategy="bogus")


class TestMerged:
    def test_merged_overrides_and_revalidates(self):
        config = RunConfig().merged(num_threads=8, strategy="static")
        assert config.num_threads == 8
        assert config.strategy == "static"
        with pytest.raises(ValueError):
            RunConfig().merged(num_threads=-1)

    def test_merged_no_overrides_returns_self(self):
        config = RunConfig()
        assert config.merged() is config

    def test_merged_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RunConfig field"):
            RunConfig().merged(threads=8)

    def test_merged_options_mapping_layers_on_top(self):
        config = RunConfig(options=SolverOptions(krylov_dim=50))
        merged = config.merged(options={"num_wanted": 4})
        assert merged.options.krylov_dim == 50
        assert merged.options.num_wanted == 4

    def test_original_unchanged(self):
        config = RunConfig()
        config.merged(num_threads=8)
        assert config.num_threads == 1


class TestResolvedStrategy:
    def test_auto_serial(self):
        assert RunConfig().resolved_strategy() == "bisection"

    def test_auto_parallel(self):
        assert RunConfig(num_threads=4).resolved_strategy() == "queue"

    def test_explicit(self):
        assert (
            RunConfig(strategy="static", num_threads=2).resolved_strategy() == "static"
        )


class TestCacheAxis:
    def test_defaults_off(self):
        config = RunConfig()
        assert config.cache == "off"
        assert config.cache_dir is None

    def test_bad_mode_lists_choices(self):
        with pytest.raises(ValueError, match="off.*read.*readwrite"):
            RunConfig(cache="always")

    def test_cache_dir_accepts_pathlike(self):
        from pathlib import Path

        config = RunConfig(cache_dir=Path("/tmp/store"))
        assert config.cache_dir == "/tmp/store"

    def test_cache_dir_type_rejected(self):
        with pytest.raises(TypeError, match="cache_dir"):
            RunConfig(cache_dir=123)

    def test_to_dict_round_trip(self):
        config = RunConfig(cache="readwrite", cache_dir="/tmp/store")
        rebuilt = RunConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.cache == "readwrite"

    def test_from_env(self):
        config = RunConfig.from_env(
            {"REPRO_CACHE": "ReadWrite", "REPRO_CACHE_DIR": "/tmp/env-store"}
        )
        assert config.cache == "readwrite"
        assert config.cache_dir == "/tmp/env-store"

    def test_from_env_invalid_mode_is_config_error(self):
        from repro.core.config import ConfigError

        with pytest.raises(ConfigError, match="cache"):
            RunConfig.from_env({"REPRO_CACHE": "sometimes"})

    def test_merged_revalidates(self):
        with pytest.raises(ValueError):
            RunConfig().merged(cache="nope")
        assert RunConfig().merged(cache="read").cache == "read"
