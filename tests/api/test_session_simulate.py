"""The Macromodel.simulate stage: results, staleness, store caching."""

import numpy as np
import pytest

from repro.api import Macromodel
from repro.core.config import RunConfig
from repro.synth import random_macromodel, random_simo_macromodel
from repro.timedomain import SimulationResult, Stimulus
from repro.utils.serialization import to_jsonable


def _session(seed=3, target=1.02, **config):
    model = random_macromodel(8, 2, seed=seed, sigma_target=target)
    cfg = RunConfig(**config) if config else None
    return Macromodel.from_pole_residue(model, config=cfg)


def test_simulate_records_result_and_payload():
    session = _session().simulate(num_steps=256)
    result = session.simulation_result
    assert isinstance(result, SimulationResult)
    assert session.energy_report is result.energy
    payload = session.to_dict()
    assert payload["simulation"]["num_steps"] == 256
    assert isinstance(
        payload["simulation"]["energy"]["energy_gain"], float
    )
    assert "transient" in session.summary()


def test_simulate_defaults_are_compact():
    session = _session().simulate(num_steps=64)
    assert session.simulation_result.incident is None
    kept = _session().simulate(num_steps=64, keep_waveforms=True)
    assert kept.simulation_result.incident.shape == (64, 2)


def test_simulate_requires_model():
    freqs = np.linspace(0.1, 10.0, 50)
    samples = np.zeros((50, 2, 2), dtype=complex)
    session = Macromodel.from_samples(freqs, samples)
    with pytest.raises(RuntimeError, match="no model"):
        session.simulate(num_steps=16)


def test_simo_sessions_fall_back_to_statespace():
    simo = random_simo_macromodel(8, 2, seed=5)
    session = Macromodel.from_pole_residue(simo).simulate(num_steps=128)
    assert session.simulation_result.integrator == "statespace"


def test_worst_tone_needs_prior_check():
    with pytest.raises(RuntimeError, match="worst-tone"):
        _session().simulate("worst-tone", num_steps=16)


def test_worst_tone_targets_peak():
    session = _session(seed=7, target=1.05).check_passivity(num_threads=2)
    band = max(session.passivity_report.bands, key=lambda b: b.severity)
    session.simulate("worst-tone", num_steps=512)
    stim = session.simulation_result.stimulus
    assert stim.kind == "tone"
    assert stim.freq == pytest.approx(band.peak_freq)
    assert stim.weights is not None


def test_enforce_invalidates_simulation():
    session = _session(seed=7, target=1.05).simulate(num_steps=64)
    assert session.simulation_result is not None
    session.check_passivity(num_threads=2).enforce()
    assert session.simulation_result is None
    assert session.energy_report is None


def test_termination_dict_accepted():
    session = _session().simulate(
        num_steps=64, termination={"resistances": [100.0, 25.0], "z0": 50.0}
    )
    term = session.simulation_result.termination
    assert term.resistances == (100.0, 25.0)


def test_simulate_caches_through_the_store(tmp_path):
    config = dict(cache="readwrite", cache_dir=str(tmp_path))
    first = _session(**config).simulate(num_steps=256, dt=0.05)
    assert first.cache_stats == {"hits": 0, "misses": 1, "writes": 1}

    second = _session(**config).simulate(num_steps=256, dt=0.05)
    assert second.cache_stats == {"hits": 1, "misses": 0, "writes": 0}
    assert to_jsonable(second.to_dict()["simulation"]) == to_jsonable(
        first.to_dict()["simulation"]
    )

    # a different stimulus is a different key
    third = _session(**config).simulate(
        Stimulus.prbs(seed=1), num_steps=256, dt=0.05
    )
    assert third.cache_stats["hits"] == 0


def test_waveform_runs_bypass_the_store(tmp_path):
    config = dict(cache="readwrite", cache_dir=str(tmp_path))
    session = _session(**config).simulate(
        num_steps=64, dt=0.05, keep_waveforms=True
    )
    assert session.cache_stats == {"hits": 0, "misses": 0, "writes": 0}
    assert session.simulation_result.incident is not None
