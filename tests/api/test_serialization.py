"""The uniform to_dict() -> JSON contract of every result object."""

import json

import numpy as np
import pytest

from repro.core.solver import find_imaginary_eigenvalues
from repro.passivity.characterization import characterize_passivity
from repro.passivity.enforcement import enforce_passivity
from repro.passivity.hinf import hinf_norm
from repro.passivity.immittance import characterize_immittance_passivity
from repro.synth import random_macromodel
from repro.utils.serialization import to_jsonable
from repro.vectfit.vector_fitting import vector_fit


@pytest.fixture(scope="module")
def model():
    return random_macromodel(8, 2, seed=5, sigma_target=1.03)


def round_trip(payload):
    return json.loads(json.dumps(payload))


class TestSolveResult:
    def test_to_dict_round_trips(self, model):
        result = find_imaginary_eigenvalues(model, num_threads=2)
        payload = round_trip(result.to_dict())
        assert payload["strategy"] == "queue"
        assert payload["num_threads"] == 2
        assert payload["num_crossings"] == result.num_crossings
        assert len(payload["omegas"]) == result.omegas.size
        assert payload["shifts"], "per-shift provenance missing"
        shift = payload["shifts"][0]["result"]["shift"]
        assert set(shift) == {"re", "im"}

    def test_to_dict_compact(self, model):
        result = find_imaginary_eigenvalues(model)
        payload = round_trip(result.to_dict(include_shifts=False))
        assert "shifts" not in payload
        assert payload["shifts_processed"] > 0


class TestPassivityReport:
    def test_to_dict_round_trips(self, model):
        report = characterize_passivity(model)
        payload = round_trip(report.to_dict())
        assert payload["passive"] is False
        assert payload["bands"]
        band = payload["bands"][0]
        assert band["peak_sigma"] > 1.0
        assert "work" in payload

    def test_include_solve(self, model):
        report = characterize_passivity(model)
        payload = round_trip(report.to_dict(include_solve=True))
        assert payload["solve"]["strategy"] == "bisection"

    def test_band_limited_report_is_qualified(self, model):
        # The model's violation lies near w~0.66; sweep a band above it.
        from repro.core.config import RunConfig

        full = characterize_passivity(model)
        assert not full.passive and not full.band_limited
        lo = full.bands[0].hi * 2.0
        blind = characterize_passivity(
            model, config=RunConfig(omega_min=lo, omega_max=lo * 4.0)
        )
        assert blind.passive  # in-band statement only
        assert blind.band_limited
        assert "in band" in blind.summary()
        assert round_trip(blind.to_dict())["band_limited"] is True
        # Full-axis reports keep the unqualified certificate wording.
        assert "in band" not in full.summary()


class TestEnforcementResult:
    def test_to_dict_round_trips(self, model):
        result = enforce_passivity(model)
        payload = round_trip(result.to_dict())
        assert payload["passive"] is True
        assert payload["model"]["num_ports"] == 2
        assert len(payload["history"]) == len(result.history)
        assert payload["reports"][-1]["passive"] is True

    def test_without_model(self, model):
        result = enforce_passivity(model)
        payload = round_trip(result.to_dict(include_model=False))
        assert "model" not in payload


class TestHinfResult:
    def test_to_dict_round_trips(self, model):
        result = hinf_norm(model, rtol=1e-3)
        payload = round_trip(result.to_dict())
        assert payload["norm"] == pytest.approx(result.norm)
        assert payload["lower"] <= payload["upper"]
        assert isinstance(payload["bisections"], int)


class TestRepresentationGuards:
    def test_characterize_passivity_rejects_immittance_config(self, model):
        from repro.core.config import RunConfig

        with pytest.raises(ValueError, match="representation"):
            characterize_passivity(
                model, config=RunConfig(representation="immittance")
            )


class TestImmittanceReport:
    def test_to_dict_round_trips(self):
        model = random_macromodel(8, 2, seed=11, sigma_target=0.5)
        shifted = model.with_d(model.d + 2.0 * np.eye(2))
        report = characterize_immittance_passivity(shifted)
        payload = round_trip(report.to_dict())
        assert isinstance(payload["passive"], bool)
        assert isinstance(payload["crossings"], list)
        assert payload["band_limited"] is False

    def test_band_limited_report_is_qualified(self):
        from repro.core.config import RunConfig

        model = random_macromodel(8, 2, seed=11, sigma_target=0.5)
        shifted = model.with_d(model.d + 2.0 * np.eye(2))
        report = characterize_immittance_passivity(
            shifted, config=RunConfig(representation="immittance", omega_max=2.0)
        )
        assert report.band_limited
        assert "in band" in report.summary()
        assert round_trip(report.to_dict())["band_limited"] is True


class TestFitResult:
    def test_to_dict_round_trips(self, model):
        freqs = np.linspace(0.05, 14.0, 150)
        fit = vector_fit(freqs, model.frequency_response(freqs), num_poles=8)
        payload = round_trip(fit.to_dict())
        assert payload["num_poles"] == 8
        assert payload["model"]["poles"], "pole data missing"
        assert payload["rms_error"] < 1e-3


class TestToJsonable:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.bool_(True)) is True

    def test_complex(self):
        assert to_jsonable(1 + 2j) == {"re": 1.0, "im": 2.0}

    def test_nonfinite_to_null(self):
        assert to_jsonable(float("nan")) is None
        assert to_jsonable(np.inf) is None

    def test_arrays_nested(self):
        out = to_jsonable(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert out == [[1.0, 2.0], [3.0, 4.0]]

    def test_complex_array(self):
        out = to_jsonable(np.array([1 + 1j]))
        assert out == [{"re": 1.0, "im": 1.0}]

    def test_unconvertible_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())
