"""Unit tests for the pluggable strategy registry."""

import pytest

from repro.core.registry import (
    StrategySpec,
    available_strategies,
    ensure_strategy,
    get_strategy,
    register_strategy,
    resolve_strategy,
    unregister_strategy,
)


class TestBuiltins:
    def test_builtins_registered(self):
        names = available_strategies()
        assert names[0] == "auto"
        assert {"bisection", "queue", "static"} <= set(names)

    def test_auto_resolution_serial(self):
        assert resolve_strategy("auto", 1).name == "bisection"

    def test_auto_resolution_parallel(self):
        assert resolve_strategy("auto", 4).name == "queue"

    def test_explicit_resolution(self):
        assert resolve_strategy("static", 3).name == "static"

    def test_bisection_multithread_rejected(self):
        with pytest.raises(ValueError, match="sequential"):
            resolve_strategy("bisection", 2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            resolve_strategy("bogus", 1)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="bisection"):
            ensure_strategy("bogus")

    def test_get_strategy_rejects_auto(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("auto")

    def test_spec_metadata(self):
        spec = get_strategy("bisection")
        assert isinstance(spec, StrategySpec)
        assert spec.max_threads == 1
        assert spec.supports_threads(1)
        assert not spec.supports_threads(2)


class TestPluginMechanism:
    def test_register_resolve_unregister(self):
        calls = []

        @register_strategy("testonly", min_threads=2, description="test plugin")
        def driver(
            model, *, num_threads, representation, omega_min, omega_max, options
        ):
            calls.append(num_threads)
            return "sentinel"

        try:
            assert "testonly" in available_strategies()
            spec = resolve_strategy("testonly", 2)
            assert spec.driver is driver
            assert (
                spec.driver(
                    None,
                    num_threads=2,
                    representation="scattering",
                    omega_min=0.0,
                    omega_max=None,
                    options=None,
                )
                == "sentinel"
            )
            assert calls == [2]
            with pytest.raises(ValueError, match="num_threads"):
                resolve_strategy("testonly", 1)
        finally:
            unregister_strategy("testonly")
        assert "testonly" not in available_strategies()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("queue")(lambda *a, **k: None)

    def test_auto_reserved(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("auto")(lambda *a, **k: None)

    def test_registered_plugin_reachable_from_solver(self, small_model):
        from repro.core.solver import solve

        seen = {}

        @register_strategy("recording")
        def driver(
            model, *, num_threads, representation, omega_min, omega_max, options
        ):
            seen["model"] = model
            seen["num_threads"] = num_threads
            return "driver-result"

        try:
            result = solve(small_model, strategy="recording", num_threads=7)
        finally:
            unregister_strategy("recording")
        assert result == "driver-result"
        assert seen["model"] is small_model
        assert seen["num_threads"] == 7
