"""CLI features added by the facade rework (--strategy, --json, strategies)."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.synth import random_macromodel
from repro.touchstone import write_touchstone


@pytest.fixture(scope="module")
def violating_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("api_cli") / "device.s2p"
    model = random_macromodel(10, 2, seed=33, sigma_target=1.04)
    freqs = np.linspace(0.05, 14.0, 250)
    write_touchstone(path, freqs / (2 * np.pi), model.frequency_response(freqs))
    return str(path)


class TestStrategyFlag:
    def test_default_auto(self):
        args = build_parser().parse_args(["check", "x.s2p"])
        assert args.strategy == "auto"

    def test_registered_choices_accepted(self):
        args = build_parser().parse_args(["check", "x.s2p", "--strategy", "static"])
        assert args.strategy == "static"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "x.s2p", "--strategy", "bogus"])

    def test_check_with_explicit_strategy(self, violating_file, capsys):
        code = main(
            [
                "check",
                violating_file,
                "--poles",
                "10",
                "--threads",
                "2",
                "--strategy",
                "static",
            ]
        )
        assert code == 2
        assert "NOT passive" in capsys.readouterr().out


class TestJsonFlag:
    def test_check_json_payload(self, violating_file, capsys):
        code = main(["check", violating_file, "--poles", "10", "--json"])
        assert code == 2
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["is_passive"] is False
        assert payload["passivity"]["bands"]
        assert payload["config"]["strategy"] == "auto"


class TestRepresentationHandling:
    @pytest.fixture(scope="class")
    def admittance_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("api_cli_y") / "device.y2p"
        model = random_macromodel(8, 2, seed=11, sigma_target=0.5)
        shifted = model.with_d(model.d + 2.0 * np.eye(2))
        freqs = np.linspace(0.05, 14.0, 200)
        write_touchstone(
            path,
            freqs / (2 * np.pi),
            shifted.frequency_response(freqs),
            parameter="Y",
        )
        return str(path)

    def test_check_runs_immittance_test_on_y_file(self, admittance_file, capsys):
        code = main(["check", admittance_file, "--poles", "8"])
        assert code == 0
        assert "H + H^H" in capsys.readouterr().out

    def test_enforce_fails_fast_on_y_file(self, admittance_file, capsys):
        code = main(
            ["enforce", admittance_file, "--poles", "8", "--out", "/tmp/x.s2p"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "--representation scattering" in err
        # Fail-fast: the fit line must not have been printed.
        assert "fit:" not in capsys.readouterr().out

    def test_representation_flag_overrides_file_type(self, violating_file, capsys):
        code = main(
            [
                "check",
                violating_file,
                "--poles",
                "10",
                "--representation",
                "scattering",
                "--json",
            ]
        )
        assert code == 2
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["config"]["representation"] == "scattering"


class TestStrategiesCommand:
    def test_lists_builtins(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("bisection", "queue", "static", "auto"):
            assert name in out
        assert "scattering" in out


class TestEnvOverride:
    def test_env_threads_picked_up(self, violating_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "2")
        code = main(["check", violating_file, "--poles", "10", "--json"])
        assert code == 2
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["config"]["num_threads"] == 2

    def test_explicit_flag_beats_env(self, violating_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        code = main(
            ["check", violating_file, "--poles", "10", "--threads", "2", "--json"]
        )
        assert code == 2
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["config"]["num_threads"] == 2

    def test_explicit_default_value_beats_env(
        self, violating_file, capsys, monkeypatch
    ):
        # --threads 1 equals the parser default but was typed explicitly,
        # so it must force a serial run despite REPRO_NUM_THREADS.
        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        code = main(
            ["check", violating_file, "--poles", "10", "--threads", "1", "--json"]
        )
        assert code == 2
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["config"]["num_threads"] == 1
