"""The legacy free functions keep working as deprecation shims."""

import warnings

import numpy as np
import pytest

import repro
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def model():
    return random_macromodel(8, 2, seed=5, sigma_target=1.03)


def call_and_catch(func, *args, **kwargs):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = func(*args, **kwargs)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    return result, deprecations


class TestShimsWarn:
    def test_find_imaginary_eigenvalues(self, model):
        result, warns = call_and_catch(
            repro.find_imaginary_eigenvalues, model, num_threads=2
        )
        assert warns and "Macromodel" in str(warns[0].message)
        assert result.strategy == "queue"
        assert result.num_crossings > 0

    def test_characterize_passivity(self, model):
        report, warns = call_and_catch(repro.characterize_passivity, model)
        assert warns
        assert report.passive is False

    def test_enforce_passivity(self, model):
        result, warns = call_and_catch(repro.enforce_passivity, model)
        assert warns
        assert result.passive is True

    def test_vector_fit(self, model):
        freqs = np.linspace(0.05, 14.0, 120)
        fit, warns = call_and_catch(
            repro.vector_fit, freqs, model.frequency_response(freqs), num_poles=8
        )
        assert warns
        assert fit.rms_error < 1e-6


class TestShimsDelegate:
    def test_results_match_facade(self, model):
        legacy, _ = call_and_catch(repro.characterize_passivity, model)
        session = repro.Macromodel.from_pole_residue(model).check_passivity()
        facade = session.passivity_report
        np.testing.assert_allclose(
            np.sort(legacy.crossings), np.sort(facade.crossings), atol=1e-6
        )
        assert legacy.passive == facade.passive

    def test_submodule_functions_do_not_warn(self, model):
        from repro.passivity.characterization import characterize_passivity

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            characterize_passivity(model)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ], "the internal implementation must stay warning-free"

    def test_wrapped_attribute_points_at_impl(self):
        from repro.passivity.enforcement import enforce_passivity as impl

        assert repro.enforce_passivity.__wrapped__ is impl
