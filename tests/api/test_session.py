"""End-to-end tests of the Macromodel session facade."""

import json

import numpy as np
import pytest

from repro.api import Macromodel, RunConfig
from repro.synth import random_macromodel
from repro.touchstone import read_touchstone, write_touchstone


@pytest.fixture(scope="module")
def device():
    """A mildly non-passive 2-port 'measured device'."""
    return random_macromodel(10, 2, seed=33, sigma_target=1.04)


@pytest.fixture(scope="module")
def device_file(device, tmp_path_factory):
    path = tmp_path_factory.mktemp("api") / "device.s2p"
    freqs = np.linspace(0.05, 14.0, 250)
    write_touchstone(path, freqs / (2 * np.pi), device.frequency_response(freqs))
    return str(path)


class TestConstructors:
    def test_from_touchstone(self, device_file):
        session = Macromodel.from_touchstone(device_file)
        assert session.data is not None
        assert session.data.num_ports == 2
        assert session.model is None

    def test_from_pole_residue(self, device):
        session = Macromodel.from_pole_residue(device)
        assert session.model is device

    def test_from_pole_residue_type_checked(self):
        with pytest.raises(TypeError):
            Macromodel.from_pole_residue(np.eye(3))

    def test_from_touchstone_y_parameters_default_to_immittance(
        self, tmp_path
    ):
        from repro.passivity.immittance import ImmittancePassivityReport

        model = random_macromodel(8, 2, seed=11, sigma_target=0.5)
        shifted = model.with_d(model.d + 2.0 * np.eye(2))
        freqs = np.linspace(0.05, 14.0, 200)
        path = tmp_path / "device.y2p"
        write_touchstone(
            path,
            freqs / (2 * np.pi),
            shifted.frequency_response(freqs),
            parameter="Y",
        )
        session = Macromodel.from_touchstone(path)
        assert session.config.representation == "immittance"
        session.fit(num_poles=8).check_passivity()
        assert isinstance(session.passivity_report, ImmittancePassivityReport)

    def test_export_preserves_parameter_type(self, tmp_path):
        model = random_macromodel(8, 2, seed=11, sigma_target=0.5)
        shifted = model.with_d(model.d + 2.0 * np.eye(2))
        freqs = np.linspace(0.05, 14.0, 200)
        src = tmp_path / "device.y2p"
        write_touchstone(
            src, freqs / (2 * np.pi), shifted.frequency_response(freqs),
            parameter="Y",
        )
        out = tmp_path / "out.y2p"
        Macromodel.from_touchstone(src).fit(num_poles=8).to_touchstone(out)
        assert read_touchstone(out).parameter == "Y"

    def test_from_touchstone_warns_on_representation_mismatch(
        self, device_file
    ):
        with pytest.warns(UserWarning, match="S-parameters"):
            Macromodel.from_touchstone(
                device_file, config=RunConfig(representation="immittance")
            )

    def test_from_samples(self, device):
        freqs = np.linspace(0.05, 14.0, 120)
        session = Macromodel.from_samples(freqs, device.frequency_response(freqs))
        session.fit(num_poles=10)
        assert session.fit_result.rms_error < 1e-6

    def test_from_samples_y_parameters_default_to_immittance(self, tmp_path):
        model = random_macromodel(8, 2, seed=11, sigma_target=0.5)
        shifted = model.with_d(model.d + 2.0 * np.eye(2))
        freqs = np.linspace(0.05, 14.0, 150)
        session = Macromodel.from_samples(
            freqs, shifted.frequency_response(freqs), parameter="Y"
        )
        assert session.config.representation == "immittance"
        out = tmp_path / "samples.y2p"
        session.fit(num_poles=8).to_touchstone(out)
        assert read_touchstone(out).parameter == "Y"


class TestPipeline:
    def test_fit_requires_data(self, device):
        with pytest.raises(RuntimeError, match="no sample data"):
            Macromodel.from_pole_residue(device).fit()

    def test_stage_requires_model(self, device_file):
        with pytest.raises(RuntimeError, match="no model"):
            Macromodel.from_touchstone(device_file).check_passivity()

    def test_fluent_check(self, device_file):
        session = (
            Macromodel.from_touchstone(device_file)
            .configure(num_threads=2)
            .fit(num_poles=10)
            .check_passivity()
        )
        assert session.is_passive is False
        assert session.passivity_report.bands
        assert session.report is session.passivity_report

    def test_fluent_enforce_and_export(self, device_file, tmp_path):
        out = tmp_path / "passive.s2p"
        session = (
            Macromodel.from_touchstone(device_file)
            .fit(num_poles=10)
            .check_passivity()
            .enforce()
            .to_touchstone(out)
        )
        assert session.is_passive is True
        assert session.enforcement_result.passive
        data = read_touchstone(out)
        peak = np.linalg.svd(data.matrices, compute_uv=False).max()
        assert peak < 1.0

    def test_enforce_rejects_simo(self, device):
        from repro.macromodel.realization import pole_residue_to_simo

        session = Macromodel.from_pole_residue(pole_residue_to_simo(device))
        with pytest.raises(TypeError, match="PoleResidueModel"):
            session.enforce()

    def test_hinf(self, device):
        session = Macromodel.from_pole_residue(device).hinf(rtol=1e-4)
        assert session.hinf_result.norm == pytest.approx(1.04, abs=0.01)

    def test_immittance_config_dispatches(self):
        from repro.passivity.immittance import ImmittancePassivityReport

        model = random_macromodel(8, 2, seed=11, sigma_target=0.5)
        shifted = model.with_d(model.d + 2.0 * np.eye(2))
        session = Macromodel.from_pole_residue(
            shifted, config=RunConfig(representation="immittance")
        ).check_passivity()
        assert isinstance(session.passivity_report, ImmittancePassivityReport)
        assert isinstance(session.is_passive, bool)
        assert "passive" in session.to_dict()["passivity"]

    def test_hinf_honors_strategy_and_handles_band_limits(self, device):
        session = Macromodel.from_pole_residue(
            device, config=RunConfig(strategy="static", num_threads=2)
        ).hinf(rtol=1e-3)
        assert session.hinf_result.norm == pytest.approx(1.04, abs=0.01)
        # Session-level band limits are a characterization knob; the hinf
        # stage drops them so a band-limited pipeline still works...
        banded = Macromodel.from_pole_residue(
            device, config=RunConfig(omega_max=5.0)
        ).hinf(rtol=1e-3)
        assert banded.hinf_result.norm == pytest.approx(1.04, abs=0.01)
        # ...but asking for a band explicitly on the hinf call is an error.
        with pytest.raises(ValueError, match="omega"):
            Macromodel.from_pole_residue(device).hinf(omega_max=5.0)

    def test_enforce_drops_session_band_and_rejects_explicit_band(self, device):
        # A band-limited session still enforces over the full axis...
        session = Macromodel.from_pole_residue(
            device, config=RunConfig(omega_max=5.0)
        ).enforce()
        assert session.is_passive is True
        assert session.enforcement_result.reports[-1].solve.band[1] > 5.0
        # ...but asking for a band on the enforce call itself is an error.
        with pytest.raises(ValueError, match="band"):
            Macromodel.from_pole_residue(device).enforce(omega_max=5.0)

    def test_enforce_reuses_prior_check_report(self, device):
        session = Macromodel.from_pole_residue(device).check_passivity()
        report = session.passivity_report
        session.enforce()
        # Iteration 0 must be the very report check_passivity produced.
        assert session.enforcement_result.reports[0] is report

    def test_enforce_invalidates_stale_stage_results(self, device):
        session = (
            Macromodel.from_pole_residue(device)
            .find_crossings()
            .hinf(rtol=1e-3)
            .check_passivity()
        )
        assert session.solve_result is not None
        session.enforce()
        # The sweep/norm described the pre-enforcement model.
        assert session.solve_result is None
        assert session.hinf_result is None
        payload = session.to_dict()
        assert "solve" not in payload and "hinf" not in payload

    def test_refit_invalidates_stage_results(self, device_file):
        session = Macromodel.from_touchstone(device_file).fit(num_poles=10)
        session.check_passivity()
        session.fit(num_poles=12)
        assert session.passivity_report is None
        assert session.is_passive is None

    def test_enforce_does_not_reuse_band_limited_report(self, device):
        session = Macromodel.from_pole_residue(device)
        session.check_passivity(omega_max=5.0)
        report = session.passivity_report
        session.enforce()
        assert session.enforcement_result.reports[0] is not report

    def test_enforce_ignores_unsound_passive_seed(self, device):
        # A passive-looking report from a band that misses the violation
        # must not let enforce_passivity skip its own sweep.
        from repro.passivity.characterization import characterize_passivity
        from repro.passivity.enforcement import enforce_passivity

        blind = characterize_passivity(device, omega_max=1e-3)
        assert blind.passive  # the violation lies outside this tiny band
        result = enforce_passivity(device, initial_report=blind)
        assert result.passive
        assert result.iterations >= 1  # it ran its own full-axis sweeps
        full = characterize_passivity(result.model)
        assert full.passive

    def test_immittance_config_rejected_by_scattering_only_stages(self, device):
        session = Macromodel.from_pole_residue(
            device, config=RunConfig(representation="immittance")
        )
        with pytest.raises(ValueError, match="representation"):
            session.enforce()
        with pytest.raises(ValueError, match="representation"):
            session.hinf()

    def test_find_crossings(self, device):
        session = Macromodel.from_pole_residue(device).find_crossings(num_threads=2)
        assert session.solve_result.strategy == "queue"
        assert session.solve_result.num_crossings > 0

    def test_per_call_override_does_not_stick(self, device):
        session = Macromodel.from_pole_residue(device)
        session.check_passivity(num_threads=2)
        assert session.passivity_report.solve.num_threads == 2
        assert session.config.num_threads == 1

    def test_configure_with_config_object(self, device):
        config = RunConfig(num_threads=2, strategy="static")
        session = Macromodel.from_pole_residue(device).configure(config)
        assert session.config is config
        session.check_passivity()
        assert session.passivity_report.solve.strategy == "static"

    def test_export_without_data_uses_synthetic_grid(self, device, tmp_path):
        out = tmp_path / "model.s2p"
        Macromodel.from_pole_residue(device).check_passivity().to_touchstone(out)
        data = read_touchstone(out)
        assert data.num_ports == 2
        assert data.freqs_hz.size > 10


class TestReporting:
    def test_summary_lists_stages(self, device_file):
        session = Macromodel.from_touchstone(device_file).fit(num_poles=10)
        session.check_passivity()
        text = session.summary()
        assert "fit:" in text
        assert "passivity:" in text

    def test_repr_tracks_state(self, device):
        session = Macromodel.from_pole_residue(device)
        assert "state=new" in repr(session)
        session.check_passivity()
        assert "checked" in repr(session)

    def test_to_dict_json_serializable(self, device_file, tmp_path):
        session = (
            Macromodel.from_touchstone(device_file)
            .fit(num_poles=10)
            .check_passivity()
            .enforce()
            .hinf(rtol=1e-3)
            .to_touchstone(tmp_path / "out.s2p")
        )
        payload = session.to_dict()
        rebuilt = json.loads(json.dumps(payload))
        assert rebuilt["is_passive"] is True
        assert rebuilt["fit"]["num_poles"] == 10
        assert rebuilt["enforcement"]["passive"] is True
        assert rebuilt["hinf"]["norm"] > 0
        assert rebuilt["config"]["num_threads"] == 1
        assert rebuilt["exports"]
