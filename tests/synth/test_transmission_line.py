"""Unit tests for the transmission-line workload generator."""

import numpy as np
import pytest

from repro.macromodel.analysis import resonances
from repro.synth.transmission_line import transmission_line_model


class TestStructure:
    def test_order(self):
        model = transmission_line_model(10, 3, seed=1, sigma_target=None)
        assert model.num_poles == 20
        assert model.num_ports == 3

    def test_stable_and_real(self):
        model = transmission_line_model(12, 2, seed=2, sigma_target=None)
        assert model.is_stable()
        assert model.is_real_model()

    def test_resonance_comb_spacing(self):
        delay = 4.0
        model = transmission_line_model(
            15, 2, seed=3, delay=delay, jitter=0.0, sigma_target=None
        )
        freqs = np.array([r.frequency for r in resonances(model)])
        spacing = np.diff(np.sort(freqs))
        np.testing.assert_allclose(spacing, np.pi / delay, rtol=1e-9)

    def test_jitter_perturbs_comb(self):
        a = transmission_line_model(10, 2, seed=4, jitter=0.0, sigma_target=None)
        b = transmission_line_model(10, 2, seed=4, jitter=0.05, sigma_target=None)
        fa = sorted(r.frequency for r in resonances(a))
        fb = sorted(r.frequency for r in resonances(b))
        assert not np.allclose(fa, fb)

    def test_reproducible(self):
        a = transmission_line_model(8, 2, seed=5)
        b = transmission_line_model(8, 2, seed=5)
        np.testing.assert_array_equal(a.residues, b.residues)

    def test_loss_grows_with_frequency(self):
        model = transmission_line_model(
            20, 2, seed=6, jitter=0.0, sigma_target=None
        )
        infos = resonances(model)
        rel_loss = [r.damping / r.frequency for r in infos]
        assert rel_loss[-1] > rel_loss[0]


class TestSolverInteraction:
    def test_characterization_finds_comb_violations(self):
        """A near-threshold comb produces several distinct narrow bands —
        the even-coverage stress case for the dynamic scheduler."""
        from repro.passivity import characterize_passivity

        model = transmission_line_model(16, 3, seed=7, sigma_target=1.08)
        report = characterize_passivity(model, num_threads=3)
        assert not report.passive
        assert len(report.bands) >= 2
        # Bands are narrow relative to the comb span.
        span = report.crossings.max() - report.crossings.min()
        for band in report.bands:
            assert band.width < 0.2 * span

    def test_matches_dense_truth(self):
        from repro.core.solver import find_imaginary_eigenvalues
        from repro.hamiltonian.spectral import imaginary_eigenvalues_dense
        from repro.macromodel import pole_residue_to_simo

        model = transmission_line_model(8, 2, seed=8, sigma_target=1.04)
        simo = pole_residue_to_simo(model)
        truth = imaginary_eigenvalues_dense(simo)
        result = find_imaginary_eigenvalues(simo, num_threads=2)
        assert result.num_crossings == truth.size
        if truth.size:
            np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            transmission_line_model(0, 2)
        with pytest.raises(ValueError):
            transmission_line_model(4, 2, delay=-1.0)
