"""Unit tests for the Table I workload definitions."""

import pytest

from repro.synth.workloads import TABLE1_CASES, build_case, fig6_case


class TestCaseSpecs:
    def test_twelve_cases(self):
        assert len(TABLE1_CASES) == 12

    def test_sizes_match_paper(self):
        """The (n, p) pairs are copied verbatim from Table I."""
        expected = [
            (1000, 20), (1000, 20), (1000, 20), (1980, 18),
            (2240, 56), (1728, 18), (1734, 83), (1792, 56),
            (1702, 56), (4150, 83), (1792, 56), (2432, 83),
        ]
        assert [(c.order, c.ports) for c in TABLE1_CASES] == expected

    def test_passive_cases_marked(self):
        """Cases 4 and 6 have N_lambda = 0 in the paper -> passive targets."""
        by_id = {c.case_id: c for c in TABLE1_CASES}
        assert by_id[4].paper_nlambda == 0
        assert by_id[4].sigma_target < 1.0
        assert by_id[6].paper_nlambda == 0
        assert by_id[6].sigma_target < 1.0

    def test_violating_cases_target_above_one(self):
        for case in TABLE1_CASES:
            if case.paper_nlambda > 0:
                assert case.sigma_target > 1.0

    def test_names(self):
        assert TABLE1_CASES[0].name == "Case 1"


class TestBuildCase:
    def test_full_scale_exact_order(self):
        spec = TABLE1_CASES[0]
        model = build_case(spec, scale=1.0)
        assert model.order == spec.order
        assert model.num_ports == spec.ports

    def test_scaled_order(self):
        spec = TABLE1_CASES[0]
        model = build_case(spec, scale=0.1)
        assert model.order == 100
        assert model.num_ports == spec.ports

    def test_scale_floor_is_port_count(self):
        spec = TABLE1_CASES[6]  # p = 83
        model = build_case(spec, scale=0.001)
        assert model.order == spec.ports

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_case(TABLE1_CASES[0], scale=0.0)

    def test_reproducible(self):
        import numpy as np

        a = build_case(TABLE1_CASES[1], scale=0.05)
        b = build_case(TABLE1_CASES[1], scale=0.05)
        np.testing.assert_array_equal(a.c, b.c)


def test_fig6_case_is_case5():
    model = fig6_case(scale=0.05)
    assert model.num_ports == 56
