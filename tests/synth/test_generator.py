"""Unit tests for the synthetic macromodel generator."""

import numpy as np
import pytest

from repro.macromodel.poles import conjugate_pairs_complete, is_stable
from repro.passivity.metrics import peak_singular_value_on_grid
from repro.synth.generator import (
    random_macromodel,
    random_pole_set,
    random_simo_macromodel,
    scale_to_sigma_target,
)


class TestRandomPoleSet:
    def test_count_exact(self, rng):
        for n in (1, 2, 5, 10, 17):
            assert random_pole_set(n, rng).size == n

    def test_stable(self, rng):
        assert is_stable(random_pole_set(20, rng))

    def test_conjugate_complete(self, rng):
        assert conjugate_pairs_complete(random_pole_set(15, rng))

    def test_band_respected(self, rng):
        poles = random_pole_set(30, rng, band=(1.0, 5.0))
        w0 = poles.imag[poles.imag > 0]
        assert np.all(w0 >= 1.0 - 1e-9)
        assert np.all(w0 <= 5.0 + 1e-9)

    def test_invalid_band_rejected(self, rng):
        with pytest.raises(ValueError, match="band"):
            random_pole_set(4, rng, band=(5.0, 1.0))


class TestRandomMacromodel:
    def test_shapes(self):
        model = random_macromodel(8, 3, seed=1)
        assert model.num_poles == 8
        assert model.num_ports == 3

    def test_reproducible(self):
        a = random_macromodel(8, 2, seed=5)
        b = random_macromodel(8, 2, seed=5)
        np.testing.assert_array_equal(a.poles, b.poles)
        np.testing.assert_array_equal(a.residues, b.residues)

    def test_real_and_stable(self):
        model = random_macromodel(10, 2, seed=2)
        assert model.is_stable()
        assert model.is_real_model()

    def test_sigma_target_violating(self):
        model = random_macromodel(10, 3, seed=3, sigma_target=1.1)
        # High-Q violations are narrower than a uniform grid spacing;
        # sample around each resonance explicitly.
        resonances = model.poles[model.poles.imag > 0]
        clusters = np.array(
            [r.imag + k * abs(r.real) for r in resonances for k in (-1, 0, 1)]
        )
        grid = np.unique(np.concatenate([np.linspace(0, 15, 800), clusters]))
        peak, _ = peak_singular_value_on_grid(model, grid)
        assert peak > 1.0

    def test_sigma_target_passive(self):
        model = random_macromodel(10, 3, seed=3, sigma_target=0.9)
        grid = np.linspace(0, 15, 800)
        peak, _ = peak_singular_value_on_grid(model, grid)
        assert peak < 1.0

    def test_no_target_skips_scaling(self):
        model = random_macromodel(6, 2, seed=4, sigma_target=None)
        assert model.num_poles == 6

    def test_d_norm_exact(self):
        model = random_macromodel(6, 2, seed=4, d_norm=0.25)
        assert np.linalg.norm(model.d, 2) == pytest.approx(0.25)


class TestRandomSimoMacromodel:
    @pytest.mark.parametrize("order,ports", [(20, 4), (23, 5), (50, 7), (13, 13)])
    def test_exact_order(self, order, ports):
        simo = random_simo_macromodel(order, ports, seed=6, sigma_target=None)
        assert simo.order == order
        assert simo.num_ports == ports

    def test_order_below_ports_rejected(self):
        with pytest.raises(ValueError):
            random_simo_macromodel(3, 5, seed=0)

    def test_stable(self):
        simo = random_simo_macromodel(30, 4, seed=7, sigma_target=None)
        assert simo.is_stable()

    def test_sigma_target_respected(self):
        simo = random_simo_macromodel(40, 4, seed=8, sigma_target=1.06)
        grid = np.linspace(0, 15, 800)
        peak, _ = peak_singular_value_on_grid(simo, grid)
        assert peak > 1.0


class TestScaleToSigmaTarget:
    def test_target_hit(self, rng):
        model = random_macromodel(8, 2, seed=9, sigma_target=None)
        grid = np.linspace(0, 15, 500)
        responses = model.frequency_response(grid)
        s = scale_to_sigma_target(model.d, responses, 1.05)
        scaled = model.d[None] + s * (responses - model.d[None])
        peak = np.linalg.svd(scaled, compute_uv=False).max()
        assert peak == pytest.approx(1.05, rel=1e-4)

    def test_target_below_d_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            scale_to_sigma_target(0.5 * np.eye(2), np.zeros((3, 2, 2)), 0.3)
