"""Unit tests for the Touchstone writer and round-trips."""

import numpy as np
import pytest

from repro.touchstone.reader import parse_touchstone, read_touchstone
from repro.touchstone.writer import format_touchstone, write_touchstone


@pytest.fixture
def samples(rng):
    freqs = np.linspace(1e6, 1e9, 6)
    s = rng.standard_normal((6, 3, 3)) + 1j * rng.standard_normal((6, 3, 3))
    return freqs, s


class TestFormat:
    def test_option_line_first_noncomment(self, samples):
        text = format_touchstone(*samples, comment="hello")
        lines = text.splitlines()
        assert lines[0] == "! hello"
        assert lines[1].startswith("# HZ S RI")

    def test_wrapping_max_four_complex_per_line(self, samples):
        text = format_touchstone(*samples)
        for line in text.splitlines():
            if line.startswith(("#", "!")):
                continue
            values = line.split()
            # freq + up to 4 complex pairs, or continuation of 4 pairs.
            assert len(values) <= 9

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="K, p, p"):
            format_touchstone([1.0], np.zeros((1, 2, 3)))

    def test_count_mismatch(self):
        with pytest.raises(ValueError, match="frequencies"):
            format_touchstone([1.0, 2.0], np.zeros((1, 1, 1)))

    def test_unknown_format(self, samples):
        with pytest.raises(ValueError, match="format"):
            format_touchstone(*samples, fmt="XY")

    def test_unknown_unit(self, samples):
        with pytest.raises(ValueError, match="unit"):
            format_touchstone(*samples, unit="THZ")


class TestRoundTrip:
    @pytest.mark.parametrize("ports", [1, 2, 3, 4])
    @pytest.mark.parametrize("fmt", ["RI", "MA", "DB"])
    def test_lossless(self, rng, ports, fmt):
        freqs = np.linspace(1e6, 5e8, 5)
        s = rng.standard_normal((5, ports, ports)) + 1j * rng.standard_normal(
            (5, ports, ports)
        )
        text = format_touchstone(freqs, s, fmt=fmt, unit="MHZ")
        back = parse_touchstone(text, num_ports=ports)
        np.testing.assert_allclose(back.matrices, s, atol=1e-8)
        np.testing.assert_allclose(back.freqs_hz, freqs, rtol=1e-10)

    def test_file_roundtrip(self, tmp_path, samples):
        freqs, s = samples
        path = write_touchstone(tmp_path / "test.s3p", freqs, s, z0=75.0)
        back = read_touchstone(path)
        assert back.z0 == 75.0
        np.testing.assert_allclose(back.matrices, s, atol=1e-9)

    def test_two_port_quirk_roundtrip(self, rng):
        freqs = np.array([1e6])
        s = np.array([[[1.0, 2.0], [3.0, 4.0]]], dtype=complex)
        text = format_touchstone(freqs, s)
        # Raw record must be S11 S21 S12 S22.
        data_line = [
            row for row in text.splitlines() if not row.startswith(("#", "!"))
        ][0]
        reals = [float(tok) for tok in data_line.split()][1::2]
        assert reals == [1.0, 3.0, 2.0, 4.0]
        back = parse_touchstone(text, num_ports=2)
        np.testing.assert_allclose(back.matrices, s)
