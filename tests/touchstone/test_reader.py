"""Unit tests for the Touchstone parser."""

import numpy as np
import pytest

from repro.touchstone.reader import parse_touchstone, read_touchstone


SIMPLE_1PORT = """! demo file
# HZ S RI R 50
1e6 0.5 -0.1
2e6 0.4 -0.2
"""


class TestOptionLine:
    def test_defaults(self):
        # Spec defaults: GHZ S MA R 50.
        text = "# \n1.0 0.5 0.0\n"
        data = parse_touchstone(text, num_ports=1)
        assert data.freqs_hz[0] == pytest.approx(1e9)
        assert data.z0 == 50.0
        assert data.parameter == "S"

    def test_explicit_options(self):
        data = parse_touchstone(SIMPLE_1PORT, num_ports=1)
        assert data.freqs_hz[0] == pytest.approx(1e6)
        assert data.matrices[0, 0, 0] == pytest.approx(0.5 - 0.1j)

    def test_units(self):
        for unit, scale in [("HZ", 1.0), ("KHZ", 1e3), ("MHZ", 1e6), ("GHZ", 1e9)]:
            text = f"# {unit} S RI R 50\n2.0 0.1 0.0\n"
            data = parse_touchstone(text, num_ports=1)
            assert data.freqs_hz[0] == pytest.approx(2.0 * scale)

    def test_resistance(self):
        text = "# HZ S RI R 75\n1.0 0.1 0.0\n"
        assert parse_touchstone(text, num_ports=1).z0 == 75.0

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError, match="unknown token"):
            parse_touchstone("# HZ S RI Q 50\n1.0 0.1 0.0\n", num_ports=1)

    def test_v2_keywords_rejected(self):
        with pytest.raises(ValueError, match="v2"):
            parse_touchstone("[Version] 2.0\n# HZ S RI R 50\n", num_ports=1)


class TestFormats:
    def test_ma(self):
        text = "# HZ S MA R 50\n1.0 2.0 90.0\n"
        data = parse_touchstone(text, num_ports=1)
        np.testing.assert_allclose(data.matrices[0, 0, 0], 2.0j, atol=1e-12)

    def test_db(self):
        text = "# HZ S DB R 50\n1.0 20.0 0.0\n"
        data = parse_touchstone(text, num_ports=1)
        np.testing.assert_allclose(data.matrices[0, 0, 0], 10.0, atol=1e-12)


class TestLayout:
    def test_two_port_column_major_quirk(self):
        # Record order is S11 S21 S12 S22 for 2-ports.
        text = (
            "# HZ S RI R 50\n"
            "1.0  11 0  21 0  12 0  22 0\n"
        )
        data = parse_touchstone(text, num_ports=2)
        np.testing.assert_allclose(
            data.matrices[0].real, [[11.0, 12.0], [21.0, 22.0]]
        )

    def test_three_port_row_major(self):
        values = " ".join(f"{i + 1} 0" for i in range(9))
        text = f"# HZ S RI R 50\n1.0 {values}\n"
        data = parse_touchstone(text, num_ports=3)
        np.testing.assert_allclose(
            data.matrices[0].real,
            [[1, 2, 3], [4, 5, 6], [7, 8, 9]],
        )

    def test_wrapped_records(self):
        text = (
            "# HZ S RI R 50\n"
            "1.0 1 0 2 0 3 0 4 0\n"
            "    5 0 6 0 7 0 8 0\n"
            "    9 0\n"
        )
        data = parse_touchstone(text, num_ports=3)
        assert data.matrices.shape == (1, 3, 3)
        assert data.matrices[0, 2, 2] == 9.0

    def test_comments_stripped(self):
        text = "! header\n# HZ S RI R 50\n1.0 0.1 0.0 ! trailing\n"
        data = parse_touchstone(text, num_ports=1)
        assert data.matrices.shape == (1, 1, 1)

    def test_port_inference(self):
        values = " ".join("0.1 0.0" for _ in range(4))
        text = f"# HZ S RI R 50\n1.0 {values}\n2.0 {values}\n"
        data = parse_touchstone(text)
        assert data.num_ports == 2

    def test_inconsistent_length_rejected(self):
        text = "# HZ S RI R 50\n1.0 0.1 0.0 0.3\n"
        with pytest.raises(ValueError):
            parse_touchstone(text, num_ports=1)

    def test_decreasing_frequency_rejected(self):
        text = "# HZ S RI R 50\n2.0 0.1 0.0\n1.0 0.1 0.0\n"
        with pytest.raises(ValueError, match="increasing"):
            parse_touchstone(text, num_ports=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            parse_touchstone("! nothing here\n# HZ S RI R 50\n", num_ports=1)


class TestReadFile:
    def test_suffix_port_detection(self, tmp_path):
        path = tmp_path / "demo.s1p"
        path.write_text(SIMPLE_1PORT)
        data = read_touchstone(path)
        assert data.num_ports == 1
        assert data.freqs_rad[0] == pytest.approx(2 * np.pi * 1e6)
