"""Unit tests for the matrix-free Hamiltonian operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamiltonian.operator import HamiltonianOperator
from repro.macromodel.realization import pole_residue_to_simo
from repro.utils.timing import WorkCounter
from tests.conftest import make_pole_residue


@pytest.fixture
def op(small_simo):
    return HamiltonianOperator(small_simo)


class TestConstruction:
    def test_dimensions(self, op, small_simo):
        assert op.order == small_simo.order
        assert op.dimension == 2 * small_simo.order
        assert op.num_ports == small_simo.num_ports

    def test_rejects_non_simo(self):
        with pytest.raises(TypeError):
            HamiltonianOperator(np.eye(3))

    def test_rejects_unknown_representation(self, small_simo):
        with pytest.raises(ValueError, match="representation"):
            HamiltonianOperator(small_simo, representation="hybrid")

    def test_rejects_nonpassive_d(self, small_simo):
        from repro.macromodel.simo import SimoRealization

        bad = SimoRealization(small_simo.columns, 1.01 * np.eye(small_simo.num_ports))
        with pytest.raises(ValueError, match="asymptotic"):
            HamiltonianOperator(bad)

    def test_asymptotic_margin_positive(self, op):
        assert op.asymptotic_margin > 0.0

    def test_smw_coupling_is_copy(self, op):
        z = op.smw_coupling
        z[0, 0] += 1.0
        assert op.smw_coupling[0, 0] != z[0, 0]


class TestMatvec:
    def test_matches_dense(self, op, rng):
        m = op.dense()
        x = rng.standard_normal(op.dimension) + 1j * rng.standard_normal(op.dimension)
        np.testing.assert_allclose(op.matvec(x), m @ x, atol=1e-10)

    def test_real_input_gives_real_output(self, op, rng):
        x = rng.standard_normal(op.dimension)
        out = op.matvec(x)
        np.testing.assert_allclose(np.imag(out), 0.0, atol=1e-14)

    def test_wrong_length_rejected(self, op):
        with pytest.raises(ValueError, match="length"):
            op.matvec(np.zeros(3))

    def test_callable_alias(self, op, rng):
        x = rng.standard_normal(op.dimension)
        np.testing.assert_array_equal(op(x), op.matvec(x))

    def test_work_counting(self, small_simo, rng):
        work = WorkCounter()
        op = HamiltonianOperator(small_simo, work=work)
        x = rng.standard_normal(op.dimension)
        op.matvec(x)
        op.matvec(x)
        assert work.operator_applies == 2

    def test_immittance_matches_dense(self, rng):
        model = make_pole_residue(seed=2)
        model = model.with_d(model.d + 2.0 * np.eye(model.num_ports))
        simo = pole_residue_to_simo(model)
        op = HamiltonianOperator(simo, representation="immittance")
        m = op.dense()
        x = rng.standard_normal(op.dimension) + 1j * rng.standard_normal(op.dimension)
        np.testing.assert_allclose(op.matvec(x), m @ x, atol=1e-10)


class TestNormBound:
    def test_bounds_true_norm(self, op):
        m = op.dense()
        assert op.norm_upper_bound() >= np.linalg.norm(m, 2) - 1e-9

    def test_repr(self, op):
        assert "scattering" in repr(op)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_matvec_matches_dense_property(seed):
    """Matrix-free apply equals the dense eq. (5) matrix on random models."""
    model = make_pole_residue(seed=seed, num_ports=2, num_real=1, num_pairs=2)
    simo = pole_residue_to_simo(model)
    op = HamiltonianOperator(simo)
    m = op.dense()
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(op.dimension) + 1j * rng.standard_normal(op.dimension)
    np.testing.assert_allclose(op.matvec(x), m @ x, atol=1e-9)
