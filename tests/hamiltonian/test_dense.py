"""Unit tests for repro.hamiltonian.dense."""

import numpy as np
import pytest

from repro.hamiltonian.dense import (
    asymptotic_singular_margin,
    dense_hamiltonian,
    dense_hamiltonian_immittance,
    dense_hamiltonian_scattering,
)
from repro.macromodel.realization import pole_residue_to_simo
from tests.conftest import make_pole_residue


class TestAsymptoticMargin:
    def test_zero_d(self):
        assert asymptotic_singular_margin(np.zeros((3, 3))) == pytest.approx(1.0)

    def test_scaled_identity(self):
        assert asymptotic_singular_margin(0.4 * np.eye(2)) == pytest.approx(0.6)

    def test_violating_d(self):
        assert asymptotic_singular_margin(1.5 * np.eye(2)) < 0.0


class TestScatteringHamiltonian:
    @pytest.fixture
    def simo(self):
        return pole_residue_to_simo(make_pole_residue(seed=1))

    def test_shape(self, simo):
        m = dense_hamiltonian_scattering(simo)
        assert m.shape == (2 * simo.order, 2 * simo.order)

    def test_hamiltonian_structure(self, simo):
        """J M must be symmetric for J = [[0, I], [-I, 0]]."""
        m = dense_hamiltonian_scattering(simo)
        n = simo.order
        j = np.block(
            [[np.zeros((n, n)), np.eye(n)], [-np.eye(n), np.zeros((n, n))]]
        )
        jm = j @ m
        np.testing.assert_allclose(jm, jm.T, atol=1e-9 * np.abs(jm).max())

    def test_spectral_symmetry(self, simo):
        """Eigenvalues come in {lam, -lam} pairs (plus conjugates).

        Greedy nearest matching is used instead of lexicographic sorting:
        floating-point noise in near-zero real parts reorders
        ``np.sort_complex`` arbitrarily.
        """
        m = dense_hamiltonian_scattering(simo)
        lam = np.linalg.eigvals(m)
        remaining = list(-lam)
        worst = 0.0
        for value in lam:
            dist = [abs(value - other) for other in remaining]
            j = int(np.argmin(dist))
            worst = max(worst, dist[j])
            remaining.pop(j)
        assert worst < 1e-8 * max(1.0, np.abs(lam).max())

    def test_rejects_sigma_d_above_one(self, simo):
        from repro.macromodel.simo import SimoRealization

        bad = SimoRealization(simo.columns, 1.2 * np.eye(simo.num_ports))
        with pytest.raises(ValueError, match="asymptotic"):
            dense_hamiltonian_scattering(bad)

    def test_statespace_and_simo_agree(self, simo):
        m1 = dense_hamiltonian_scattering(simo)
        m2 = dense_hamiltonian_scattering(simo.to_statespace())
        np.testing.assert_allclose(m1, m2, atol=1e-12)


class TestImmittanceHamiltonian:
    @pytest.fixture
    def simo(self):
        model = make_pole_residue(seed=2)
        shifted = model.with_d(model.d + 2.0 * np.eye(model.num_ports))
        return pole_residue_to_simo(shifted)

    def test_shape(self, simo):
        m = dense_hamiltonian_immittance(simo)
        assert m.shape == (2 * simo.order, 2 * simo.order)

    def test_hamiltonian_structure(self, simo):
        m = dense_hamiltonian_immittance(simo)
        n = simo.order
        j = np.block(
            [[np.zeros((n, n)), np.eye(n)], [-np.eye(n), np.zeros((n, n))]]
        )
        jm = j @ m
        np.testing.assert_allclose(jm, jm.T, atol=1e-9 * np.abs(jm).max())

    def test_rejects_indefinite_d(self):
        simo = pole_residue_to_simo(make_pole_residue(seed=2))
        with pytest.raises(ValueError, match="positive definite"):
            dense_hamiltonian_immittance(simo)


class TestDispatch:
    def test_scattering(self, small_simo):
        m = dense_hamiltonian(small_simo, "scattering")
        np.testing.assert_array_equal(m, dense_hamiltonian_scattering(small_simo))

    def test_unknown_representation(self, small_simo):
        with pytest.raises(ValueError, match="unknown representation"):
            dense_hamiltonian(small_simo, "admittance-ish")

    def test_rejects_wrong_model_type(self):
        with pytest.raises(TypeError):
            dense_hamiltonian(np.eye(3))
