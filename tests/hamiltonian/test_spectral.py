"""Unit tests for the dense baseline eigensolver and imaginary filtering."""

import numpy as np

from repro.hamiltonian.spectral import (
    full_hamiltonian_spectrum,
    imaginary_eigenvalues_dense,
    select_imaginary,
)
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel


class TestSelectImaginary:
    def test_empty(self):
        assert select_imaginary(np.array([])).size == 0

    def test_picks_imaginary_pairs(self):
        lam = np.array([1j, -1j, 2.0 + 0j, 3.0 + 4.0j])
        out = select_imaginary(lam)
        np.testing.assert_allclose(out, [1.0])

    def test_zero_eigenvalue_once(self):
        lam = np.array([0.0 + 0j, 0.0 - 0j])
        out = select_imaginary(lam)
        assert out.size <= 2  # exact zeros may merge
        assert np.all(out == 0.0)

    def test_tolerance_scales(self):
        lam = np.array([1e-5 + 1j, -1e-5 - 1j])
        strict = select_imaginary(lam, rtol=1e-9)
        loose = select_imaginary(lam, rtol=1e-3)
        assert strict.size == 0
        assert loose.size == 1

    def test_scale_guard(self):
        lam = np.array([1e-7 + 1j])
        assert select_imaginary(lam, scale=100.0, rtol=1e-8).size == 1


class TestDenseBaseline:
    def test_spectrum_size(self, small_simo):
        lam = full_hamiltonian_spectrum(small_simo)
        assert lam.size == 2 * small_simo.order

    def test_crossings_at_unit_singular_values(self):
        model = random_macromodel(10, 3, seed=5, sigma_target=1.08)
        simo = pole_residue_to_simo(model)
        omegas = imaginary_eigenvalues_dense(simo)
        assert omegas.size >= 2
        for w in omegas:
            sv = np.linalg.svd(simo.transfer(1j * w), compute_uv=False)
            assert np.min(np.abs(sv - 1.0)) < 1e-6

    def test_passive_model_no_crossings(self):
        model = random_macromodel(10, 3, seed=6, sigma_target=0.9)
        simo = pole_residue_to_simo(model)
        assert imaginary_eigenvalues_dense(simo).size == 0

    def test_crossings_sorted_nonnegative(self):
        model = random_macromodel(10, 2, seed=7, sigma_target=1.1)
        omegas = imaginary_eigenvalues_dense(pole_residue_to_simo(model))
        assert np.all(omegas >= 0.0)
        assert np.all(np.diff(omegas) >= 0.0)

    def test_statespace_input(self, small_simo):
        out1 = imaginary_eigenvalues_dense(small_simo)
        out2 = imaginary_eigenvalues_dense(small_simo.to_statespace())
        np.testing.assert_allclose(out1, out2, atol=1e-8)
