"""Unit tests for the SMW shift-and-invert operator (eq. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamiltonian.operator import HamiltonianOperator
from repro.hamiltonian.shift_invert import ShiftInvertOperator
from repro.macromodel.realization import pole_residue_to_simo
from repro.utils.timing import WorkCounter
from tests.conftest import make_pole_residue


@pytest.fixture
def op(small_simo):
    return HamiltonianOperator(small_simo)


class TestConstruction:
    def test_factory(self, op):
        si = op.shift_invert(1.5j)
        assert isinstance(si, ShiftInvertOperator)
        assert si.shift == 1.5j

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            ShiftInvertOperator("not an operator", 1j)

    def test_shift_on_pole_raises(self, op):
        pole = complex(op.simo.poles()[0])
        with pytest.raises(ZeroDivisionError):
            op.shift_invert(pole)

    def test_small_solve_counted(self, small_simo):
        work = WorkCounter()
        op = HamiltonianOperator(small_simo, work=work)
        op.shift_invert(2.0j)
        assert work.small_solves == 1


class TestApply:
    @pytest.mark.parametrize("shift", [0.0j, 0.9j, 3.1j, 0.2 + 5.0j, -1.0 + 0.5j])
    def test_inverse_property(self, op, rng, shift):
        si = op.shift_invert(shift)
        m = op.dense()
        x = rng.standard_normal(op.dimension) + 1j * rng.standard_normal(op.dimension)
        y = si.matvec(x)
        residual = (m - si.shift * np.eye(op.dimension)) @ y - x
        assert np.linalg.norm(residual) <= 1e-9 * np.linalg.norm(x)

    def test_wrong_length_rejected(self, op):
        si = op.shift_invert(1j)
        with pytest.raises(ValueError, match="length"):
            si.matvec(np.zeros(5))

    def test_callable_alias(self, op, rng):
        si = op.shift_invert(1j)
        x = rng.standard_normal(op.dimension) + 0j
        np.testing.assert_array_equal(si(x), si.matvec(x))

    def test_apply_counted(self, small_simo, rng):
        work = WorkCounter()
        op = HamiltonianOperator(small_simo, work=work)
        si = op.shift_invert(1j)
        before = work.operator_applies
        si.matvec(rng.standard_normal(op.dimension) + 0j)
        assert work.operator_applies == before + 1

    def test_roundtrip_with_matvec(self, op, rng):
        """op.matvec(si.matvec(x)) - shift*si.matvec(x) == x."""
        si = op.shift_invert(2.2j)
        x = rng.standard_normal(op.dimension) + 1j * rng.standard_normal(op.dimension)
        y = si.matvec(x)
        np.testing.assert_allclose(
            op.matvec(y) - si.shift * y, x, atol=1e-8 * np.linalg.norm(x)
        )

    def test_immittance_inverse(self, rng):
        model = make_pole_residue(seed=2)
        model = model.with_d(model.d + 2.0 * np.eye(model.num_ports))
        simo = pole_residue_to_simo(model)
        op = HamiltonianOperator(simo, representation="immittance")
        si = op.shift_invert(1.3j)
        m = op.dense()
        x = rng.standard_normal(op.dimension) + 0j
        y = si.matvec(x)
        residual = (m - 1.3j * np.eye(op.dimension)) @ y - x
        assert np.linalg.norm(residual) <= 1e-9 * np.linalg.norm(x)

    def test_repr(self, op):
        assert "ShiftInvertOperator" in repr(op.shift_invert(1j))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 3_000),
    omega=st.floats(0.0, 20.0, allow_nan=False),
)
def test_smw_equals_dense_inverse_property(seed, omega):
    """SMW apply == dense solve at random shifts on random models."""
    model = make_pole_residue(seed=seed, num_ports=2, num_real=1, num_pairs=2)
    simo = pole_residue_to_simo(model)
    op = HamiltonianOperator(simo)
    try:
        si = op.shift_invert(1j * omega)
    except (ZeroDivisionError, np.linalg.LinAlgError):
        return  # shift collided with a pole/eigenvalue — allowed to refuse
    m = op.dense()
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(op.dimension) + 1j * rng.standard_normal(op.dimension)
    y = si.matvec(x)
    residual = (m - si.shift * np.eye(op.dimension)) @ y - x
    # Conditioning near eigenvalues degrades the bound; stay lenient.
    assert np.linalg.norm(residual) <= 1e-6 * np.linalg.norm(x)
