"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.synth import random_macromodel
from repro.touchstone import read_touchstone, write_touchstone


@pytest.fixture(scope="module")
def violating_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "device.s2p"
    model = random_macromodel(10, 2, seed=33, sigma_target=1.04)
    freqs = np.linspace(0.05, 14.0, 250)
    write_touchstone(path, freqs / (2 * np.pi), model.frequency_response(freqs))
    return str(path)


@pytest.fixture(scope="module")
def passive_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "passive.s2p"
    model = random_macromodel(10, 2, seed=34, sigma_target=0.9)
    freqs = np.linspace(0.05, 14.0, 250)
    write_touchstone(path, freqs / (2 * np.pi), model.frequency_response(freqs))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_defaults(self):
        args = build_parser().parse_args(["check", "x.s2p"])
        assert args.poles == 30
        assert args.threads == 1

    def test_enforce_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["enforce", "x.s2p"])


class TestInfo:
    def test_info_output(self, violating_file, capsys):
        assert main(["info", violating_file]) == 0
        out = capsys.readouterr().out
        assert "ports:      2" in out
        assert "max sigma" in out

    def test_missing_file_errors(self, capsys):
        assert main(["info", "/nonexistent/file.s2p"]) == 1
        assert "error:" in capsys.readouterr().err


class TestCheck:
    def test_violating_exit_code(self, violating_file, capsys):
        code = main(["check", violating_file, "--poles", "10", "--threads", "2"])
        assert code == 2
        assert "NOT passive" in capsys.readouterr().out

    def test_passive_exit_code(self, passive_file, capsys):
        code = main(["check", passive_file, "--poles", "10"])
        assert code == 0
        assert "PASSIVE" in capsys.readouterr().out


class TestEnforce:
    def test_enforce_writes_passive_file(self, violating_file, tmp_path, capsys):
        out_path = str(tmp_path / "fixed.s2p")
        code = main(
            ["enforce", violating_file, "--poles", "10", "--out", out_path]
        )
        assert code == 0
        data = read_touchstone(out_path)
        peak = np.linalg.svd(data.matrices, compute_uv=False).max()
        assert peak < 1.0


class TestHinf:
    def test_hinf_reports_norm(self, violating_file, capsys):
        code = main(["hinf", violating_file, "--poles", "10", "--rtol", "1e-4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "||H||_inf" in out
        # The device was built with peak sigma ~1.04.
        norm = float(out.split("||H||_inf = ")[1].split()[0])
        assert norm == pytest.approx(1.04, abs=0.01)
