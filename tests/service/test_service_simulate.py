"""Service-level simulate task: validation, dispatch, clean 400s."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import RunConfig
from repro.service import VALID_TASKS, JobError, JobManager, ReproServer


@pytest.fixture()
def manager(tmp_path):
    mgr = JobManager(
        config=RunConfig(cache="off"),
        workers=1,
        backend="serial",
        timeout=300.0,
        queue_path=str(tmp_path / "q.sqlite3"),
    )
    yield mgr
    mgr.shutdown()


def _wait(manager, job_id, budget=120.0):
    deadline = time.time() + budget
    while time.time() < deadline:
        record = manager.get(job_id)
        if record.status in ("done", "error", "timeout"):
            return record
        time.sleep(0.05)
    raise AssertionError("job never finished")


def test_valid_tasks_include_simulate():
    assert "simulate" in VALID_TASKS


def test_unknown_task_raises_joberror_with_allowed_list(manager):
    with pytest.raises(JobError) as err:
        manager.submit({"kind": "synth", "task": "profile"})
    message = str(err.value)
    for task in VALID_TASKS:
        assert task in message


def test_simulate_object_requires_simulate_task(manager):
    with pytest.raises(JobError, match="task 'simulate'"):
        manager.submit(
            {"kind": "synth", "task": "check", "simulate": {"num_steps": 64}}
        )


def test_unknown_simulate_key_rejected(manager):
    with pytest.raises(JobError, match="keep_waveforms"):
        manager.submit(
            {
                "kind": "synth",
                "task": "simulate",
                "simulate": {"keep_waveforms": True},
            }
        )


def test_simulate_must_be_object(manager):
    with pytest.raises(JobError, match="object"):
        manager.submit(
            {"kind": "synth", "task": "simulate", "simulate": [1, 2]}
        )


def test_simulate_job_runs_and_reports_gain(manager):
    record = manager.submit(
        {
            "kind": "synth",
            "order": 6,
            "ports": 2,
            "seed": 3,
            "task": "simulate",
            "simulate": {"num_steps": 512, "stimulus": {"kind": "prbs", "seed": 1}},
        }
    )
    record = _wait(manager, record.id)
    assert record.status == "done", record.error
    assert isinstance(record.result["energy_gain"], float)
    assert "simulation" in record.result["session"]
    stim = record.result["session"]["simulation"]["stimulus"]
    assert stim["kind"] == "prbs" and stim["seed"] == 1


def test_http_unknown_task_is_a_clean_400(tmp_path):
    server = ReproServer.create(
        port=0,
        config=RunConfig(cache="off"),
        workers=1,
        backend="serial",
        queue_path=str(tmp_path / "q.sqlite3"),
    )
    server.start_background()
    try:
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=json.dumps({"kind": "synth", "task": "bogus"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["error"]["code"] == "bad_request"
        for task in VALID_TASKS:
            assert task in body["error"]["message"]
    finally:
        server.stop()
