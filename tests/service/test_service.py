"""HTTP service round trips: submit, poll, fetch, cached resubmission."""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.service import JobError, JobManager, ReproServer
from repro.service.manager import _input_digest, _job_from_spec
from repro.synth.generator import random_macromodel
from repro.touchstone.writer import write_touchstone

SPEC = {"kind": "synth", "order": 6, "ports": 2, "seed": 3, "task": "check"}


@pytest.fixture()
def server(tmp_path):
    config = RunConfig(cache="readwrite", cache_dir=str(tmp_path / "store"))
    srv = ReproServer.create(
        port=0, config=config, workers=2, backend="serial", timeout=300.0
    )
    srv.start_background()
    yield srv
    srv.stop()


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(server, path, doc):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _wait(server, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, record = _get(server, f"/v1/jobs/{job_id}")
        assert status == 200
        if record["status"] in ("done", "error", "timeout", "failed"):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def _finish(manager, record, timeout=120.0):
    """Poll the manager until the submitted job reaches a terminal state.

    Queue rows are immutable snapshots — progress is observed by
    re-reading, not by watching the returned object mutate.
    """
    deadline = time.time() + timeout
    row = record
    while time.time() < deadline:
        row = manager.get(record.id)
        if row is not None and row.terminal:
            return row
        time.sleep(0.02)
    raise AssertionError(f"job {record.id} did not finish within {timeout}s")


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"]
        assert payload["uptime_seconds"] >= 0

    def test_submit_poll_fetch_then_cached_resubmit(self, server):
        status, record = _post(server, "/v1/jobs", SPEC)
        assert status == 202
        assert record["status"] in ("queued", "running")
        assert record["cached"] is False

        finished = _wait(server, record["id"])
        assert finished["status"] == "done"
        result = finished["result"]
        assert result["status"] == "ok"
        assert result["is_passive"] is False  # sigma_target 1.05 violates
        assert result["crossings"]

        # Resubmission: answered synchronously from the store.
        status, again = _post(server, "/v1/jobs", SPEC)
        assert status == 200
        assert again["cached"] is True
        assert again["status"] == "done"
        assert again["result"]["crossings"] == result["crossings"]

        # The content-addressed payload is fetchable directly.
        status, stored = _get(server, f"/v1/results/{again['key']}")
        assert status == 200
        assert stored["payload"]["name"] == result["name"]

    def test_job_name_does_not_fragment_the_cache(self, server):
        _wait(server, _post(server, "/v1/jobs", SPEC)[1]["id"])
        status, renamed = _post(server, "/v1/jobs", dict(SPEC, name="other"))
        assert status == 200
        assert renamed["cached"] is True

    def test_stats_counts_cached_submissions(self, server):
        _wait(server, _post(server, "/v1/jobs", SPEC)[1]["id"])
        _post(server, "/v1/jobs", SPEC)
        status, stats = _get(server, "/v1/stats")
        assert status == 200
        assert stats["jobs"]["total"] == 2
        assert stats["cached_submissions"] == 1
        assert stats["store"]["entries"] >= 1
        assert stats["cache"] == "readwrite"

    def test_model_job_round_trip(self, server):
        model = random_macromodel(6, 2, seed=9, sigma_target=1.04)
        spec = {"kind": "model", "model": model.to_dict(), "task": "check"}
        status, record = _post(server, "/v1/jobs", spec)
        assert status == 202
        finished = _wait(server, record["id"])
        assert finished["status"] == "done"
        crossings = finished["result"]["crossings"]
        reference = (
            np.sort(np.asarray(crossings)) if crossings else np.empty(0)
        )
        status, again = _post(server, "/v1/jobs", spec)
        assert again["cached"] is True
        np.testing.assert_allclose(
            np.sort(np.asarray(again["result"]["crossings"])), reference
        )

    def test_touchstone_job(self, server, tmp_path):
        model = random_macromodel(6, 2, seed=4, sigma_target=0.9)
        freqs_hz = np.linspace(0.01, 2.0, 80)
        response = model.frequency_response(2.0 * np.pi * freqs_hz)
        path = tmp_path / "dev.s2p"
        write_touchstone(path, freqs_hz, response, parameter="S")
        spec = {"kind": "touchstone", "path": str(path), "num_poles": 12}
        status, record = _post(server, "/v1/jobs", spec)
        assert status == 202
        finished = _wait(server, record["id"])
        assert finished["status"] == "done"
        assert finished["result"]["session"]["fit"]["num_poles"] == 12

    def test_errors(self, server):
        # Every error speaks the one envelope: {"error": {code, message}}.
        status, payload = _get(server, "/v1/jobs/doesnotexist")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert "doesnotexist" in payload["error"]["message"]
        status, payload = _get(server, "/v1/results/doesnotexist")
        assert status == 404 and payload["error"]["code"] == "not_found"
        status, payload = _get(server, "/nope")
        assert status == 404 and payload["error"]["code"] == "not_found"
        status, payload = _post(server, "/v1/jobs", {"kind": "bogus"})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "job kind" in payload["error"]["message"]
        status, payload = _post(server, "/v1/jobs", {"task": "explode"})
        assert status == 400
        status, payload = _post(
            server, "/v1/jobs", {"kind": "touchstone", "path": "/no/such.s2p"}
        )
        assert status == 400 and "not found" in payload["error"]["message"]
        status, payload = _post(
            server, "/v1/jobs", {"config": {"num_threads": -2}}
        )
        assert status == 400 and "config" in payload["error"]["message"]
        # Malformed numeric fields must be a 400 JSON body, not a
        # dropped connection (TypeError path through int()/float()).
        for bad in (
            {"kind": "synth", "seed": None},
            {"kind": "synth", "order": "eight"},
            {"num_poles": "40.5"},
            {"margin": None},
        ):
            status, payload = _post(server, "/v1/jobs", bad)
            assert status == 400 and "error" in payload, (bad, status, payload)
            assert payload["error"]["code"] == "bad_request"

    def test_cache_off_override_forces_recompute(self, server):
        finished = _wait(server, _post(server, "/v1/jobs", SPEC)[1]["id"])
        assert finished["status"] == "done"
        # Same source + task, but the submission opts out of the cache:
        # it must run fresh, not serve the stored payload.
        status, record = _post(
            server, "/v1/jobs", dict(SPEC, config={"cache": "off"})
        )
        assert status == 202
        assert record["cached"] is False

    def test_config_override_enters_the_job(self, server):
        spec = dict(SPEC, config={"num_threads": 2})
        status, record = _post(server, "/v1/jobs", spec)
        finished = _wait(server, record["id"])
        assert finished["status"] == "done"
        session = finished["result"]["session"]
        assert session["config"]["num_threads"] == 2
        # A different solver config is a different cache key: the base
        # spec must NOT alias onto the override's stored result.
        status, other = _post(server, "/v1/jobs", SPEC)
        assert status == 202
        assert other["cached"] is False
        assert other["key"] != finished["key"]


class TestManagerUnit:
    def test_invalid_specs_raise_job_error(self):
        with pytest.raises(JobError):
            _job_from_spec({"kind": "touchstone"}, "x")
        with pytest.raises(JobError):
            _job_from_spec({"kind": "model"}, "x")
        with pytest.raises(JobError):
            _job_from_spec({"kind": "model", "model": {"poles": []}}, "x")

    def test_input_digest_ignores_name(self):
        job_a = _job_from_spec(SPEC, "alpha")
        job_b = _job_from_spec(SPEC, "beta")
        assert _input_digest(job_a, SPEC) == _input_digest(job_b, SPEC)

    def test_shutdown_refuses_new_work(self, tmp_path):
        manager = JobManager(
            config=RunConfig(cache="off"),
            workers=1,
            backend="serial",
            queue_path=str(tmp_path / "q.sqlite3"),
        )
        manager.shutdown()
        with pytest.raises(RuntimeError):
            manager.submit(SPEC)

    def test_jobs_survive_a_manager_restart(self, tmp_path):
        """The queue is the state: a restart forgets nothing."""
        config = RunConfig(
            cache="readwrite", cache_dir=str(tmp_path / "store")
        )
        manager = JobManager(config=config, workers=1, backend="serial")
        try:
            records = [
                _finish(manager, manager.submit(dict(SPEC, seed=seed)))
                for seed in range(3)
            ]
        finally:
            manager.shutdown()
        # A brand-new manager over the same store sees every job, its
        # result, and the warmed cache — the in-memory-registry failure
        # mode (restart loses everything) is gone.
        reborn = JobManager(config=config, workers=0)
        try:
            for record in records:
                row = reborn.get(record.id)
                assert row is not None and row.status == "done"
                assert row.result["status"] == "ok"
            assert reborn.result_payload(records[0].key) is not None
            assert reborn.submit(dict(SPEC, seed=0)).cached is True
        finally:
            reborn.shutdown()

    def test_cache_off_never_short_circuits(self, tmp_path):
        manager = JobManager(
            config=RunConfig(cache="off"),
            workers=1,
            backend="serial",
            queue_path=str(tmp_path / "q.sqlite3"),
        )
        try:
            first = _finish(manager, manager.submit(SPEC))
            assert first.status == "done"
            second = manager.submit(SPEC)
            assert second.cached is False
        finally:
            manager.shutdown()
