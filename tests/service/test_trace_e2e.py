"""End-to-end distributed tracing through the live service.

The acceptance path of the tracing subsystem: a job submitted over HTTP
to ``repro serve`` (two embedded workers) must yield, at
``GET /v1/jobs/<id>/trace``, a single connected span tree whose root
carries the submitted ``X-Repro-Trace-Id`` — with child spans for the
queue wait, the worker execution, each pipeline stage, and at least one
result-store access — and ``repro trace <job-id>`` must render the same
tree as an ASCII waterfall whose durations nest consistently.
"""

import json
import time
import urllib.error
import urllib.request

from repro.cli import main
from repro.core.config import RunConfig
from repro.service import ReproServer

SPEC = {"kind": "synth", "order": 6, "ports": 2, "seed": 3, "task": "check"}
CLIENT_TRACE_ID = "e2e-client-trace-0001"

#: Wall-clock slack for parent/child containment: parents measure with
#: perf_counter while synthesized roots subtract wall clocks.
SLACK = 0.05


def _server(tmp_path, **kwargs):
    kwargs.setdefault(
        "config",
        RunConfig(cache="readwrite", cache_dir=str(tmp_path / "store")),
    )
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backend", "serial")
    server = ReproServer.create(port=0, **kwargs)
    server.start_background()
    return server


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=90) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(server, doc, headers=None):
    request = urllib.request.Request(
        server.url + "/v1/jobs",
        data=json.dumps(doc).encode("utf-8"),
        headers=dict({"Content-Type": "application/json"}, **(headers or {})),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=90) as resp:
        return resp.status, json.loads(resp.read())


def _wait_done(server, job_id, deadline=120.0):
    limit = time.time() + deadline
    while True:
        _, record = _get(server, f"/v1/jobs/{job_id}")
        if record["status"] in ("done", "error", "timeout", "failed"):
            return record
        assert time.time() < limit, f"job stuck: {record}"
        time.sleep(0.05)


def _walk(node, depth=0):
    yield node, depth
    for child in node.get("children", ()):
        yield from _walk(child, depth + 1)


class TestServiceTraceEndToEnd:
    def test_submitted_trace_id_yields_one_connected_tree(self, tmp_path):
        server = _server(tmp_path)
        try:
            status, record = _post(
                server, SPEC, headers={"X-Repro-Trace-Id": CLIENT_TRACE_ID}
            )
            assert status == 202
            assert record["trace_id"] == CLIENT_TRACE_ID
            final = _wait_done(server, record["id"])
            assert final["status"] == "done"

            status, payload = _get(
                server, f"/v1/jobs/{record['id']}/trace"
            )
            assert status == 200
            assert payload["trace_id"] == CLIENT_TRACE_ID
            assert payload["job_id"] == record["id"]
            assert all(
                s["trace_id"] == CLIENT_TRACE_ID for s in payload["spans"]
            )

            # One connected tree, rooted at the synthesized job span.
            assert len(payload["tree"]) == 1
            root = payload["tree"][0]
            assert root["name"] == "job"
            assert root["span_id"] == record["id"]

            names = [node["name"] for node, _ in _walk(root)]
            assert len(names) == len(payload["spans"])
            assert "queue.wait" in names
            assert "worker.attempt" in names
            assert "batch.pipeline" in names
            # Each executed pipeline stage contributes a span, and the
            # result lands in the store under the trace.
            assert any(n.startswith("stage.") for n in names)
            assert any(n.startswith("store.") for n in names)

            # Nesting is monotonic: every child fits inside its parent.
            for node, _ in _walk(root):
                end = node["start"] + node["duration"]
                for child in node.get("children", ()):
                    assert child["start"] >= node["start"] - SLACK
                    assert (
                        child["start"] + child["duration"] <= end + SLACK
                    )
        finally:
            server.stop()

    def test_absent_header_mints_a_trace_id(self, tmp_path):
        server = _server(tmp_path, workers=0)
        try:
            _, record = _post(server, SPEC)
            assert record["trace_id"]
            assert len(record["trace_id"]) == 32
        finally:
            server.stop()

    def test_invalid_header_is_replaced_not_echoed(self, tmp_path):
        server = _server(tmp_path, workers=0)
        try:
            _, record = _post(
                server, SPEC, headers={"X-Repro-Trace-Id": "bad value!!"}
            )
            assert record["trace_id"] != "bad value!!"
        finally:
            server.stop()

    def test_cached_submission_still_records_a_trace(self, tmp_path):
        server = _server(tmp_path)
        try:
            _, first = _post(server, SPEC)
            _wait_done(server, first["id"])
            status, second = _post(server, dict(SPEC))
            assert status == 200 and second["cached"]
            _, payload = _get(server, f"/v1/jobs/{second['id']}/trace")
            (root,) = payload["tree"]
            assert root["name"] == "job"
            assert root["attributes"]["cached"] is True
            assert [c["name"] for c in root["children"]] == ["store.get"]
        finally:
            server.stop()

    def test_reused_trace_id_stays_scoped_per_job(self, tmp_path):
        """A client may send one X-Repro-Trace-Id on several
        submissions; each job's trace endpoint must still return a
        single tree containing only that job's spans."""
        server = _server(tmp_path)
        try:
            _, first = _post(
                server, SPEC, headers={"X-Repro-Trace-Id": CLIENT_TRACE_ID}
            )
            _wait_done(server, first["id"])
            status, second = _post(
                server,
                dict(SPEC),
                headers={"X-Repro-Trace-Id": CLIENT_TRACE_ID},
            )
            assert status == 200 and second["cached"]
            assert second["id"] != first["id"]

            for job_id in (first["id"], second["id"]):
                _, payload = _get(server, f"/v1/jobs/{job_id}/trace")
                assert payload["trace_id"] == CLIENT_TRACE_ID
                assert len(payload["tree"]) == 1
                assert payload["tree"][0]["span_id"] == job_id
        finally:
            server.stop()

    def test_unknown_job_trace_is_404(self, tmp_path):
        server = _server(tmp_path, workers=0)
        try:
            status, payload = _get(server, "/v1/jobs/ghost/trace")
            assert status == 404
            assert payload["error"]["code"] == "not_found"
        finally:
            server.stop()

    def test_tracing_disabled_yields_empty_tree(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "off")
        server = _server(tmp_path)
        try:
            _, record = _post(server, SPEC)
            _wait_done(server, record["id"])
            status, payload = _get(
                server, f"/v1/jobs/{record['id']}/trace"
            )
            assert status == 200
            assert payload["spans"] == []
            assert payload["tree"] == []
        finally:
            server.stop()


class TestStructuredAccessLog:
    def test_requests_log_method_path_status_duration(
        self, tmp_path, caplog
    ):
        import logging

        server = _server(tmp_path, workers=0)
        try:
            with caplog.at_level(logging.DEBUG, logger="repro.service.http"):
                _get(server, "/healthz")
                _, record = _post(
                    server,
                    SPEC,
                    headers={"X-Repro-Trace-Id": CLIENT_TRACE_ID},
                )
        finally:
            server.stop()
        access = [
            r
            for r in caplog.records
            if getattr(r, "http_method", None) is not None
        ]
        health = next(r for r in access if r.http_path == "/healthz")
        assert health.http_method == "GET"
        assert health.http_status == 200
        assert health.duration_ms >= 0.0
        submit = next(r for r in access if r.http_method == "POST")
        assert submit.http_status == 202
        # The access log correlates with the job's distributed trace.
        assert submit.trace_id == CLIENT_TRACE_ID
        assert record["trace_id"] == CLIENT_TRACE_ID


class TestTraceCli:
    def _finished_job(self, tmp_path):
        server = _server(tmp_path)
        try:
            _, record = _post(
                server, SPEC, headers={"X-Repro-Trace-Id": CLIENT_TRACE_ID}
            )
            _wait_done(server, record["id"])
            _, payload = _get(server, f"/v1/jobs/{record['id']}/trace")
        finally:
            server.stop()
        return record["id"], payload, str(server.manager.queue_path)

    def test_waterfall_matches_the_http_tree(self, tmp_path, capsys):
        job_id, payload, queue_path = self._finished_job(tmp_path)
        assert main(["trace", job_id, "--queue", queue_path]) == 0
        out = capsys.readouterr().out
        assert CLIENT_TRACE_ID in out
        for span in payload["spans"]:
            assert span["name"] in out
        assert "100.0%" in out

    def test_json_mode_round_trips_the_payload(self, tmp_path, capsys):
        job_id, payload, queue_path = self._finished_job(tmp_path)
        assert main(["trace", job_id, "--queue", queue_path, "--json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["trace_id"] == payload["trace_id"]
        assert decoded["span_count"] == payload["span_count"]
        assert {s["span_id"] for s in decoded["spans"]} == {
            s["span_id"] for s in payload["spans"]
        }

    def test_unknown_job_exits_nonzero(self, tmp_path, capsys):
        _, _, queue_path = self._finished_job(tmp_path)
        assert main(["trace", "ghost", "--queue", queue_path]) == 1
        assert "ghost" in capsys.readouterr().err
