"""Queue-backed service behaviors: events long-poll, 429s, clean 500s."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import RunConfig
from repro.queue import QueueConfig
from repro.service import ReproServer

SPEC = {"kind": "synth", "order": 6, "ports": 2, "seed": 3, "task": "check"}


def _server(tmp_path, **kwargs):
    kwargs.setdefault(
        "config",
        RunConfig(cache="readwrite", cache_dir=str(tmp_path / "store")),
    )
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("backend", "serial")
    server = ReproServer.create(port=0, **kwargs)
    server.start_background()
    return server


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=90) as response:
            body = json.loads(response.read())
            return response.status, dict(response.headers), body
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


def _post(server, path, doc):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=90) as response:
            body = json.loads(response.read())
            return response.status, dict(response.headers), body
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


class TestEvents:
    def test_long_poll_follows_the_job_to_done(self, tmp_path):
        server = _server(tmp_path)
        try:
            status, _, record = _post(server, "/v1/jobs", SPEC)
            assert status == 202
            # Follow versions until terminal: each long-poll returns as
            # soon as the row changes (queued -> running -> done).
            since, deadline = record["version"], time.time() + 120.0
            while record["status"] not in ("done", "error", "timeout", "failed"):
                assert time.time() < deadline
                status, _, record = _get(
                    server,
                    f"/v1/jobs/{record['id']}/events"
                    f"?since={since}&timeout=30",
                )
                assert status == 200
                since = record["version"]
            assert record["status"] == "done"
            assert record["result"]["status"] == "ok"
        finally:
            server.stop()

    def test_terminal_jobs_return_immediately(self, tmp_path):
        server = _server(tmp_path)
        try:
            _, _, record = _post(server, "/v1/jobs", SPEC)
            deadline = time.time() + 120.0
            while _get(server, f"/v1/jobs/{record['id']}")[2]["status"] != "done":
                assert time.time() < deadline
                time.sleep(0.05)
            started = time.time()
            status, _, fresh = _get(
                server,
                f"/v1/jobs/{record['id']}/events"
                f"?since={record['version'] + 100}&timeout=30",
            )
            # A done row never changes again: no point holding the poll.
            assert status == 200 and fresh["status"] == "done"
            assert time.time() - started < 10.0
        finally:
            server.stop()

    def test_unknown_job_is_404(self, tmp_path):
        server = _server(tmp_path, workers=0)
        try:
            status, _, payload = _get(server, "/v1/jobs/ghost/events?timeout=0")
            assert status == 404
            assert payload["error"]["code"] == "not_found"
            assert "ghost" in payload["error"]["message"]
        finally:
            server.stop()

    def test_malformed_since_is_400(self, tmp_path):
        server = _server(tmp_path, workers=0)
        try:
            _, _, record = _post(server, "/v1/jobs", SPEC)
            status, _, payload = _get(
                server, f"/v1/jobs/{record['id']}/events?since=soon"
            )
            assert status == 400
            assert payload["error"]["code"] == "bad_request"
            assert "since" in payload["error"]["message"]
        finally:
            server.stop()


class TestRateLimiting:
    def test_429_with_retry_after(self, tmp_path):
        server = _server(
            tmp_path,
            workers=0,
            queue_config=QueueConfig(rate=0.001, burst=2),
        )
        try:
            for expected in (202, 202):
                status, _, _ = _post(server, "/v1/jobs", SPEC)
                assert status == expected
            status, headers, payload = _post(server, "/v1/jobs", SPEC)
            assert status == 429
            assert payload["error"]["code"] == "rate_limited"
            assert "retry" in payload["error"]["message"]
            assert int(headers["Retry-After"]) >= 1
            # GETs are not rate limited — polling stays free.
            assert _get(server, "/v1/stats")[0] == 200
        finally:
            server.stop()

    def test_rate_zero_never_limits(self, tmp_path):
        server = _server(tmp_path, workers=0)
        try:
            for _ in range(30):
                assert _post(server, "/v1/jobs", SPEC)[0] == 202
        finally:
            server.stop()


class TestSanitized500:
    def test_internal_errors_hide_the_traceback(self, tmp_path):
        server = _server(tmp_path, workers=0)
        try:
            # Break the manager from the outside: any unhandled failure
            # must surface as the sanitized envelope, never a traceback.
            def explode():
                raise KeyError("secret internal detail")

            server.manager.stats = explode
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/v1/stats", timeout=30)
            assert err.value.code == 500
            body = err.value.read().decode()
            payload = json.loads(body)
            assert payload["error"]["code"] == "internal"
            assert payload["error"]["message"] == "internal server error"
            assert "secret" not in body and "Traceback" not in body
        finally:
            server.stop()


class TestStats:
    def test_stats_expose_queue_and_worker_liveness(self, tmp_path):
        server = _server(tmp_path, workers=1)
        try:
            _, _, record = _post(server, "/v1/jobs", SPEC)
            deadline = time.time() + 120.0
            while _get(server, f"/v1/jobs/{record['id']}")[2]["status"] != "done":
                assert time.time() < deadline
                time.sleep(0.05)
            status, _, stats = _get(server, "/v1/stats")
            assert status == 200
            assert stats["jobs"]["done"] == 1
            assert stats["tasks_completed"] == {"check": 1}
            assert stats["queue"]["depth"]["queued"] == 0
            (worker,) = stats["queue_workers"]
            assert worker["heartbeat_age"] >= 0.0
            assert worker["jobs_done"] == 1
        finally:
            server.stop()
