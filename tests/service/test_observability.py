"""Service latency histograms: /v1/stats quantiles and /v1/metrics."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import RunConfig
from repro.service import ReproServer


@pytest.fixture()
def server(tmp_path):
    config = RunConfig(cache="readwrite", cache_dir=str(tmp_path / "store"))
    srv = ReproServer.create(
        port=0, config=config, workers=2, backend="serial", timeout=300.0
    )
    srv.start_background()
    yield srv
    srv.stop()


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, response.headers, response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers, err.read()


def _get_json(server, path):
    status, _, body = _get(server, path)
    return status, json.loads(body)


def _post(server, doc):
    request = urllib.request.Request(
        server.url + "/v1/jobs",
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _wait(server, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, record = _get_json(server, f"/v1/jobs/{job_id}")
        assert status == 200
        if record["status"] in ("done", "error", "timeout", "failed"):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def _burst(server, n):
    """Submit n distinct check jobs and wait for all of them."""
    submitted = [
        _post(
            server,
            {
                "kind": "synth",
                "order": 6,
                "ports": 2,
                "seed": seed,
                "task": "check",
            },
        )
        for seed in range(n)
    ]
    for record in submitted:
        assert _wait(server, record["id"])["status"] == "done"
    return submitted


class TestStatsLatency:
    def test_per_task_quantiles_present_and_monotone(self, server):
        _burst(server, 4)
        status, stats = _get_json(server, "/v1/stats")
        assert status == 200
        latency = stats["latency"]
        check = latency["tasks"]["check"]
        for kind in ("queue_wait", "execution"):
            hist = check[kind]
            assert hist["count"] >= 4
            p50, p90, p99 = hist["p50"], hist["p90"], hist["p99"]
            assert p50 is not None and p90 is not None and p99 is not None
            assert 0.0 <= p50 <= p90 <= p99
            # The full bucket detail rides along for dashboards.
            assert hist["buckets"][-1]["le"] == "+Inf"
            assert hist["buckets"][-1]["count"] == hist["count"]

    def test_endpoint_histograms_cover_submit_and_poll(self, server):
        _burst(server, 2)
        _, stats = _get_json(server, "/v1/stats")
        endpoints = stats["latency"]["endpoints"]
        assert "jobs.submit" in endpoints
        assert "jobs.get" in endpoints
        assert endpoints["jobs.submit"]["count"] >= 2
        assert endpoints["jobs.submit"]["p50"] is not None

    def test_cached_submissions_excluded_from_quantiles(self, server):
        spec = {
            "kind": "synth",
            "order": 6,
            "ports": 2,
            "seed": 99,
            "task": "check",
        }
        first = _post(server, spec)
        assert _wait(server, first["id"])["status"] == "done"
        second = _post(server, spec)
        assert second["cached"] is True
        _, stats = _get_json(server, "/v1/stats")
        latency = stats["latency"]
        assert latency["cached_submissions_excluded"] >= 1
        # Only the real execution contributes a sample for this spec.
        assert latency["tasks"]["check"]["execution"]["count"] == 1


class TestMetricsEndpoint:
    def test_prometheus_text_exposition(self, server):
        _burst(server, 2)
        status, headers, body = _get(server, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "repro_worker_jobs_done_total" in text
        # Every sample line is `name value` — parseable floats, no NaN.
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)

    def test_metrics_endpoint_does_not_500_when_idle(self, server):
        status, _, body = _get(server, "/v1/metrics")
        assert status == 200
