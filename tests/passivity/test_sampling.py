"""Unit tests for the adaptive-sampling characterization baseline."""

import pytest

from repro.passivity.characterization import characterize_passivity
from repro.passivity.sampling import sampled_violations
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def violating():
    return random_macromodel(10, 3, seed=5, sigma_target=1.06)


@pytest.fixture(scope="module")
def passive():
    return random_macromodel(10, 3, seed=6, sigma_target=0.9)


class TestSeededSampling:
    def test_finds_violation(self, violating):
        report = sampled_violations(violating, 15.0)
        assert not report.passive
        assert len(report.violations) >= 1
        assert report.max_sigma > 1.0

    def test_interval_agrees_with_hamiltonian(self, violating):
        sampled = sampled_violations(violating, 15.0)
        exact = characterize_passivity(violating)
        # Each sampled interval must intersect an exact band.
        for lo, hi in sampled.violations:
            assert any(
                band.lo <= hi and lo <= band.hi for band in exact.bands
            ), (lo, hi)

    def test_passive_model(self, passive):
        report = sampled_violations(passive, 15.0)
        assert report.passive
        assert report.max_sigma < 1.0

    def test_evaluation_budget_respected(self, violating):
        report = sampled_violations(violating, 15.0, max_evaluations=200)
        assert report.evaluations <= 200 + 3  # small overshoot per split


class TestBlindSampling:
    def test_blind_scan_can_miss_narrow_violations(self, violating):
        """The documented failure mode: a coarse blind scan misses the
        high-Q violation the Hamiltonian test finds — the reason the
        algebraic characterization exists."""
        blind = sampled_violations(
            violating, 15.0, seed_resonances=False, initial_points=64
        )
        exact = characterize_passivity(violating)
        assert not exact.passive
        assert blind.passive  # blind scan sees nothing

    def test_blind_scan_cheap(self, violating):
        blind = sampled_violations(violating, 15.0, seed_resonances=False)
        seeded = sampled_violations(violating, 15.0)
        assert blind.evaluations < seeded.evaluations


class TestValidation:
    def test_bad_omega_max(self, passive):
        with pytest.raises(ValueError):
            sampled_violations(passive, 0.0)

    def test_bad_initial_points(self, passive):
        with pytest.raises(ValueError):
            sampled_violations(passive, 10.0, initial_points=0)

    def test_simo_input(self, violating):
        from repro.macromodel import pole_residue_to_simo

        report = sampled_violations(pole_residue_to_simo(violating), 15.0)
        assert not report.passive
