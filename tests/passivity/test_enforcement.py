"""Unit tests for passivity enforcement."""

import numpy as np
import pytest

from repro.passivity.characterization import characterize_passivity
from repro.passivity.enforcement import clip_direct_term, enforce_passivity
from repro.passivity.metrics import grid_passivity_margin
from repro.synth import random_macromodel


class TestClipDirectTerm:
    def test_passive_d_untouched(self):
        d = 0.3 * np.eye(3)
        np.testing.assert_array_equal(clip_direct_term(d), d)

    def test_violating_d_clipped(self):
        d = np.diag([1.5, 0.2])
        out = clip_direct_term(d, max_sigma=0.99)
        sv = np.linalg.svd(out, compute_uv=False)
        assert sv.max() <= 0.99 + 1e-12
        # The small singular value is untouched.
        assert sv.min() == pytest.approx(0.2)

    def test_empty(self):
        assert clip_direct_term(np.zeros((0, 0))).shape == (0, 0)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            clip_direct_term(np.eye(2), max_sigma=1.5)


class TestEnforcePassivity:
    @pytest.fixture(scope="class")
    def mild_violator(self):
        return random_macromodel(12, 3, seed=71, sigma_target=1.05)

    def test_enforces(self, mild_violator):
        result = enforce_passivity(mild_violator)
        assert result.passive
        assert result.iterations >= 1
        # Final Hamiltonian test must certify passivity.
        assert characterize_passivity(result.model).passive

    def test_grid_margin_positive_after(self, mild_violator):
        result = enforce_passivity(mild_violator)
        grid = np.linspace(0.0, 20.0, 1500)
        assert grid_passivity_margin(result.model, grid) > 0.0

    def test_history_reaches_zero(self, mild_violator):
        result = enforce_passivity(mild_violator)
        assert result.history[0] > 0.0
        assert result.history[-1] == 0.0

    def test_perturbation_norm_small(self, mild_violator):
        """Minimum-norm steps keep the model close to the original."""
        result = enforce_passivity(mild_violator)
        original_norm = float(np.linalg.norm(mild_violator.residues))
        assert result.perturbation_norm < 0.25 * original_norm

    def test_poles_unchanged(self, mild_violator):
        result = enforce_passivity(mild_violator)
        np.testing.assert_array_equal(result.model.poles, mild_violator.poles)

    def test_already_passive_is_noop(self):
        model = random_macromodel(10, 2, seed=72, sigma_target=0.9)
        result = enforce_passivity(model)
        assert result.passive
        assert result.iterations == 0
        assert result.perturbation_norm == 0.0
        np.testing.assert_array_equal(result.model.residues, model.residues)

    def test_nonpassive_d_clipped_first(self):
        model = random_macromodel(10, 2, seed=73, sigma_target=0.9)
        bad = model.with_d(np.diag([1.2, 0.1]))
        result = enforce_passivity(bad)
        assert np.linalg.svd(result.model.d, compute_uv=False).max() < 1.0

    def test_model_stays_real(self, mild_violator):
        result = enforce_passivity(mild_violator)
        assert result.model.is_real_model()

    def test_iteration_budget_respected(self, mild_violator):
        result = enforce_passivity(mild_violator, max_iterations=1)
        assert result.iterations <= 1

    def test_invalid_margin_rejected(self, mild_violator):
        with pytest.raises(ValueError):
            enforce_passivity(mild_violator, margin=0.9)
