"""Unit tests for sampling-based passivity metrics."""

import numpy as np
import pytest

from repro.macromodel.realization import pole_residue_to_simo
from repro.passivity.metrics import (
    grid_passivity_margin,
    peak_singular_value_on_grid,
    refine_peak,
    singular_values_on_grid,
)
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def violating():
    return random_macromodel(10, 3, seed=51, sigma_target=1.1)


@pytest.fixture(scope="module")
def grid():
    return np.linspace(0.0, 15.0, 400)


class TestSingularValues:
    def test_shape_and_order(self, violating, grid):
        sv = singular_values_on_grid(violating, grid)
        assert sv.shape == (grid.size, violating.num_ports)
        assert np.all(np.diff(sv, axis=1) <= 1e-12)  # descending per row

    def test_matches_direct_svd(self, violating):
        freqs = np.array([1.0, 3.0])
        sv = singular_values_on_grid(violating, freqs)
        direct = np.linalg.svd(violating.transfer(3.0j), compute_uv=False)
        np.testing.assert_allclose(sv[1], direct)


class TestPeak:
    def test_peak_above_one_for_violating(self, violating, grid):
        peak, freq = peak_singular_value_on_grid(violating, grid)
        assert peak > 1.0
        assert 0.0 <= freq <= grid[-1]

    def test_margin_sign(self, violating, grid):
        assert grid_passivity_margin(violating, grid) < 0.0
        passive = random_macromodel(10, 3, seed=52, sigma_target=0.9)
        assert grid_passivity_margin(passive, grid) > 0.0


class TestRefinePeak:
    def test_finds_interior_maximum(self, violating, grid):
        coarse_peak, coarse_freq = peak_singular_value_on_grid(violating, grid)
        lo = max(0.0, coarse_freq - 0.5)
        hi = coarse_freq + 0.5
        w, s = refine_peak(violating, lo, hi)
        assert s >= coarse_peak - 1e-9
        assert lo <= w <= hi

    def test_refined_is_local_max(self, violating):
        simo = pole_residue_to_simo(violating)
        w, s = refine_peak(simo, 0.1, 12.0, coarse_points=65)
        for dw in (-1e-4, 1e-4):
            sv = np.linalg.svd(simo.transfer(1j * (w + dw)), compute_uv=False)[0]
            assert sv <= s + 1e-6

    def test_empty_interval_rejected(self, violating):
        with pytest.raises(ValueError, match="empty"):
            refine_peak(violating, 2.0, 1.0)

    def test_works_on_simo_input(self, violating):
        simo = pole_residue_to_simo(violating)
        w1, s1 = refine_peak(violating, 0.5, 2.0)
        w2, s2 = refine_peak(simo, 0.5, 2.0)
        assert s1 == pytest.approx(s2, rel=1e-9)
