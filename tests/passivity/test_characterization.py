"""Unit tests for the full passivity characterization."""

import numpy as np
import pytest

from repro.macromodel.realization import pole_residue_to_simo
from repro.passivity.characterization import (
    characterize_passivity,
    violation_bands_from_crossings,
)
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def violating():
    return random_macromodel(12, 3, seed=61, sigma_target=1.08)


@pytest.fixture(scope="module")
def passive():
    return random_macromodel(12, 3, seed=62, sigma_target=0.9)


class TestCharacterize:
    def test_violating_detected(self, violating):
        report = characterize_passivity(violating)
        assert not report.passive
        assert len(report.bands) >= 1
        assert report.worst_violation > 0.0

    def test_passive_certified(self, passive):
        report = characterize_passivity(passive)
        assert report.passive
        assert report.bands == ()
        assert report.worst_violation == 0.0

    def test_crossings_pair_with_band_edges(self, violating):
        report = characterize_passivity(violating)
        edges = set()
        for band in report.bands:
            edges.add(round(band.lo, 6))
            edges.add(round(band.hi, 6))
        crossing_set = {round(w, 6) for w in report.crossings}
        # Every band edge is a crossing (or the DC/omega_max boundary).
        for edge in edges:
            assert edge in crossing_set or edge == 0.0 or edge >= max(crossing_set)

    def test_band_peaks_above_one(self, violating):
        report = characterize_passivity(violating)
        for band in report.bands:
            assert band.peak_sigma > 1.0
            assert band.lo <= band.peak_freq <= band.hi
            assert band.severity == pytest.approx(band.peak_sigma - 1.0)

    def test_interior_of_band_violates(self, violating):
        simo = pole_residue_to_simo(violating)
        report = characterize_passivity(violating)
        for band in report.bands:
            mid = 0.5 * (band.lo + band.hi)
            sv = np.linalg.svd(simo.transfer(1j * mid), compute_uv=False)[0]
            assert sv > 1.0

    def test_outside_bands_passive(self, violating):
        simo = pole_residue_to_simo(violating)
        report = characterize_passivity(violating)
        # Sample a point beyond the last crossing: must be below 1.
        top = report.crossings.max() * 2.0
        sv = np.linalg.svd(simo.transfer(1j * top), compute_uv=False)[0]
        assert sv < 1.0

    def test_parallel_matches_serial(self, violating):
        serial = characterize_passivity(violating, num_threads=1)
        parallel = characterize_passivity(violating, num_threads=3)
        assert serial.passive == parallel.passive
        assert len(serial.bands) == len(parallel.bands)

    def test_summary_strings(self, violating, passive):
        assert "NOT passive" in characterize_passivity(violating).summary()
        assert "PASSIVE" in characterize_passivity(passive).summary()

    def test_simo_input(self, violating):
        simo = pole_residue_to_simo(violating)
        report = characterize_passivity(simo)
        assert not report.passive

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            characterize_passivity(np.eye(2))


class TestViolationBandsFromCrossings:
    def test_no_crossings_no_bands(self, passive):
        assert violation_bands_from_crossings(passive, []) == []

    def test_synthetic_crossings(self, violating):
        report = characterize_passivity(violating)
        bands = violation_bands_from_crossings(violating, report.crossings)
        assert len(bands) == len(report.bands)
