"""Unit tests for the immittance (positive-realness) characterization."""

import numpy as np
import pytest

from repro.macromodel import pole_residue_to_simo
from repro.passivity.immittance import (
    characterize_immittance_passivity,
    hermitian_min_eig,
)
from repro.synth import random_macromodel


def immittance_model(seed, shift):
    """Random model with D + D^T positive definite (shifted diagonal)."""
    base = random_macromodel(10, 3, seed=seed, sigma_target=None)
    return base.with_d(base.d + shift * np.eye(3))


@pytest.fixture(scope="module")
def violating():
    return immittance_model(seed=44, shift=1.2)


@pytest.fixture(scope="module")
def passive():
    # A large diagonal shift dominates: H + H^H stays positive definite.
    return immittance_model(seed=44, shift=60.0)


class TestHermitianMinEig:
    def test_matches_direct_computation(self, violating):
        simo = pole_residue_to_simo(violating)
        w = 2.5
        h = simo.transfer(1j * w)
        expected = np.linalg.eigvalsh(h + h.conj().T).min()
        assert hermitian_min_eig(simo, w) == pytest.approx(expected)


class TestCharacterization:
    def test_violating_detected(self, violating):
        report = characterize_immittance_passivity(violating, num_threads=2)
        assert not report.passive
        assert len(report.bands) >= 1
        assert report.worst_violation > 0.0

    def test_band_interiors_indefinite(self, violating):
        simo = pole_residue_to_simo(violating)
        report = characterize_immittance_passivity(violating)
        for band in report.bands:
            mid = 0.5 * (band.lo + band.hi)
            assert hermitian_min_eig(simo, mid) < 0.0
            assert band.min_eig < 0.0
            assert band.lo <= band.trough_freq <= band.hi

    def test_outside_bands_definite(self, violating):
        simo = pole_residue_to_simo(violating)
        report = characterize_immittance_passivity(violating)
        top = report.crossings.max() * 2.0
        assert hermitian_min_eig(simo, top) > 0.0

    def test_passive_certified(self, passive):
        report = characterize_immittance_passivity(passive)
        assert report.passive
        assert report.bands == ()
        assert report.worst_violation == 0.0

    def test_crossings_on_singular_hermitian_part(self, violating):
        """At each crossing, H + H^H has a (near-)zero eigenvalue."""
        simo = pole_residue_to_simo(violating)
        report = characterize_immittance_passivity(violating)
        for w in report.crossings:
            h = simo.transfer(1j * w)
            eigs = np.linalg.eigvalsh(h + h.conj().T)
            assert np.min(np.abs(eigs)) < 1e-5 * max(1.0, np.abs(eigs).max())

    def test_serial_parallel_agree(self, violating):
        a = characterize_immittance_passivity(violating, num_threads=1)
        b = characterize_immittance_passivity(violating, num_threads=3)
        assert a.passive == b.passive
        assert len(a.bands) == len(b.bands)

    def test_summary(self, violating, passive):
        assert "NOT passive" in characterize_immittance_passivity(violating).summary()
        assert "PASSIVE" in characterize_immittance_passivity(passive).summary()

    def test_indefinite_d_rejected(self):
        model = random_macromodel(8, 2, seed=45, sigma_target=None)
        with pytest.raises(ValueError, match="positive definite"):
            characterize_immittance_passivity(model)
