"""Unit tests for the H-infinity norm bisection (ref. [7] lineage)."""

import numpy as np
import pytest

from repro.macromodel import pole_residue_to_simo
from repro.passivity.hinf import hinf_norm
from repro.synth import random_macromodel


def brute_force_norm(model, top=20.0, points=40_000):
    """Dense-grid norm reference, with samples at every resonance."""
    resonant = model.poles[model.poles.imag > 0]
    grid = np.unique(np.concatenate([np.linspace(0, top, points), resonant.imag]))
    sv = np.linalg.svd(model.frequency_response(grid), compute_uv=False)[:, 0]
    return float(sv.max())


class TestHinfNorm:
    @pytest.mark.parametrize("target", [0.9, 1.06])
    def test_matches_brute_force(self, target):
        model = random_macromodel(10, 3, seed=5, sigma_target=target)
        result = hinf_norm(model, rtol=1e-7)
        reference = brute_force_norm(model)
        # The generator targets the grid peak, brute force resamples it;
        # the bisection bracket must contain a value close to both.
        assert result.lower <= result.norm <= result.upper
        assert result.norm == pytest.approx(reference, rel=1e-3)

    def test_bracket_width(self):
        model = random_macromodel(8, 2, seed=9, sigma_target=1.05)
        result = hinf_norm(model, rtol=1e-8)
        assert (result.upper - result.lower) <= 1e-7 * result.upper

    def test_norm_at_least_d_norm(self):
        model = random_macromodel(8, 2, seed=10, sigma_target=0.8)
        result = hinf_norm(model)
        assert result.norm >= np.linalg.norm(model.d, 2) - 1e-9

    def test_simo_input(self):
        model = random_macromodel(8, 2, seed=11, sigma_target=1.02)
        simo = pole_residue_to_simo(model)
        a = hinf_norm(model, rtol=1e-6)
        b = hinf_norm(simo, rtol=1e-6)
        assert a.norm == pytest.approx(b.norm, rel=1e-5)

    def test_parallel_oracle(self):
        model = random_macromodel(8, 2, seed=12, sigma_target=1.03)
        serial = hinf_norm(model, rtol=1e-6, num_threads=1)
        parallel = hinf_norm(model, rtol=1e-6, num_threads=2)
        assert serial.norm == pytest.approx(parallel.norm, rel=1e-5)

    def test_unstable_rejected(self):
        from repro.macromodel.rational import PoleResidueModel

        bad = PoleResidueModel(
            np.array([0.1 + 0j]), 0.1 * np.ones((1, 1, 1)), np.zeros((1, 1))
        )
        with pytest.raises(ValueError, match="stable"):
            hinf_norm(bad)

    def test_bisections_reported(self):
        model = random_macromodel(8, 2, seed=13, sigma_target=1.02)
        result = hinf_norm(model, rtol=1e-4)
        assert result.bisections >= 1
        tighter = hinf_norm(model, rtol=1e-9)
        assert tighter.bisections >= result.bisections
