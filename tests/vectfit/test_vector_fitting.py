"""Unit tests for Vector Fitting."""

import numpy as np
import pytest

from repro.synth import random_macromodel
from repro.vectfit.options import VectorFittingOptions
from repro.vectfit.vector_fitting import FitResult, initial_poles, vector_fit


@pytest.fixture(scope="module")
def truth():
    return random_macromodel(10, 2, seed=81, sigma_target=None)


@pytest.fixture(scope="module")
def samples(truth):
    freqs = np.linspace(0.01, 15.0, 240)
    return freqs, truth.frequency_response(freqs)


class TestInitialPoles:
    def test_count(self):
        poles = initial_poles(np.linspace(0.1, 10, 50), 8)
        assert poles.size == 8

    def test_stable(self):
        poles = initial_poles(np.linspace(0.1, 10, 50), 8)
        assert np.all(poles.real < 0)

    def test_conjugate_complete(self):
        from repro.macromodel.poles import conjugate_pairs_complete

        poles = initial_poles(np.linspace(0.1, 10, 50), 9, real_fraction=0.2)
        assert conjugate_pairs_complete(poles)

    def test_spread_covers_band(self):
        poles = initial_poles(np.linspace(0.1, 10, 50), 10)
        w0 = poles.imag[poles.imag > 0]
        assert w0.max() == pytest.approx(10.0, rel=0.01)


class TestExactRecovery:
    def test_machine_precision_fit(self, truth, samples):
        freqs, responses = samples
        fit = vector_fit(freqs, responses, num_poles=truth.num_poles)
        assert fit.rms_error < 1e-9
        assert fit.converged

    def test_pole_recovery(self, truth, samples):
        freqs, responses = samples
        fit = vector_fit(freqs, responses, num_poles=truth.num_poles)
        remaining = list(fit.model.poles)
        for pole in truth.poles:
            dist = [abs(pole - q) for q in remaining]
            j = int(np.argmin(dist))
            assert dist[j] < 1e-6 * max(1.0, abs(pole))
            remaining.pop(j)

    def test_d_recovery(self, truth, samples):
        freqs, responses = samples
        fit = vector_fit(freqs, responses, num_poles=truth.num_poles)
        np.testing.assert_allclose(fit.model.d, truth.d, atol=1e-8)

    def test_result_metadata(self, truth, samples):
        freqs, responses = samples
        fit = vector_fit(freqs, responses, num_poles=truth.num_poles)
        assert isinstance(fit, FitResult)
        assert len(fit.pole_history) == fit.iterations + 1
        assert fit.max_error >= fit.rms_error


class TestRobustness:
    def test_noisy_fit(self, truth, samples, rng):
        freqs, responses = samples
        noisy = responses + 1e-3 * (
            rng.standard_normal(responses.shape)
            + 1j * rng.standard_normal(responses.shape)
        )
        fit = vector_fit(freqs, noisy, num_poles=truth.num_poles)
        assert fit.rms_error < 5e-3

    def test_model_is_stable(self, truth, samples):
        freqs, responses = samples
        fit = vector_fit(freqs, responses, num_poles=truth.num_poles)
        assert fit.model.is_stable()

    def test_model_is_real(self, truth, samples):
        freqs, responses = samples
        fit = vector_fit(freqs, responses, num_poles=truth.num_poles)
        assert fit.model.is_real_model()

    def test_overmodeling_still_accurate(self, truth, samples):
        freqs, responses = samples
        fit = vector_fit(freqs, responses, num_poles=truth.num_poles + 4)
        assert fit.rms_error < 1e-6

    def test_scalar_input(self):
        model = random_macromodel(6, 1, seed=82, sigma_target=None)
        freqs = np.linspace(0.01, 12.0, 150)
        samples = model.frequency_response(freqs)[:, 0, 0]
        fit = vector_fit(freqs, samples, num_poles=6)
        assert fit.rms_error < 1e-8
        assert fit.model.num_ports == 1

    def test_inverse_magnitude_weighting(self, truth, samples):
        freqs, responses = samples
        fit = vector_fit(
            freqs,
            responses,
            num_poles=truth.num_poles,
            options=VectorFittingOptions(weighting="inverse_magnitude"),
        )
        assert fit.rms_error < 1e-8


class TestValidation:
    def test_shape_mismatch(self, samples):
        freqs, responses = samples
        with pytest.raises(ValueError, match="samples"):
            vector_fit(freqs[:-1], responses, num_poles=4)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="p, p"):
            vector_fit(np.linspace(1, 2, 10), np.zeros((10, 2, 3)), num_poles=2)

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="too few"):
            vector_fit(np.linspace(1, 2, 3), np.zeros((3, 1, 1)), num_poles=10)

    def test_start_pole_count_checked(self, samples):
        freqs, responses = samples
        with pytest.raises(ValueError, match="start_poles"):
            vector_fit(
                freqs, responses, num_poles=6, start_poles=np.array([-1.0 + 0j])
            )
