"""Unit tests for VectorFittingOptions."""

import pytest

from repro.vectfit.options import VectorFittingOptions


class TestValidation:
    def test_defaults_valid(self):
        opts = VectorFittingOptions()
        assert opts.iterations > 0
        assert opts.enforce_stability

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            VectorFittingOptions(iterations=0)

    def test_unknown_weighting_rejected(self):
        with pytest.raises(ValueError, match="weighting"):
            VectorFittingOptions(weighting="sqrt")

    def test_real_fraction_bounds(self):
        with pytest.raises(ValueError):
            VectorFittingOptions(real_pole_fraction=1.5)

    def test_negative_damping_rejected(self):
        with pytest.raises(ValueError):
            VectorFittingOptions(initial_damping_ratio=-0.1)

    def test_with_replaces(self):
        opts = VectorFittingOptions().with_(iterations=5)
        assert opts.iterations == 5
