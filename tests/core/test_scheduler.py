"""Unit tests for the dynamic band scheduler (Sec. IV, Figs. 3-5).

These tests are the executable versions of the paper's schematic figures:
startup ordering (Fig. 3), free-interval claiming (Fig. 4), interval
splitting on radius shrink (Fig. 5), covered-shift elimination (eq. 24),
and the termination condition (eq. 29).
"""

import pytest

from repro.core.scheduler import BandScheduler, Segment


class TestConstruction:
    def test_interval_count(self):
        sched = BandScheduler(0.0, 10.0, num_threads=3, kappa=2)
        assert sched.tentative_count() == 6

    def test_minimum_two_intervals(self):
        sched = BandScheduler(0.0, 10.0, num_threads=1, kappa=2)
        assert sched.tentative_count() >= 2

    def test_empty_band_rejected(self):
        with pytest.raises(ValueError, match="empty band"):
            BandScheduler(5.0, 5.0, num_threads=1)

    def test_negative_omega_min_rejected(self):
        with pytest.raises(ValueError):
            BandScheduler(-1.0, 5.0, num_threads=1)

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            BandScheduler(0.0, 1.0, num_threads=1, alpha=0.5)


class TestStartupOrdering:
    """Fig. 3 / eq. (13-15): extrema first, then interior in order."""

    def test_first_two_tasks_are_extrema(self):
        sched = BandScheduler(0.0, 12.0, num_threads=3, kappa=2)
        first = sched.next_task()
        second = sched.next_task()
        assert first.center == pytest.approx(0.0)
        assert second.center == pytest.approx(12.0)

    def test_interior_order(self):
        sched = BandScheduler(0.0, 12.0, num_threads=3, kappa=2)  # N = 6
        sched.next_task()
        sched.next_task()
        third = sched.next_task()
        # Third task is the first interior interval's midpoint: [2, 4] -> 3.
        assert third.center == pytest.approx(3.0)

    def test_edge_shifts_sit_on_band_edges(self):
        sched = BandScheduler(2.0, 8.0, num_threads=2, kappa=2)  # N = 4
        tasks = [sched.next_task() for _ in range(4)]
        centers = sorted(t.center for t in tasks)
        assert centers[0] == pytest.approx(2.0)
        assert centers[-1] == pytest.approx(8.0)


class TestClaiming:
    def test_claimed_segment_is_processing(self):
        sched = BandScheduler(0.0, 10.0, num_threads=1)
        task = sched.next_task()
        assert task.status == "processing"
        assert sched.processing_count() == 1

    def test_queue_exhaustion_returns_none(self):
        sched = BandScheduler(0.0, 10.0, num_threads=1, kappa=2)
        while sched.next_task() is not None:
            pass
        assert sched.next_task() is None

    def test_initial_radius_eq23(self):
        sched = BandScheduler(0.0, 10.0, num_threads=1, kappa=2, alpha=1.1)
        task = sched.next_task()
        assert sched.initial_radius(task) == pytest.approx(1.1 * task.width / 2)


class TestCompletion:
    def test_covering_disk_retires_interval(self):
        sched = BandScheduler(0.0, 10.0, num_threads=1, kappa=2)
        task = sched.next_task()
        sched.complete(task, task.center, radius=20.0)  # covers everything
        # All other tentative shifts are eliminated (eq. 24).
        assert sched.tentative_count() == 0
        assert sched.is_finished()
        assert sched.eliminated >= 1

    def test_small_disk_splits_interval(self):
        """Fig. 5 / eq. (25-28): remainder pieces get midpoint shifts."""
        sched = BandScheduler(0.0, 8.0, num_threads=1, kappa=2)
        task = sched.next_task()  # [0, 4] with shift at 0
        sched.complete(task, 2.0, radius=0.5)  # covers [1.5, 2.5] only
        # Remainders [0, 1.5] and [2.5, 4] must be rescheduled.
        pending = []
        while True:
            t = sched.next_task()
            if t is None:
                break
            pending.append(t)
        spans = sorted((t.lo, t.hi) for t in pending)
        assert (0.0, 1.5) in spans
        assert (2.5, 4.0) in spans
        # New shifts sit at the remainder midpoints (eq. 26-27).
        centers = sorted(t.center for t in pending if t.hi <= 4.0)
        assert centers[0] == pytest.approx(0.75)
        assert centers[1] == pytest.approx(3.25)

    def test_partial_cover_trims_neighbour(self):
        """A disk overlapping a tentative neighbour trims, never orphans."""
        sched = BandScheduler(0.0, 8.0, num_threads=1, kappa=2)  # [0,4], [4,8]
        task = sched.next_task()  # shift at 0
        # Disk covers [0, 5]: neighbour [4, 8] keeps only [5, 8].
        sched.complete(task, 0.0, radius=5.0)
        remaining = []
        while True:
            t = sched.next_task()
            if t is None:
                break
            remaining.append(t)
        spans = sorted((t.lo, t.hi) for t in remaining)
        assert spans == [(5.0, 8.0)]
        assert sched.trimmed >= 1

    def test_complete_unclaimed_rejected(self):
        sched = BandScheduler(0.0, 10.0, num_threads=1)
        fake = Segment(index=99, lo=0.0, hi=1.0, center=0.5)
        with pytest.raises(ValueError, match="processing"):
            sched.complete(fake, 0.5, 1.0)

    def test_nonpositive_radius_rejected(self):
        sched = BandScheduler(0.0, 10.0, num_threads=1)
        task = sched.next_task()
        with pytest.raises(ValueError, match="radius"):
            sched.complete(task, task.center, 0.0)


class TestTermination:
    """Eq. (29): done when no tentative and no processing shifts remain."""

    def test_not_finished_while_processing(self):
        sched = BandScheduler(0.0, 10.0, num_threads=1, kappa=2)
        task = sched.next_task()
        assert not sched.is_finished()  # claimed task still processing
        sched.complete(task, task.center, radius=20.0)
        # The covering disk eliminated every tentative shift (eq. 24).
        assert sched.is_finished()

    def test_full_drain_covers_band(self):
        """Simulated perfect oracle: every disk covers its interval."""
        sched = BandScheduler(0.0, 10.0, num_threads=2, kappa=2)
        while True:
            task = sched.next_task()
            if task is None:
                break
            sched.complete(task, task.center, radius=1.01 * task.width)
        assert sched.is_finished()
        assert sched.uncovered(ignore_dust=True) == []

    def test_adversarial_small_radii_still_converge(self):
        """Radii of 30% of the interval force repeated splits; coverage
        must still complete."""
        sched = BandScheduler(0.0, 4.0, num_threads=1, kappa=2, min_width_rel=1e-6)
        steps = 0
        while steps < 10_000:
            task = sched.next_task()
            if task is None:
                break
            sched.complete(task, task.center, radius=max(0.3 * task.width, 1e-5))
            steps += 1
        assert sched.is_finished()
        assert sched.uncovered(ignore_dust=True) == []


class TestCoverageInvariant:
    def test_invariant_throughout_random_run(self, rng):
        """done-disks + tentative + processing always cover the band."""
        sched = BandScheduler(0.0, 10.0, num_threads=3, kappa=2)
        active = {}
        for _ in range(500):
            # Randomly either claim or complete.
            if active and (rng.random() < 0.5 or sched.tentative_count() == 0):
                index = list(active)[int(rng.integers(len(active)))]
                task = active.pop(index)
                radius = float(rng.uniform(0.1, 1.5)) * max(task.width, 0.5)
                sched.complete(task, task.center, radius)
            else:
                task = sched.next_task()
                if task is None:
                    if not active:
                        break
                    continue
                active[task.index] = task
            self._check_invariant(sched, active)
        # Drain.
        while active or not sched.is_finished():
            task = sched.next_task()
            if task is not None:
                active[task.index] = task
            if active:
                index = next(iter(active))
                task = active.pop(index)
                sched.complete(task, task.center, max(task.width, 0.5))
        assert sched.uncovered(ignore_dust=True) == []

    @staticmethod
    def _check_invariant(sched, active):
        events = []
        for lo, hi in sched.covered_union():
            events.append((lo, hi))
        for seg in sched._segments.values():  # noqa: SLF001 - invariant check
            if seg.status == "tentative":
                events.append((seg.lo, seg.hi))
        for seg in active.values():
            events.append((seg.lo, seg.hi))
        events.sort()
        cursor = sched.omega_min
        tol = 1e-9 * (sched.omega_max - sched.omega_min)
        for lo, hi in events:
            assert lo <= cursor + tol, f"coverage hole before {lo}"
            cursor = max(cursor, hi)
            if cursor >= sched.omega_max:
                break
        assert cursor >= sched.omega_max - tol


class TestStaticMode:
    def test_no_elimination_in_static_mode(self):
        sched = BandScheduler(0.0, 10.0, num_threads=2, kappa=2, dynamic=False)
        task = sched.next_task()
        sched.complete(task, task.center, radius=30.0)  # covers everything
        # Static mode still processes every pre-distributed shift.
        assert sched.eliminated == 0
        assert sched.tentative_count() > 0

    def test_static_processes_more_shifts(self):
        def drain(dynamic):
            sched = BandScheduler(
                0.0, 10.0, num_threads=2, kappa=2, dynamic=dynamic
            )
            count = 0
            while True:
                task = sched.next_task()
                if task is None:
                    break
                sched.complete(task, task.center, radius=4.0)
                count += 1
            return count

        assert drain(dynamic=False) >= drain(dynamic=True)
