"""Unit tests for the multi-process sharded driver."""

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.process import (
    ENV_MIN_ORDER,
    PROCESS_MIN_ORDER,
    select_process_execution,
    solve_process,
)
from repro.core.scheduler import BandScheduler
from repro.core.serial import solve_serial
from repro.hamiltonian.spectral import imaginary_eigenvalues_dense
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def violating_simo():
    return pole_residue_to_simo(random_macromodel(12, 3, seed=31, sigma_target=1.1))


@pytest.fixture
def force_pool(monkeypatch):
    """Force the real process pool even for tiny test models."""
    monkeypatch.setenv(ENV_MIN_ORDER, "1")


class TestSelectExecution:
    def test_single_worker_runs_inline(self):
        assert select_process_execution(10_000, 1) == "inline"

    def test_small_model_falls_back_to_threads(self):
        assert select_process_execution(PROCESS_MIN_ORDER - 1, 4) == "thread"

    def test_large_model_uses_the_pool(self):
        assert select_process_execution(PROCESS_MIN_ORDER, 4) == "process"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_MIN_ORDER, "5")
        assert select_process_execution(5, 4) == "process"

    def test_malformed_env_raises_config_error(self, monkeypatch):
        from repro.core.config import ConfigError

        monkeypatch.setenv(ENV_MIN_ORDER, "bogus")
        with pytest.raises(ConfigError, match=ENV_MIN_ORDER):
            select_process_execution(5, 4)


class TestCorrectness:
    @pytest.mark.parametrize("num_threads", [2, 3])
    def test_matches_dense(self, violating_simo, num_threads, force_pool):
        truth = imaginary_eigenvalues_dense(violating_simo)
        result = solve_process(violating_simo, num_threads=num_threads)
        assert result.strategy == "process"
        assert result.num_crossings == truth.size
        np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)

    def test_matches_serial(self, violating_simo, force_pool):
        serial = solve_serial(violating_simo, strategy="bisection")
        process = solve_process(violating_simo, num_threads=3)
        np.testing.assert_allclose(
            np.sort(process.omegas), np.sort(serial.omegas), atol=1e-6
        )

    def test_band_covered(self, violating_simo, force_pool):
        result = solve_process(violating_simo, num_threads=3)
        assert result.coverage_gaps() == []

    def test_work_counters_aggregate_across_shards(self, violating_simo, force_pool):
        result = solve_process(violating_simo, num_threads=2)
        assert result.work["shifts_processed"] == len(result.shifts)
        assert result.work["operator_applies"] > 0

    def test_record_indices_unique_and_sorted(self, violating_simo, force_pool):
        result = solve_process(violating_simo, num_threads=3)
        indices = [record.index for record in result.shifts]
        assert indices == sorted(indices)
        assert len(indices) == len(set(indices))
        # Every shard contributed at least one shift.
        assert {record.worker for record in result.shifts} == {0, 1, 2}

    def test_passive_model(self, force_pool):
        simo = pole_residue_to_simo(
            random_macromodel(10, 2, seed=32, sigma_target=0.9)
        )
        result = solve_process(simo, num_threads=2)
        assert result.is_passive_candidate


class TestFallbacks:
    def test_single_worker_runs_without_pool(self, violating_simo):
        result = solve_process(violating_simo, num_threads=1)
        assert result.strategy == "process"
        assert result.num_threads == 1
        assert result.coverage_gaps() == []

    def test_small_model_delegates_to_thread_driver(self, violating_simo):
        # Default threshold far above this model's order.
        assert violating_simo.order < PROCESS_MIN_ORDER
        result = solve_process(violating_simo, num_threads=2)
        assert result.strategy == "queue"

    def test_fallback_matches_serial(self, violating_simo):
        serial = solve_serial(violating_simo, strategy="bisection")
        fallback = solve_process(violating_simo, num_threads=2)
        np.testing.assert_allclose(
            np.sort(fallback.omegas), np.sort(serial.omegas), atol=1e-6
        )


class TestDeterminism:
    def test_seeded_runs_identical(self, violating_simo, force_pool):
        options = SolverOptions(seed=42)
        a = solve_process(violating_simo, num_threads=2, options=options)
        b = solve_process(violating_simo, num_threads=2, options=options)
        np.testing.assert_array_equal(a.omegas, b.omegas)
        assert [r.index for r in a.shifts] == [r.index for r in b.shifts]


class TestSchedulerIndexOffset:
    def test_segments_start_at_offset(self):
        scheduler = BandScheduler(0.0, 10.0, num_threads=1, index_offset=100)
        segment = scheduler.next_task()
        assert segment is not None
        assert segment.index >= 100

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="index_offset"):
            BandScheduler(0.0, 10.0, num_threads=1, index_offset=-1)
