"""Unit tests for the result containers."""

import numpy as np
import pytest

from repro.core.results import ShiftRecord, SingleShiftResult, SolveResult


def make_record(center, radius, index=0, eigs=()):
    result = SingleShiftResult(
        shift=1j * center,
        radius=radius,
        eigenvalues=np.asarray(eigs, dtype=complex),
        restarts=1,
        converged=True,
    )
    return ShiftRecord(
        index=index,
        center=center,
        interval=(center - radius, center + radius),
        result=result,
        worker=0,
        elapsed=0.01,
    )


def make_solve(records, band=(0.0, 10.0), omegas=()):
    return SolveResult(
        omegas=np.asarray(omegas, dtype=float),
        eigenvalues=np.concatenate(
            [r.result.eigenvalues for r in records]
        )
        if records
        else np.empty(0, complex),
        band=band,
        shifts=list(records),
        work={"operator_applies": 10, "shifts_eliminated": 2},
        elapsed=0.5,
        num_threads=2,
        strategy="queue",
    )


class TestSingleShiftResult:
    def test_covers(self):
        res = SingleShiftResult(2j, 1.0, np.array([]), 1, True)
        assert res.covers(2.5j)
        assert not res.covers(4j)
        assert res.covers(3.5j, slack=0.6)


class TestSolveResult:
    def test_counts(self):
        solve = make_solve([make_record(5.0, 6.0)], omegas=[1.0, 2.0])
        assert solve.num_crossings == 2
        assert not solve.is_passive_candidate
        assert solve.shifts_processed == 1

    def test_passive_candidate(self):
        solve = make_solve([make_record(5.0, 6.0)])
        assert solve.is_passive_candidate

    def test_no_gaps_when_covered(self):
        solve = make_solve([make_record(5.0, 6.0)])
        assert solve.coverage_gaps() == []

    def test_gap_detection(self):
        solve = make_solve(
            [make_record(1.0, 1.0, 0), make_record(9.0, 1.0, 1)]
        )
        gaps = solve.coverage_gaps()
        assert len(gaps) == 1
        lo, hi = gaps[0]
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(8.0)

    def test_gap_at_band_end(self):
        solve = make_solve([make_record(2.0, 3.0)])
        gaps = solve.coverage_gaps()
        assert gaps == [(5.0, 10.0)]

    def test_summary_mentions_key_fields(self):
        solve = make_solve([make_record(5.0, 6.0)], omegas=[1.0])
        text = solve.summary()
        assert "crossings=1" in text
        assert "threads=2" in text
