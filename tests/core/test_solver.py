"""Unit tests for the public find_imaginary_eigenvalues API."""

import numpy as np
import pytest

from repro.core.solver import find_imaginary_eigenvalues
from repro.hamiltonian.spectral import imaginary_eigenvalues_dense
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def model():
    return random_macromodel(10, 3, seed=41, sigma_target=1.07)


@pytest.fixture(scope="module")
def truth(model):
    return imaginary_eigenvalues_dense(pole_residue_to_simo(model))


class TestStrategies:
    def test_auto_serial_uses_bisection(self, model):
        result = find_imaginary_eigenvalues(model, num_threads=1)
        assert result.strategy == "bisection"

    def test_auto_parallel_uses_queue(self, model):
        result = find_imaginary_eigenvalues(model, num_threads=2)
        assert result.strategy == "queue"

    def test_queue_single_thread(self, model):
        result = find_imaginary_eigenvalues(model, num_threads=1, strategy="queue")
        assert result.strategy == "queue"
        assert result.num_threads == 1

    def test_static(self, model, truth):
        result = find_imaginary_eigenvalues(model, num_threads=2, strategy="static")
        np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)

    def test_bisection_multithread_rejected(self, model):
        with pytest.raises(ValueError, match="sequential"):
            find_imaginary_eigenvalues(model, num_threads=4, strategy="bisection")

    def test_unknown_strategy_rejected(self, model):
        with pytest.raises(ValueError, match="unknown strategy"):
            find_imaginary_eigenvalues(model, strategy="bogus")

    @pytest.mark.parametrize("strategy,threads", [
        ("bisection", 1),
        ("queue", 1),
        ("queue", 3),
        ("static", 3),
    ])
    def test_all_strategies_agree_with_dense(self, model, truth, strategy, threads):
        result = find_imaginary_eigenvalues(
            model, num_threads=threads, strategy=strategy
        )
        assert result.num_crossings == truth.size
        np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)


class TestInputs:
    def test_simo_input(self, model, truth):
        simo = pole_residue_to_simo(model)
        result = find_imaginary_eigenvalues(simo)
        np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            find_imaginary_eigenvalues(np.eye(4))

    def test_crossings_match_unit_singular_values(self, model):
        simo = pole_residue_to_simo(model)
        result = find_imaginary_eigenvalues(model, num_threads=2)
        for w in result.omegas:
            sv = np.linalg.svd(simo.transfer(1j * w), compute_uv=False)
            assert np.min(np.abs(sv - 1.0)) < 1e-5
