"""Unit tests for the Arnoldi machinery."""

import numpy as np
import pytest

from repro.core.arnoldi import build_arnoldi, ritz_pairs
from repro.utils.timing import WorkCounter


def random_operator(seed=0, n=30):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    return m, (lambda x: m @ x)


class TestBuildArnoldi:
    def test_factorization_identity(self, rng):
        """OP V_k = V_k H_k + h_{k+1,k} v_{k+1} e_k^T."""
        m, op = random_operator(1)
        start = rng.standard_normal(30) + 0j
        fact = build_arnoldi(op, start, 8)
        v = fact.basis
        left = m @ v
        right = v @ fact.hessenberg
        right[:, -1] += fact.residual_coupling * fact.next_vector
        np.testing.assert_allclose(left, right, atol=1e-10)

    def test_basis_orthonormal(self, rng):
        _, op = random_operator(2)
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 10)
        gram = fact.basis.conj().T @ fact.basis
        np.testing.assert_allclose(gram, np.eye(10), atol=1e-12)

    def test_dimension_capped_at_space(self, rng):
        _, op = random_operator(3, n=5)
        fact = build_arnoldi(op, rng.standard_normal(5) + 0j, 50)
        assert fact.dimension <= 5

    def test_breakdown_on_invariant_subspace(self):
        """Start vector inside a small invariant subspace breaks down."""
        m = np.diag([1.0, 2.0, 3.0, 4.0]).astype(complex)
        start = np.array([1.0, 1.0, 0.0, 0.0], dtype=complex)
        fact = build_arnoldi(lambda x: m @ x, start, 4)
        assert fact.breakdown
        assert fact.dimension <= 3

    def test_zero_start_raises(self):
        _, op = random_operator(4)
        with pytest.raises(ValueError):
            build_arnoldi(op, np.zeros(30, complex), 5)

    def test_start_inside_locked_raises(self, rng):
        _, op = random_operator(5)
        q, _ = np.linalg.qr(rng.standard_normal((30, 2)) + 0j)
        with pytest.raises(ValueError):
            build_arnoldi(op, q[:, 0], 5, locked=q)

    def test_locked_orthogonality(self, rng):
        _, op = random_operator(6)
        q, _ = np.linalg.qr(rng.standard_normal((30, 3)) + 0j)
        start = rng.standard_normal(30) + 0j
        fact = build_arnoldi(op, start, 8, locked=q)
        np.testing.assert_allclose(q.conj().T @ fact.basis, 0.0, atol=1e-10)

    def test_deflation_coeffs_shape(self, rng):
        _, op = random_operator(7)
        q, _ = np.linalg.qr(rng.standard_normal((30, 2)) + 0j)
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 6, locked=q)
        assert fact.deflation_coeffs.shape == (2, fact.dimension)

    def test_deflation_coeffs_record_projection(self, rng):
        m, op = random_operator(8)
        q, _ = np.linalg.qr(rng.standard_normal((30, 2)) + 0j)
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 6, locked=q)
        # F[:, j] must equal Q^H OP v_j.
        for j in range(fact.dimension):
            expected = q.conj().T @ (m @ fact.basis[:, j])
            np.testing.assert_allclose(
                fact.deflation_coeffs[:, j], expected, atol=1e-10
            )

    def test_work_counter(self, rng):
        _, op = random_operator(9)
        work = WorkCounter()
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 7, work=work)
        assert work.arnoldi_steps == fact.dimension


class TestRitzPairs:
    def test_exact_for_full_dimension(self, rng):
        """With k == n, Ritz values are the exact eigenvalues."""
        m, op = random_operator(10, n=8)
        fact = build_arnoldi(op, rng.standard_normal(8) + 0j, 8)
        pairs = ritz_pairs(fact)
        found = np.sort_complex(np.array([p.value for p in pairs]))
        true = np.sort_complex(np.linalg.eigvals(m))
        np.testing.assert_allclose(found, true, atol=1e-8)

    def test_residual_estimate_accuracy(self, rng):
        m, op = random_operator(11)
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 12)
        for pair in ritz_pairs(fact)[:3]:
            true_res = np.linalg.norm(m @ pair.vector - pair.value * pair.vector)
            # The estimate equals the true residual for exact arithmetic
            # Arnoldi; allow generous slack for round-off.
            assert true_res <= pair.residual_estimate * 10 + 1e-8

    def test_sorted_by_magnitude(self, rng):
        _, op = random_operator(12)
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 10)
        values = [abs(p.value) for p in ritz_pairs(fact, sort_by="magnitude")]
        assert values == sorted(values, reverse=True)

    def test_max_pairs(self, rng):
        _, op = random_operator(13)
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 10)
        assert len(ritz_pairs(fact, max_pairs=3)) == 3

    def test_unknown_sort_raises(self, rng):
        _, op = random_operator(14)
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 4)
        with pytest.raises(ValueError):
            ritz_pairs(fact, sort_by="phase")

    def test_vectors_unit_norm(self, rng):
        _, op = random_operator(15)
        fact = build_arnoldi(op, rng.standard_normal(30) + 0j, 6)
        for pair in ritz_pairs(fact):
            assert np.linalg.norm(pair.vector) == pytest.approx(1.0)
