"""Unit and property tests for the single-shift operator S (Sec. III, Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.options import SolverOptions
from repro.core.single_shift import SingleShiftSolver, estimate_spectral_bound
from repro.hamiltonian.operator import HamiltonianOperator
from repro.hamiltonian.spectral import full_hamiltonian_spectrum
from repro.macromodel.realization import pole_residue_to_simo
from repro.utils.rng import RandomStream
from tests.conftest import make_pole_residue


def build_solver(seed=0, **opt_kwargs):
    simo = pole_residue_to_simo(make_pole_residue(seed=seed, num_ports=3))
    op = HamiltonianOperator(simo)
    defaults = dict(krylov_dim=40, num_wanted=4)
    defaults.update(opt_kwargs)
    return SingleShiftSolver(op, SolverOptions(**defaults)), op


class TestSpectralBound:
    def test_bounds_largest_eigenvalue(self):
        _, op = build_solver(seed=3)
        lam = full_hamiltonian_spectrum(op.simo)
        bound = estimate_spectral_bound(op, stream=RandomStream(1))
        assert bound >= 0.98 * np.abs(lam).max()

    def test_margin_scales(self):
        _, op = build_solver(seed=3)
        small = estimate_spectral_bound(op, stream=RandomStream(1), margin=1.0)
        large = estimate_spectral_bound(op, stream=RandomStream(1), margin=1.5)
        assert large == pytest.approx(1.5 * small)


class TestContract:
    """S(theta, rho0) returns exactly the eigenvalues in its certified disk."""

    @pytest.mark.parametrize("center,rho0", [(0.0, 1.0), (3.0, 1.5), (8.0, 2.0)])
    def test_certification(self, center, rho0):
        solver, op = build_solver(seed=1)
        truth = full_hamiltonian_spectrum(op.simo)
        result = solver.run(center, rho0, RandomStream(99))
        inside = truth[np.abs(truth - result.shift) < result.radius * (1 - 1e-12)]
        assert len(inside) == len(result.eigenvalues)
        remaining = list(inside)
        for lam in result.eigenvalues:
            dist = [abs(lam - t) for t in remaining]
            j = int(np.argmin(dist))
            assert dist[j] < 1e-6
            remaining.pop(j)

    def test_budget_respected(self):
        solver, op = build_solver(seed=1, num_wanted=3)
        result = solver.run(3.0, 50.0, RandomStream(7))
        assert len(result.eigenvalues) <= 2 * 3 + 2  # symmetric ties allowed

    def test_positive_radius(self):
        solver, _ = build_solver(seed=2)
        result = solver.run(5.0, 1.0, RandomStream(3))
        assert result.radius > 0.0

    def test_far_shift_grows_radius(self):
        """A shift far above the spectrum either certifies an empty disk of
        at least rho0, or grows the disk out to the nearest converged
        eigenvalues (the paper's radius-growth rule) — both honour the
        contract that every eigenvalue inside the final disk is listed."""
        solver, op = build_solver(seed=1)
        truth = full_hamiltonian_spectrum(op.simo)
        spectrum_top = np.abs(truth).max()
        result = solver.run(10.0 * spectrum_top, 0.1, RandomStream(5))
        assert result.radius >= 0.1
        inside = truth[np.abs(truth - result.shift) < result.radius * (1 - 1e-12)]
        assert len(inside) == len(result.eigenvalues)

    def test_deterministic_given_stream(self):
        solver, _ = build_solver(seed=4)
        a = solver.run(3.0, 1.0, RandomStream(11))
        b = solver.run(3.0, 1.0, RandomStream(11))
        assert a.radius == b.radius
        np.testing.assert_array_equal(a.eigenvalues, b.eigenvalues)

    def test_applies_counted(self):
        solver, _ = build_solver(seed=4)
        result = solver.run(3.0, 1.0, RandomStream(11))
        assert result.applies > 0

    def test_shift_on_eigenvalue_nudges(self):
        """Centering exactly on an imaginary eigenvalue must not fail."""
        solver, op = build_solver(seed=1)
        truth = full_hamiltonian_spectrum(op.simo)
        imag = truth[np.abs(truth.real) < 1e-8]
        if imag.size == 0:
            pytest.skip("model has no imaginary eigenvalues")
        w = float(np.abs(imag.imag).max())
        result = solver.run(w, 0.5, RandomStream(13))
        assert result.radius > 0.0


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2_000),
    center=st.floats(0.0, 15.0, allow_nan=False),
)
def test_certification_property(seed, center):
    """The disk contract holds for random models and random shifts."""
    solver, op = build_solver(seed=seed)
    truth = full_hamiltonian_spectrum(op.simo)
    result = solver.run(center, 1.5, RandomStream(seed + 1))
    inside = truth[np.abs(truth - result.shift) < result.radius * (1 - 1e-10)]
    assert len(inside) == len(result.eigenvalues)
