"""Unit tests for the shared driver plumbing (repro.core.drivers)."""

import numpy as np
import pytest

from repro.core.drivers import (
    dedup_eigenvalues,
    prepare_operator,
    resolve_band,
)
from repro.core.options import SolverOptions
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel
from repro.utils.rng import RandomStream


class TestDedupEigenvalues:
    def test_empty(self):
        out = dedup_eigenvalues(np.empty(0, complex), 1e-6)
        assert out.size == 0

    def test_exact_duplicates_merged(self):
        eigs = np.array([1j, 1j, 2j])
        assert dedup_eigenvalues(eigs, 1e-9).size == 2

    def test_near_duplicates_merged(self):
        eigs = np.array([1j, 1j + 1e-10, 2j])
        assert dedup_eigenvalues(eigs, 1e-8).size == 2

    def test_distinct_kept(self):
        eigs = np.array([1j, 1.1j, -0.5 + 1j, 0.5 + 1j])
        assert dedup_eigenvalues(eigs, 1e-6).size == 4

    def test_interleaved_real_parts(self):
        """Duplicates with identical imag but scattered real parts merge."""
        eigs = np.array([0.3 + 1j, -0.3 + 1j, 0.3 + 1j + 1e-12])
        out = dedup_eigenvalues(eigs, 1e-9)
        assert out.size == 2

    def test_cluster_chain_not_overmerged(self):
        """A chain of points each within tol of the next but spanning more
        than tol overall keeps at least its endpoints distinct."""
        eigs = np.array([1j, 1j + 4e-7, 1j + 8e-7])
        out = dedup_eigenvalues(eigs, 5e-7)
        assert out.size >= 2


class TestPrepareOperator:
    def test_pole_residue_accepted(self, small_model):
        simo, op, work = prepare_operator(small_model, "scattering")
        assert op.order == small_model.order
        assert work is op.work

    def test_simo_accepted(self, small_simo):
        simo, op, _ = prepare_operator(small_simo, "scattering")
        assert simo is small_simo

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            prepare_operator(np.eye(2), "scattering")

    def test_unstable_rejected(self):
        from repro.macromodel.rational import PoleResidueModel

        bad = PoleResidueModel(
            np.array([1.0 + 0j]), 0.1 * np.ones((1, 1, 1)), np.zeros((1, 1))
        )
        with pytest.raises(ValueError, match="stable"):
            prepare_operator(bad, "scattering")


class TestResolveBand:
    def test_explicit_band_passthrough(self, small_simo):
        _, op, _ = prepare_operator(small_simo, "scattering")
        band = resolve_band(op, 1.0, 5.0, SolverOptions(), RandomStream(0))
        assert band == (1.0, 5.0)

    def test_automatic_upper_edge_covers_spectrum(self):
        model = random_macromodel(8, 2, seed=77, sigma_target=1.05)
        simo = pole_residue_to_simo(model)
        _, op, _ = prepare_operator(simo, "scattering")
        lo, hi = resolve_band(op, 0.0, None, SolverOptions(), RandomStream(0))
        assert lo == 0.0
        # The band must cover every crossing frequency.
        from repro.hamiltonian.spectral import imaginary_eigenvalues_dense

        truth = imaginary_eigenvalues_dense(simo)
        if truth.size:
            assert hi >= truth.max()

    def test_negative_omega_min_rejected(self, small_simo):
        _, op, _ = prepare_operator(small_simo, "scattering")
        with pytest.raises(ValueError):
            resolve_band(op, -1.0, 5.0, SolverOptions(), RandomStream(0))

    def test_empty_band_rejected(self, small_simo):
        _, op, _ = prepare_operator(small_simo, "scattering")
        with pytest.raises(ValueError, match="empty band"):
            resolve_band(op, 5.0, 5.0, SolverOptions(), RandomStream(0))
