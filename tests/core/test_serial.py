"""Unit tests for the serial drivers (bisection of Fig. 2 and queue)."""

import numpy as np
import pytest

from repro.core.serial import solve_serial
from repro.hamiltonian.spectral import imaginary_eigenvalues_dense
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def violating_simo():
    return pole_residue_to_simo(random_macromodel(10, 3, seed=21, sigma_target=1.08))


@pytest.fixture(scope="module")
def passive_simo():
    return pole_residue_to_simo(random_macromodel(10, 3, seed=22, sigma_target=0.9))


class TestBisection:
    def test_matches_dense(self, violating_simo):
        truth = imaginary_eigenvalues_dense(violating_simo)
        result = solve_serial(violating_simo, strategy="bisection")
        assert result.num_crossings == truth.size
        np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)

    def test_band_covered(self, violating_simo):
        result = solve_serial(violating_simo, strategy="bisection")
        assert result.coverage_gaps() == []

    def test_passive_model(self, passive_simo):
        result = solve_serial(passive_simo, strategy="bisection")
        assert result.is_passive_candidate

    def test_strategy_recorded(self, passive_simo):
        result = solve_serial(passive_simo, strategy="bisection")
        assert result.strategy == "bisection"
        assert result.num_threads == 1

    def test_work_counters_populated(self, violating_simo):
        result = solve_serial(violating_simo, strategy="bisection")
        assert result.work["operator_applies"] > 0
        assert result.work["shifts_processed"] == result.shifts_processed


class TestQueue:
    def test_matches_dense(self, violating_simo):
        truth = imaginary_eigenvalues_dense(violating_simo)
        result = solve_serial(violating_simo, strategy="queue")
        np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)

    def test_band_covered(self, violating_simo):
        result = solve_serial(violating_simo, strategy="queue")
        assert result.coverage_gaps() == []


class TestValidation:
    def test_unknown_strategy(self, passive_simo):
        with pytest.raises(ValueError, match="strategy"):
            solve_serial(passive_simo, strategy="magic")

    def test_unstable_model_rejected(self):
        from repro.macromodel.rational import PoleResidueModel

        model = PoleResidueModel(
            np.array([0.5 + 0j]), 0.1 * np.ones((1, 1, 1)), np.zeros((1, 1))
        )
        with pytest.raises(ValueError, match="stable"):
            solve_serial(model)

    def test_explicit_band(self, violating_simo):
        truth = imaginary_eigenvalues_dense(violating_simo)
        top = float(truth.max()) * 1.2 if truth.size else 5.0
        result = solve_serial(violating_simo, omega_max=top)
        assert result.band == (0.0, top)

    def test_empty_band_rejected(self, passive_simo):
        with pytest.raises(ValueError, match="empty band"):
            solve_serial(passive_simo, omega_min=5.0, omega_max=4.0)

    def test_pole_residue_input_accepted(self):
        model = random_macromodel(8, 2, seed=23, sigma_target=0.9)
        result = solve_serial(model)
        assert result.is_passive_candidate
