"""Unit tests for the multi-thread driver."""

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.core.serial import solve_serial
from repro.hamiltonian.spectral import imaginary_eigenvalues_dense
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def violating_simo():
    return pole_residue_to_simo(random_macromodel(12, 3, seed=31, sigma_target=1.1))


class TestCorrectness:
    @pytest.mark.parametrize("num_threads", [2, 3, 5])
    def test_matches_dense(self, violating_simo, num_threads):
        truth = imaginary_eigenvalues_dense(violating_simo)
        result = solve_parallel(violating_simo, num_threads=num_threads)
        assert result.num_crossings == truth.size
        np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)

    def test_matches_serial(self, violating_simo):
        serial = solve_serial(violating_simo, strategy="bisection")
        parallel = solve_parallel(violating_simo, num_threads=4)
        np.testing.assert_allclose(
            np.sort(parallel.omegas), np.sort(serial.omegas), atol=1e-6
        )

    def test_band_covered(self, violating_simo):
        result = solve_parallel(violating_simo, num_threads=3)
        assert result.coverage_gaps() == []

    def test_passive_model(self):
        simo = pole_residue_to_simo(
            random_macromodel(10, 2, seed=32, sigma_target=0.9)
        )
        result = solve_parallel(simo, num_threads=3)
        assert result.is_passive_candidate


class TestProvenance:
    def test_thread_count_recorded(self, violating_simo):
        result = solve_parallel(violating_simo, num_threads=3)
        assert result.num_threads == 3
        assert result.strategy == "queue"

    def test_workers_distributed(self, violating_simo):
        """With several threads and enough shifts, more than one worker
        should actually process work (not guaranteed, but overwhelmingly
        likely for this model; the test accepts a single worker only when
        the shift count is tiny)."""
        result = solve_parallel(violating_simo, num_threads=4)
        workers = {rec.worker for rec in result.shifts}
        assert len(workers) >= (2 if result.shifts_processed >= 6 else 1)

    def test_static_strategy_recorded(self, violating_simo):
        result = solve_parallel(violating_simo, num_threads=2, dynamic=False)
        assert result.strategy == "static"

    def test_static_does_at_least_as_many_shifts(self, violating_simo):
        opts = SolverOptions(seed=5)
        dyn = solve_parallel(violating_simo, num_threads=4, options=opts)
        stat = solve_parallel(
            violating_simo, num_threads=4, options=opts, dynamic=False
        )
        assert stat.shifts_processed >= dyn.shifts_processed
        assert stat.work["shifts_eliminated"] == 0

    def test_per_shift_applies_recorded(self, violating_simo):
        result = solve_parallel(violating_simo, num_threads=2)
        assert all(rec.result.applies > 0 for rec in result.shifts)


class TestValidation:
    def test_zero_threads_rejected(self, violating_simo):
        with pytest.raises(ValueError):
            solve_parallel(violating_simo, num_threads=0)

    def test_worker_errors_propagate(self, violating_simo, monkeypatch):
        from repro.core import parallel as par_mod

        def boom(*args, **kwargs):
            raise RuntimeError("injected worker failure")

        monkeypatch.setattr(par_mod, "run_segment", boom)
        with pytest.raises(RuntimeError, match="injected"):
            solve_parallel(violating_simo, num_threads=3)
