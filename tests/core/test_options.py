"""Unit tests for SolverOptions validation."""

import pytest

from repro.core.options import SolverOptions


class TestDefaults:
    def test_paper_defaults(self):
        opts = SolverOptions()
        assert opts.krylov_dim == 60  # Sec. III: "maximum size d = 60"
        assert 4 <= opts.num_wanted <= 6  # "typically 4-6"
        assert opts.kappa >= 2  # Sec. IV.A: "N = kappa T with kappa >= 2"
        assert opts.alpha >= 1.0  # eq. (23)


class TestValidation:
    def test_num_wanted_must_be_small(self):
        with pytest.raises(ValueError, match="smaller"):
            SolverOptions(krylov_dim=10, num_wanted=10)

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            SolverOptions(alpha=0.9)

    def test_kappa_one_rejected(self):
        with pytest.raises(ValueError, match="kappa"):
            SolverOptions(kappa=1)

    def test_negative_tol_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(tol=-1e-9)

    def test_zero_restarts_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(max_restarts=0)

    def test_non_integer_krylov_rejected(self):
        with pytest.raises(TypeError):
            SolverOptions(krylov_dim=12.5)


class TestWith:
    def test_with_replaces(self):
        opts = SolverOptions().with_(krylov_dim=40)
        assert opts.krylov_dim == 40
        assert opts.num_wanted == SolverOptions().num_wanted

    def test_with_validates(self):
        with pytest.raises(ValueError):
            SolverOptions().with_(alpha=0.5)

    def test_frozen(self):
        opts = SolverOptions()
        with pytest.raises(AttributeError):
            opts.krylov_dim = 10
