"""Concurrency stress tests for the parallel driver.

The OpenBLAS/scipy thread-safety hazards found during development (see the
comments in ``repro.hamiltonian.operator``) motivate an explicit stress
suite: many repeated multi-thread sweeps, varying thread counts, on the
same and on distinct operators, asserting result stability throughout.
"""

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.hamiltonian.spectral import imaginary_eigenvalues_dense
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def simo():
    return pole_residue_to_simo(random_macromodel(10, 3, seed=301, sigma_target=1.08))


@pytest.fixture(scope="module")
def truth(simo):
    return imaginary_eigenvalues_dense(simo)


class TestRepeatedSweeps:
    def test_many_repeats_same_result(self, simo, truth):
        """20 parallel sweeps with different seeds all agree with dense."""
        for rep in range(20):
            options = SolverOptions(seed=900 + rep)
            result = solve_parallel(simo, num_threads=4, options=options)
            assert result.num_crossings == truth.size, f"repeat {rep}"
            np.testing.assert_allclose(
                np.sort(result.omegas), truth, atol=1e-5
            )

    def test_thread_count_sweep(self, simo, truth):
        for threads in (2, 3, 4, 6, 8):
            result = solve_parallel(simo, num_threads=threads)
            assert result.num_crossings == truth.size, f"T={threads}"

    def test_seeded_determinism_of_eigenvalues(self, simo):
        """Same seed => same eigenvalue set (schedule may differ)."""
        options = SolverOptions(seed=1234)
        a = solve_parallel(simo, num_threads=4, options=options)
        b = solve_parallel(simo, num_threads=4, options=options)
        np.testing.assert_allclose(
            np.sort(a.omegas), np.sort(b.omegas), atol=1e-8
        )

    def test_more_threads_than_work(self, simo, truth):
        """Thread count far above the shift count must not deadlock."""
        result = solve_parallel(simo, num_threads=16)
        assert result.num_crossings == truth.size

    def test_work_accounting_consistent(self, simo):
        """Per-shift applies sum to no more than the global counter."""
        result = solve_parallel(simo, num_threads=4)
        per_shift = sum(rec.result.applies for rec in result.shifts)
        assert per_shift <= result.work["operator_applies"]
        # The global counter additionally includes band-estimation applies.
        assert result.work["operator_applies"] <= per_shift + 200
