"""Backend parity: serial, thread, and process sweeps agree exactly.

The acceptance bar of the process backend: on seeded synthetic models,
all three execution backends must report the *same* crossing set — same
count, values within 1e-12 of each other (relative to the band scale) —
including the small-model path where ``backend="process"`` falls back to
threads.  The solver tolerance is tightened below its default so that
converged Ritz values are pinned to near machine precision and the
comparison is meaningful.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import RunConfig
from repro.core.options import SolverOptions
from repro.core.process import ENV_MIN_ORDER
from repro.core.registry import resolve_strategy
from repro.core.solver import solve
from repro.synth import random_macromodel

#: Tight eigenpair tolerance so cross-backend deviations are round-off,
#: not truncation (see tests/core/test_process.py for default-tol runs).
TIGHT = SolverOptions(tol=1e-13)

#: Acceptance bound: 1e-12 relative to the band scale.
PARITY_RTOL = 1e-12


def _crossings(model, *, backend: str, num_threads: int):
    config = RunConfig(
        num_threads=num_threads, backend=backend, options=TIGHT
    )
    return solve(model, config)


def _assert_parity(results: dict) -> None:
    names = list(results)
    reference = results[names[0]]
    scale = max(1.0, reference.band[1])
    for name in names[1:]:
        other = results[name]
        assert other.num_crossings == reference.num_crossings, (
            f"{name} found {other.num_crossings} crossings,"
            f" {names[0]} found {reference.num_crossings}"
        )
        if reference.num_crossings:
            np.testing.assert_allclose(
                np.sort(other.omegas),
                np.sort(reference.omegas),
                rtol=0.0,
                atol=PARITY_RTOL * scale,
                err_msg=f"{name} vs {names[0]}",
            )


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_backend_parity_property(seed, _force_pool_env):
    """All three backends return identical crossing sets (≤1e-12)."""
    model = random_macromodel(10, 2, seed=seed, sigma_target=1.06)
    results = {
        "serial": _crossings(model, backend="serial", num_threads=1),
        "thread": _crossings(model, backend="thread", num_threads=4),
        "process": _crossings(model, backend="process", num_threads=4),
    }
    assert results["process"].strategy == "process"
    _assert_parity(results)


@pytest.fixture(scope="module")
def _force_pool_env():
    # hypothesis forbids function-scoped fixtures; a module-scoped env
    # flip keeps every property example on the true pool path.
    import os

    old = os.environ.get(ENV_MIN_ORDER)
    os.environ[ENV_MIN_ORDER] = "1"
    yield
    if old is None:
        os.environ.pop(ENV_MIN_ORDER, None)
    else:
        os.environ[ENV_MIN_ORDER] = old


@pytest.mark.parametrize("seed", [3, 17])
def test_backend_parity_with_thread_fallback(seed, monkeypatch):
    """Small models: backend='process' silently rides the thread pool
    and must still match the serial sweep."""
    # Pin the threshold far above the model order: the module-scoped
    # force-pool fixture may still be active from the property test.
    monkeypatch.setenv(ENV_MIN_ORDER, "1000000")
    model = random_macromodel(8, 2, seed=seed, sigma_target=1.05)
    serial = _crossings(model, backend="serial", num_threads=1)
    process = _crossings(model, backend="process", num_threads=4)
    assert process.strategy == "queue"  # the documented fallback
    _assert_parity({"serial": serial, "process-fallback": process})


@pytest.mark.parametrize("seed", [5, 23])
def test_backend_parity_passive_model(seed, _force_pool_env):
    """Passive models: every backend certifies the empty crossing set."""
    model = random_macromodel(9, 2, seed=seed, sigma_target=0.92)
    for backend, threads in (("serial", 1), ("thread", 3), ("process", 3)):
        result = _crossings(model, backend=backend, num_threads=threads)
        assert result.is_passive_candidate, backend


class TestBackendResolution:
    def test_auto_backend_preserves_historical_behavior(self):
        assert RunConfig().resolved_strategy() == "bisection"
        assert RunConfig(num_threads=4).resolved_strategy() == "queue"

    def test_explicit_backends(self):
        assert RunConfig(backend="serial").resolved_strategy() == "bisection"
        assert RunConfig(backend="thread").resolved_strategy() == "queue"
        assert (
            RunConfig(backend="thread", num_threads=8).resolved_strategy()
            == "queue"
        )
        assert (
            RunConfig(backend="process", num_threads=4).resolved_strategy()
            == "process"
        )

    def test_serial_backend_requires_one_thread(self):
        with pytest.raises(ValueError, match="num_threads == 1"):
            resolve_strategy("auto", 4, backend="serial")

    def test_contradictory_strategy_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_strategy("bisection", 1, backend="process")
        with pytest.raises(ValueError, match="backend"):
            resolve_strategy("static", 4, backend="process")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RunConfig(backend="gpu")

    def test_process_strategy_any_backend_auto(self):
        spec = resolve_strategy("process", 4)
        assert spec.name == "process"
