"""Unit tests for the benchmark regression gate (benchmarks/compare.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_COMPARE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "compare.py"
)
_spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE_PATH)
compare = importlib.util.module_from_spec(_spec)
sys.modules["bench_compare"] = compare
_spec.loader.exec_module(compare)


def payload(**stage_seconds):
    return {
        "sweep": {"batched_seconds": stage_seconds.pop("sweep_batched", 0.1)},
        "stages": [
            {"name": name, "seconds": seconds}
            for name, seconds in stage_seconds.items()
        ],
    }


class TestComparePayloads:
    def test_identical_runs_pass(self):
        base = payload(characterization=0.4, enforcement=0.8)
        diffs, missing = compare.compare_payloads(base, base)
        assert not missing
        assert not any(diff.regressed for diff in diffs)

    def test_injected_regression_detected(self):
        base = payload(characterization=0.4)
        # 30% slower than baseline: beyond the 25% gate.
        cur = payload(characterization=0.52)
        diffs, _ = compare.compare_payloads(base, cur)
        (diff,) = [d for d in diffs if d.name == "characterization"]
        assert diff.regressed
        assert diff.ratio == pytest.approx(1.3)

    def test_slowdown_within_threshold_passes(self):
        base = payload(characterization=0.4)
        cur = payload(characterization=0.48)  # +20%
        diffs, _ = compare.compare_payloads(base, cur)
        assert not any(diff.regressed for diff in diffs)

    def test_noise_floor_exempts_dust_stages(self):
        base = payload(tiny=0.001)
        cur = payload(tiny=0.004)  # 4x slower but microscopic
        diffs, _ = compare.compare_payloads(base, cur)
        (diff,) = [d for d in diffs if d.name == "tiny"]
        assert not diff.eligible
        assert not diff.regressed

    def test_stage_growing_past_floor_is_eligible(self):
        base = payload(tiny=0.01)
        cur = payload(tiny=0.2)  # ballooned into relevance
        diffs, _ = compare.compare_payloads(base, cur)
        (diff,) = [d for d in diffs if d.name == "tiny"]
        assert diff.eligible and diff.regressed

    def test_missing_stage_reported(self):
        base = payload(characterization=0.4, batch_fleet=1.0)
        cur = payload(characterization=0.4)
        _, missing = compare.compare_payloads(base, cur)
        assert missing == ["batch_fleet"]

    def test_empty_baseline_rejected(self):
        with pytest.raises(ValueError, match="no comparable timings"):
            compare.compare_payloads({"stages": []}, payload(a=1.0))

    def test_custom_threshold(self):
        base = payload(characterization=0.4)
        cur = payload(characterization=0.48)  # +20%
        diffs, _ = compare.compare_payloads(base, cur, threshold=0.10)
        assert any(diff.regressed for diff in diffs)


class TestMain:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", payload(characterization=0.4))
        cur = self._write(tmp_path, "cur.json", payload(characterization=0.41))
        assert compare.main(["--baseline", base, "--current", cur]) == 0
        assert "no benchmark regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", payload(characterization=0.4))
        cur = self._write(tmp_path, "cur.json", payload(characterization=0.6))
        assert compare.main(["--baseline", base, "--current", cur]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "characterization" in captured.err

    def test_missing_stage_exits_two(self, tmp_path, capsys):
        base = self._write(
            tmp_path, "base.json", payload(characterization=0.4, gone=1.0)
        )
        cur = self._write(tmp_path, "cur.json", payload(characterization=0.4))
        assert compare.main(["--baseline", base, "--current", cur]) == 2
        assert "GONE" in capsys.readouterr().out

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        cur = self._write(tmp_path, "cur.json", payload(a=1.0))
        code = compare.main(
            ["--baseline", str(tmp_path / "nope.json"), "--current", cur]
        )
        assert code == 2

    def test_real_tracked_baseline_self_compares_clean(self, capsys):
        tracked = (
            Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
        )
        code = compare.main(
            ["--baseline", str(tracked), "--current", str(tracked)]
        )
        assert code == 0


class TestFleetGateSkip:
    def _fleet_payload(self, fleet_seconds, workers, **others):
        doc = payload(batch_fleet=fleet_seconds, **others)
        for stage in doc["stages"]:
            if stage["name"] == "batch_fleet":
                stage["extra"] = {"workers": workers}
        return doc

    def test_single_core_host_skips(self):
        current = self._fleet_payload(1.0, workers=4)
        reason = compare.fleet_gate_skip_reason(current, cpu_count=1)
        assert reason is not None and "core" in reason

    def test_one_worker_run_skips(self):
        current = self._fleet_payload(1.0, workers=1)
        reason = compare.fleet_gate_skip_reason(current, cpu_count=8)
        assert reason is not None and "workers: 1" in reason

    def test_parallel_run_on_multicore_gates_normally(self):
        current = self._fleet_payload(1.0, workers=4)
        assert compare.fleet_gate_skip_reason(current, cpu_count=8) is None

    def test_stage_without_extra_gates_normally(self):
        current = payload(batch_fleet=1.0)
        assert compare.fleet_gate_skip_reason(current, cpu_count=8) is None

    def test_main_skips_fleet_regression_from_one_worker_run(
        self, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(
            json.dumps(self._fleet_payload(1.0, workers=4, characterization=0.4))
        )
        # 3x slower fleet stage, but the run had a one-worker pool: the
        # stage is reported as SKIP (with the reason) and does not fail
        # the gate; other stages still gate normally.
        cur.write_text(
            json.dumps(self._fleet_payload(3.0, workers=1, characterization=0.4))
        )
        code = compare.main(["--baseline", str(base), "--current", str(cur)])
        out = capsys.readouterr().out
        assert "SKIP" in out and "batch_fleet" in out
        assert code == 0

    def test_main_still_fails_on_other_regressions_when_fleet_skipped(
        self, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(
            json.dumps(self._fleet_payload(1.0, workers=4, characterization=0.4))
        )
        cur.write_text(
            json.dumps(self._fleet_payload(3.0, workers=1, characterization=0.8))
        )
        code = compare.main(["--baseline", str(base), "--current", str(cur)])
        assert code == 1
        assert "characterization" in capsys.readouterr().err


def multicore_payload(cpu_count=4, **speedups):
    """A schema/2 multicore payload whose stages carry min_speedup 1.0."""
    return {
        "schema": "repro-bench-pipeline/2",
        "tier": "multicore",
        "cpu_count": cpu_count,
        "stages": [
            {
                "name": name,
                "seconds": 1.0,
                "extra": {"speedup": speedup, "min_speedup": 1.0, "workers": 2},
            }
            for name, speedup in speedups.items()
        ],
    }


class TestTierAwareness:
    def test_schemaless_payload_is_serial_tier(self):
        assert compare.payload_tier(payload(a=1.0)) == "serial"

    def test_schema2_tier_and_cores_read_back(self):
        doc = multicore_payload(cpu_count=8, batch_fleet=1.5)
        assert compare.payload_tier(doc) == "multicore"
        assert compare.payload_cpu_count(doc) == 8

    def test_floors_extracted_only_when_declared(self):
        doc = multicore_payload(batch_fleet=1.5, queue_drain=2.0)
        doc["stages"].append(
            {
                "name": "eigensweep_process",
                "seconds": 1.0,
                "extra": {"speedup": 0.7, "min_speedup": None},
            }
        )
        checks = {c.name: c for c in compare.speedup_floors(doc)}
        assert set(checks) == {"batch_fleet", "queue_drain"}
        assert not checks["batch_fleet"].failed

    def test_floor_is_strict(self):
        (check,) = compare.speedup_floors(multicore_payload(batch_fleet=1.0))
        assert check.failed  # exactly the floor is a tie, not a win

    def test_floor_skip_reason_on_single_core(self):
        doc = multicore_payload(cpu_count=1, batch_fleet=0.9)
        reason = compare.floor_skip_reason(doc)
        assert reason is not None and "core" in reason

    def test_stamped_core_count_beats_host(self):
        # The payload says 4 cores: floors gate even if this host has 1.
        doc = multicore_payload(cpu_count=4, batch_fleet=1.5)
        assert compare.floor_skip_reason(doc) is None

    def test_main_multicore_passing_floors_exits_zero(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(payload(characterization=0.4)))
        cur.write_text(
            json.dumps(multicore_payload(batch_fleet=1.8, queue_drain=1.6))
        )
        code = compare.main(["--baseline", str(base), "--current", str(cur)])
        out = capsys.readouterr().out
        assert code == 0
        assert "tier 'serial'" in out and "tier 'multicore'" in out

    def test_main_missed_floor_exits_one(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(payload(characterization=0.4)))
        cur.write_text(
            json.dumps(multicore_payload(batch_fleet=0.9, queue_drain=1.6))
        )
        code = compare.main(["--baseline", str(base), "--current", str(cur)])
        captured = capsys.readouterr()
        assert code == 1
        assert "batch_fleet" in captured.err
        assert "floor" in captured.err

    def test_main_zero_comparable_stages_exits_two(self, tmp_path, capsys):
        # Tier mismatch and no floors anywhere: the gate inspected
        # nothing and must say so loudly instead of passing.
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(payload(characterization=0.4)))
        doc = multicore_payload()
        doc["stages"] = [{"name": "x", "seconds": 1.0, "extra": {}}]
        cur.write_text(json.dumps(doc))
        code = compare.main(["--baseline", str(base), "--current", str(cur)])
        assert code == 2
        assert "zero comparable stages" in capsys.readouterr().err

    def test_main_single_core_multicore_run_exits_two(self, tmp_path, capsys):
        # All floors skipped on a 1-core run leaves nothing gated —
        # same loud refusal (CI skips the job before this point).
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(payload(characterization=0.4)))
        cur.write_text(
            json.dumps(multicore_payload(cpu_count=1, batch_fleet=0.9))
        )
        code = compare.main(["--baseline", str(base), "--current", str(cur)])
        captured = capsys.readouterr()
        assert code == 2
        assert "SKIP" in captured.out

    def test_main_same_tier_multicore_payloads_compare_timings(
        self, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        doc = multicore_payload(batch_fleet=1.8)
        base.write_text(json.dumps(doc))
        cur.write_text(json.dumps(doc))
        code = compare.main(["--baseline", str(base), "--current", str(cur)])
        out = capsys.readouterr().out
        assert code == 0
        assert "NOTE" not in out  # same tier: timings gate normally
