"""Histogram math and MetricsRegistry semantics (repro.obs.metrics)."""

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)


class TestHistogramBucketing:
    def test_observations_land_in_owning_bucket(self):
        hist = Histogram(buckets=(0.1, 1.0, 10.0))
        hist.observe(0.05)  # <= 0.1
        hist.observe(0.5)  # <= 1.0
        hist.observe(5.0)  # <= 10.0
        hist.observe(50.0)  # overflow
        doc = hist.to_dict()
        assert doc["count"] == 4
        # Exported buckets are cumulative (Prometheus `le` semantics).
        assert [b["count"] for b in doc["buckets"]] == [1, 2, 3, 4]
        assert doc["buckets"][-1]["le"] == "+Inf"

    def test_boundary_value_belongs_to_lower_bucket(self):
        # Prometheus `le` semantics: upper bounds are inclusive.
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert [b["count"] for b in hist.to_dict()["buckets"]] == [1, 1, 1]

    def test_exact_count_sum_min_max(self):
        hist = Histogram(buckets=(1.0,))
        for value in (0.25, 0.5, 4.0):
            hist.observe(value)
        doc = hist.to_dict()
        assert doc["count"] == 3
        assert doc["sum"] == pytest.approx(4.75)
        assert doc["min"] == pytest.approx(0.25)
        assert doc["max"] == pytest.approx(4.0)

    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert all(edge > 0 for edge in DEFAULT_LATENCY_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.5))

    def test_merge_adds_counts_and_extremes(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        doc = a.to_dict()
        assert doc["count"] == 3
        assert doc["min"] == pytest.approx(0.5)
        assert doc["max"] == pytest.approx(9.0)
        assert [b["count"] for b in doc["buckets"]] == [1, 2, 3]

    def test_merge_rejects_mismatched_edges(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        hist = Histogram()
        assert hist.quantile(0.5) is None
        assert hist.summary()["p50"] is None

    def test_single_observation_reports_itself_everywhere(self):
        # The interpolation is clamped to [min, max], so one sample is
        # the answer at every quantile — not some bucket midpoint.
        hist = Histogram()
        hist.observe(0.0421)
        for q in (0.5, 0.9, 0.99):
            assert hist.quantile(q) == pytest.approx(0.0421)

    def test_quantiles_are_monotone_in_q(self):
        hist = Histogram()
        for i in range(1, 200):
            hist.observe(i / 1000.0)
        p50, p90, p99 = (hist.quantile(q) for q in (0.5, 0.9, 0.99))
        assert p50 <= p90 <= p99

    def test_uniform_spread_lands_near_true_quantile(self):
        # 1..1000 ms uniform: p50 ~ 0.5s, p90 ~ 0.9s, within one
        # bucket's width of the truth (that is all a fixed-bucket
        # histogram promises).
        hist = Histogram()
        for i in range(1, 1001):
            hist.observe(i / 1000.0)
        assert hist.quantile(0.5) == pytest.approx(0.5, abs=0.35)
        assert hist.quantile(0.9) == pytest.approx(0.9, abs=0.35)

    def test_quantile_clamped_to_observed_extremes(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(2.0)
        hist.observe(3.0)
        assert hist.quantile(0.99) <= 3.0
        assert hist.quantile(0.01) >= 2.0

    def test_bad_q_rejected(self):
        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.count("jobs")
        reg.count("jobs", 4)
        reg.gauge("depth", 7.0)
        snap = reg.snapshot()
        assert snap["counters"]["jobs"] == 5
        assert snap["gauges"]["depth"] == 7.0

    def test_timer_records_into_named_histogram(self):
        reg = MetricsRegistry()
        with reg.timer("stage.check"):
            pass
        summary = reg.snapshot()["timings"]["stage.check"]
        assert summary["count"] == 1
        assert summary["p50"] is not None

    def test_time_call_returns_value(self):
        reg = MetricsRegistry()
        assert reg.time_call("f", lambda: 42) == 42
        assert reg.snapshot()["timings"]["f"]["count"] == 1

    def test_merge_snapshot_folds_counters(self):
        reg = MetricsRegistry()
        reg.count("a", 2)
        other = MetricsRegistry()
        other.count("a", 3)
        other.gauge("g", 1.0)
        reg.merge_snapshot(other.snapshot())
        assert reg.counter_value("a") == 5
        assert reg.snapshot()["gauges"]["g"] == 1.0

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.count("n")
        reg.observe("lat", 0.01)
        json.dumps(reg.snapshot())
        json.dumps(reg.to_dict())

    def test_render_text_exposition(self):
        reg = MetricsRegistry()
        reg.count("queue.jobs_claimed", 3)
        reg.observe("worker.job", 0.02)
        text = reg.render_text(prefix="repro")
        assert "repro_queue_jobs_claimed_total 3" in text
        assert "repro_worker_job_seconds_count 1" in text
        assert text.endswith("\n")

    def test_thread_safety_under_contention(self):
        # 8 threads x 1000 increments + observations must neither lose
        # updates nor corrupt bucket totals.
        reg = MetricsRegistry()
        threads_n, iterations = 8, 1000

        def hammer(index):
            for i in range(iterations):
                reg.count("hits")
                reg.observe("lat", (index + 1) * 1e-4)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits") == threads_n * iterations
        doc = reg.to_dict()["timings"]["lat"]
        assert doc["count"] == threads_n * iterations
        # The +Inf cumulative bucket must equal the exact count — no
        # lost or double-counted observation under contention.
        assert doc["buckets"][-1]["count"] == threads_n * iterations

    def test_process_registry_reset(self):
        reset_registry()
        get_registry().count("x")
        assert get_registry().counter_value("x") == 1
        reset_registry()
        assert get_registry().counter_value("x") == 0


class TestProfiler:
    def test_profile_call_returns_result_and_report(self):
        from repro.obs.profiler import profile_call

        result, report = profile_call(sorted, range(500, 0, -1), top_n=5)
        assert result[0] == 1
        assert report["sort"] == "cumtime"
        assert 0 < len(report["top"]) <= 5
        for row in report["top"]:
            assert {"function", "file", "line", "ncalls"} <= set(row)
        json.dumps(report)

    def test_bad_sort_rejected(self):
        from repro.obs.profiler import profile_call

        with pytest.raises(ValueError):
            profile_call(sorted, [1], sort="nonsense")
