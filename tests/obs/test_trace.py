"""Unit tests for the span tracer (:mod:`repro.obs.trace`)."""

import json
import time

import pytest

from repro.core.config import ConfigError
from repro.obs import trace
from repro.queue import JobQueue


def _activate(**kwargs):
    ctx = trace.TraceContext(
        trace_id=trace.new_trace_id(), span_id="root", job_id="job-1"
    )
    return ctx, trace.activate(ctx, job_id="job-1", **kwargs)


class TestIds:
    def test_trace_ids_are_32_hex_and_unique(self):
        ids = {trace.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 and int(i, 16) >= 0 for i in ids)

    def test_span_ids_are_unique(self):
        ids = {trace.new_span_id() for _ in range(256)}
        assert len(ids) == 256

    def test_ensure_trace_id_keeps_valid_client_values(self):
        assert trace.ensure_trace_id("client-trace-01") == "client-trace-01"

    @pytest.mark.parametrize(
        "bad",
        [None, "", "short", "has spaces here", "x" * 65, "bad\nnewline!"],
    )
    def test_ensure_trace_id_mints_on_invalid(self, bad):
        minted = trace.ensure_trace_id(bad)
        assert minted != bad
        assert len(minted) == 32


class TestSpans:
    def test_nested_spans_share_trace_and_chain_parents(self):
        ctx, activation = _activate()
        with activation as sink:
            with trace.span("outer") as outer:
                with trace.span("inner", depth=2) as inner:
                    assert inner.context.trace_id == ctx.trace_id
        by_name = {s["name"]: s for s in sink}
        assert by_name["outer"]["parent_id"] == "root"
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["attributes"]["depth"] == 2
        assert all(s["trace_id"] == ctx.trace_id for s in sink)
        # Children close before parents, and fit inside them.
        assert by_name["inner"]["duration"] <= by_name["outer"]["duration"]

    def test_span_records_error_status_and_reraises(self):
        _, activation = _activate()
        with activation as sink:
            with pytest.raises(ValueError):
                with trace.span("doomed"):
                    raise ValueError("boom")
        (recorded,) = sink
        assert recorded["status"] == "error"
        assert "boom" in recorded["attributes"]["error"]

    def test_backdated_start_extends_duration(self):
        _, activation = _activate()
        with activation as sink:
            with trace.span("claimed", start=time.time() - 0.5):
                pass
        (recorded,) = sink
        assert recorded["duration"] >= 0.5

    def test_record_span_attaches_premeasured_child(self):
        _, activation = _activate()
        with activation as sink:
            with trace.span("parent"):
                trace.record_span(
                    "measured",
                    start=time.time() - 0.01,
                    duration=0.01,
                    attributes={"shard": 3},
                )
        by_name = {s["name"]: s for s in sink}
        assert by_name["measured"]["parent_id"] == by_name["parent"]["span_id"]
        assert by_name["measured"]["attributes"]["shard"] == 3

    def test_record_fault_annotates_innermost_span(self):
        _, activation = _activate()
        with activation as sink:
            with trace.span("op"):
                trace.record_fault("store.write", "io_error")
        (recorded,) = sink
        assert recorded["attributes"]["faults"] == [
            {"point": "store.write", "kind": "io_error"}
        ]

    def test_current_ids_inside_and_outside(self):
        assert trace.current_ids() == (None, None, None)
        ctx, activation = _activate()
        with activation:
            with trace.span("op"):
                trace_id, span_id, job_id = trace.current_ids()
                assert trace_id == ctx.trace_id
                assert span_id is not None
                assert job_id == "job-1"
        assert trace.current_ids() == (None, None, None)


class TestInactive:
    def test_span_is_noop_without_activation(self):
        with trace.span("orphan") as handle:
            handle.annotate("k", "v")
            handle.add_fault("p", "error")
        assert handle.context is None

    def test_record_span_and_fault_are_noops_without_activation(self):
        trace.record_span("orphan", start=time.time(), duration=0.0)
        trace.record_fault("p", "error")  # must not raise

    def test_activate_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_TRACE, "off")
        ctx = trace.TraceContext(trace_id="t" * 32, span_id="root")
        with trace.activate(ctx) as sink:
            with trace.span("op") as handle:
                pass
        assert handle.context is None
        assert sink == []


class TestEnvParsing:
    @pytest.mark.parametrize("raw", ["on", "1", "true", "yes"])
    def test_trace_enabled_values(self, monkeypatch, raw):
        monkeypatch.setenv(trace.ENV_TRACE, raw)
        assert trace.tracing_enabled() is True

    @pytest.mark.parametrize("raw", ["off", "0", "false", "no"])
    def test_trace_disabled_values(self, monkeypatch, raw):
        monkeypatch.setenv(trace.ENV_TRACE, raw)
        assert trace.tracing_enabled() is False

    def test_trace_malformed_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_TRACE, "maybe")
        with pytest.raises(ConfigError, match="REPRO_TRACE"):
            trace.tracing_enabled()

    def test_ring_default_and_override(self, monkeypatch):
        monkeypatch.delenv(trace.ENV_TRACE_RING, raising=False)
        assert trace.ring_from_env() == trace.DEFAULT_TRACE_RING
        monkeypatch.setenv(trace.ENV_TRACE_RING, "7")
        assert trace.ring_from_env() == 7

    @pytest.mark.parametrize("raw", ["0", "-3", "many", "2.5"])
    def test_ring_malformed_raises_naming_the_variable(
        self, monkeypatch, raw
    ):
        monkeypatch.setenv(trace.ENV_TRACE_RING, raw)
        with pytest.raises(ConfigError, match="REPRO_TRACE_RING"):
            trace.ring_from_env()


class TestTreeAndWaterfall:
    def _sample_spans(self):
        ctx, activation = _activate()
        with activation as sink:
            with trace.span("attempt"):
                with trace.span("stage.a"):
                    time.sleep(0.002)
                with trace.span("stage.b"):
                    time.sleep(0.002)
        sink.append(
            trace.synthetic_span(
                trace_id=ctx.trace_id,
                span_id="root",
                parent_id=None,
                name="job",
                start=time.time() - 1.0,
                duration=1.0,
            )
        )
        return sink

    def test_build_tree_is_single_connected_tree(self):
        spans = self._sample_spans()
        tree = trace.build_tree(spans)
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "job"
        (attempt,) = root["children"]
        assert [c["name"] for c in attempt["children"]] == [
            "stage.a",
            "stage.b",
        ]

    def test_waterfall_lists_every_span_with_percentages(self):
        spans = self._sample_spans()
        out = trace.render_waterfall(spans, width=20)
        for name in ("job", "attempt", "stage.a", "stage.b"):
            assert name in out
        assert "100.0%" in out
        # Deeper spans are indented further than their parents.
        lines = out.splitlines()
        job_line = next(l for l in lines if l.lstrip().startswith("job"))
        stage_line = next(
            l for l in lines if l.lstrip().startswith("stage.a")
        )
        indent = lambda l: len(l) - len(l.lstrip())  # noqa: E731
        assert indent(stage_line) > indent(job_line)

    def test_spans_serialize_to_json(self):
        spans = self._sample_spans()
        decoded = json.loads(trace.spans_to_json(spans))
        assert len(decoded) == len(spans)


class TestDurableRing:
    def test_record_and_fetch_spans(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite3")
        try:
            ctx, activation = _activate()
            with activation as sink:
                with trace.span("op"):
                    pass
            queue.record_spans(sink, job_id="job-1")
            spans = queue.trace_spans(job_id="job-1")
            assert [s["name"] for s in spans] == ["op"]
            # Also reachable by trace id alone.
            assert queue.trace_spans(trace_id=ctx.trace_id) == spans
        finally:
            queue.close()

    def test_trace_spans_requires_a_filter(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite3")
        try:
            with pytest.raises(ValueError):
                queue.trace_spans()
        finally:
            queue.close()

    def test_rewritten_spans_replace_not_duplicate(self, tmp_path):
        queue = JobQueue(tmp_path / "q.sqlite3")
        try:
            span = trace.synthetic_span(
                trace_id="t" * 32,
                span_id="s1",
                parent_id=None,
                name="job",
                start=1.0,
                duration=1.0,
            )
            queue.record_spans([span], job_id="j")
            queue.record_spans([dict(span, duration=2.0)], job_id="j")
            (only,) = queue.trace_spans(job_id="j")
            assert only["duration"] == 2.0
        finally:
            queue.close()

    def test_ring_bounds_retained_traces(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace.ENV_TRACE_RING, "3")
        queue = JobQueue(tmp_path / "q.sqlite3")
        try:
            for i in range(6):
                tid = f"trace-{i:04d}-padding"
                queue.record_spans(
                    [
                        trace.synthetic_span(
                            trace_id=tid,
                            span_id=f"s{i}",
                            parent_id=None,
                            name="job",
                            start=float(i),
                            duration=0.1,
                        )
                    ],
                    job_id=f"job-{i}",
                )
            # The oldest traces were evicted; the newest three survive.
            assert queue.trace_spans(trace_id="trace-0000-padding") == []
            assert queue.trace_spans(trace_id="trace-0002-padding") == []
            for i in (3, 4, 5):
                assert queue.trace_spans(trace_id=f"trace-{i:04d}-padding")
        finally:
            queue.close()
