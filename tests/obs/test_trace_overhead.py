"""Tracer overhead guard: instrumentation is on by default, so the
traced eigensweep stage must stay within 3% of the untraced timing.

Reuses the seeded ``repro.obs.benchstage`` eigensweep (the paper's
Hamiltonian characterization) — the same deterministic workload
``repro bench`` times.  Interleaved best-of-N minima damp scheduler
noise; one retry absorbs a pathological CI hiccup before failing.
"""

from repro.obs import trace
from repro.obs.benchstage import run_bench_stages

#: Relative overhead budget for a fully traced eigensweep.
BUDGET = 1.03
ROUNDS = 3


def _stage_seconds():
    (record,) = run_bench_stages(["eigensweep"], scale=0.05, threads=2)
    return record["seconds"]


def _traced_seconds():
    ctx = trace.TraceContext(
        trace_id=trace.new_trace_id(), span_id="bench-root"
    )
    with trace.activate(ctx) as sink:
        seconds = _stage_seconds()
    assert sink, "tracing was active, yet the eigensweep emitted no spans"
    return seconds


def test_traced_eigensweep_within_three_percent():
    _stage_seconds()  # warm caches/imports outside the measurement
    ratio = None
    for _ in range(2):
        plain, traced = [], []
        for _ in range(ROUNDS):  # interleave to share machine noise
            plain.append(_stage_seconds())
            traced.append(_traced_seconds())
        ratio = min(traced) / min(plain)
        if ratio <= BUDGET:
            break
    assert ratio <= BUDGET, (
        f"tracing overhead {100 * (ratio - 1):.1f}% exceeds the"
        f" {100 * (BUDGET - 1):.0f}% budget"
        f" (plain={min(plain):.4f}s traced={min(traced):.4f}s)"
    )
