"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import validation as v


class TestEnsureMatrix:
    def test_accepts_2d(self):
        out = v.ensure_matrix([[1.0, 2.0], [3.0, 4.0]], "m")
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            v.ensure_matrix([1.0, 2.0], "m")

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            v.ensure_matrix(np.zeros((2, 2, 2)), "m")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            v.ensure_matrix([[np.nan, 0.0], [0.0, 0.0]], "m")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            v.ensure_matrix([[np.inf, 0.0], [0.0, 0.0]], "m")

    def test_dtype_coercion(self):
        out = v.ensure_matrix([[1, 2], [3, 4]], "m", dtype=complex)
        assert out.dtype == complex

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="myarg"):
            v.ensure_matrix([1.0], "myarg")


class TestEnsureVector:
    def test_accepts_1d(self):
        out = v.ensure_vector([1.0, 2.0], "x")
        assert out.shape == (2,)

    def test_scalar_promoted(self):
        out = v.ensure_vector(3.0, "x")
        assert out.shape == (1,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            v.ensure_vector(np.zeros((2, 2)), "x")

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError, match="empty"):
            v.ensure_vector([], "x")

    def test_allows_empty_when_requested(self):
        out = v.ensure_vector([], "x", allow_empty=True)
        assert out.size == 0

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            v.ensure_vector([np.nan], "x")


class TestEnsureSquare:
    def test_accepts_square(self):
        assert v.ensure_square(np.eye(3), "m").shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            v.ensure_square(np.zeros((2, 3)), "m")


class TestEnsureReal:
    def test_real_passthrough(self):
        out = v.ensure_real(np.array([1.0, 2.0]), "x")
        assert not np.iscomplexobj(out)

    def test_complex_with_zero_imag_ok(self):
        out = v.ensure_real(np.array([1.0 + 0j]), "x")
        assert not np.iscomplexobj(out)

    def test_complex_with_nonzero_imag_rejected(self):
        with pytest.raises(ValueError, match="real"):
            v.ensure_real(np.array([1.0 + 1e-3j]), "x")


class TestScalarValidators:
    def test_positive_int_accepts(self):
        assert v.ensure_positive_int(5, "n") == 5

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            v.ensure_positive_int(0, "n")

    def test_positive_int_rejects_negative(self):
        with pytest.raises(ValueError):
            v.ensure_positive_int(-1, "n")

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            v.ensure_positive_int(1.5, "n")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            v.ensure_positive_int(True, "n")

    def test_nonnegative_int_accepts_zero(self):
        assert v.ensure_nonnegative_int(0, "n") == 0

    def test_nonnegative_int_rejects_negative(self):
        with pytest.raises(ValueError):
            v.ensure_nonnegative_int(-2, "n")

    def test_positive_float_accepts(self):
        assert v.ensure_positive_float(0.5, "x") == 0.5

    def test_positive_float_rejects_zero(self):
        with pytest.raises(ValueError):
            v.ensure_positive_float(0.0, "x")

    def test_positive_float_rejects_inf(self):
        with pytest.raises(ValueError):
            v.ensure_positive_float(float("inf"), "x")

    def test_positive_float_rejects_string(self):
        with pytest.raises(TypeError):
            v.ensure_positive_float("1.0", "x")

    def test_nonnegative_float_accepts_zero(self):
        assert v.ensure_nonnegative_float(0.0, "x") == 0.0

    def test_probability_bounds(self):
        assert v.ensure_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            v.ensure_probability(1.1, "p")

    def test_in_range(self):
        assert v.ensure_in_range(0.5, "x", 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            v.ensure_in_range(2.0, "x", 0.0, 1.0)
        with pytest.raises(ValueError):
            v.ensure_in_range(-0.1, "x", 0.0, 1.0)


class TestSortedFrequencies:
    def test_accepts_increasing(self):
        out = v.ensure_sorted_frequencies([0.0, 1.0, 2.0])
        assert out.size == 3

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError, match="increasing"):
            v.ensure_sorted_frequencies([1.0, 0.5])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="increasing"):
            v.ensure_sorted_frequencies([1.0, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            v.ensure_sorted_frequencies([-1.0, 0.0])

    def test_single_point_ok(self):
        assert v.ensure_sorted_frequencies([2.0]).size == 1
