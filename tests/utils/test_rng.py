"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RandomStream, as_generator


class TestAsGenerator:
    def test_from_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_from_int_reproducible(self):
        a = as_generator(42).standard_normal(4)
        b = as_generator(42).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_from_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_random_stream(self):
        stream = RandomStream(7)
        assert as_generator(stream) is stream.generator


class TestRandomStream:
    def test_reproducible_with_seed(self):
        a = RandomStream(1).real_vector(8)
        b = RandomStream(1).real_vector(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStream(1).real_vector(8)
        b = RandomStream(2).real_vector(8)
        assert not np.allclose(a, b)

    def test_complex_vector_unit_norm(self):
        v = RandomStream(3).complex_vector(16)
        assert v.dtype == complex
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_real_vector_unit_norm(self):
        v = RandomStream(3).real_vector(16)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_keyed_spawn_is_order_independent(self):
        root = RandomStream(5)
        # Consume some randomness before spawning.
        root.real_vector(4)
        child_late = root.spawn(key=17).real_vector(8)
        child_early = RandomStream(5).spawn(key=17).real_vector(8)
        np.testing.assert_array_equal(child_late, child_early)

    def test_keyed_spawns_differ_by_key(self):
        root = RandomStream(5)
        a = root.spawn(key=1).real_vector(8)
        b = root.spawn(key=2).real_vector(8)
        assert not np.allclose(a, b)

    def test_unkeyed_spawn_differs_from_parent(self):
        root = RandomStream(5)
        child = root.spawn()
        assert not np.allclose(root.real_vector(8), child.real_vector(8))

    def test_spawn_does_not_disturb_parent_stream(self):
        a = RandomStream(9)
        b = RandomStream(9)
        a.spawn(key=3)  # keyed spawn must not consume parent entropy
        np.testing.assert_array_equal(a.real_vector(8), b.real_vector(8))
