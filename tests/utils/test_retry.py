"""retry_call / RetryPolicy: bounded attempts, jittered backoff, deadlines."""

import random

import pytest

from repro.utils.retry import RetryPolicy, retry_call


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, exc=OSError("boom"), value="done"):
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return self.value


def _no_sleep(_seconds):
    pass


class TestRetryCall:
    def test_first_try_success_never_sleeps(self):
        sleeps = []
        assert (
            retry_call(lambda: 42, sleep=sleeps.append) == 42
        )
        assert sleeps == []

    def test_retries_until_success(self):
        flaky = Flaky(failures=3)
        policy = RetryPolicy(max_attempts=5, base_seconds=0.001)
        assert retry_call(flaky, policy=policy, sleep=_no_sleep) == "done"
        assert flaky.calls == 4

    def test_exhausted_attempts_reraise_the_last_error(self):
        flaky = Flaky(failures=100)
        policy = RetryPolicy(max_attempts=3, base_seconds=0.001)
        with pytest.raises(OSError, match="boom"):
            retry_call(flaky, policy=policy, sleep=_no_sleep)
        assert flaky.calls == 3

    def test_non_matching_exception_not_retried(self):
        flaky = Flaky(failures=100, exc=KeyError("nope"))
        with pytest.raises(KeyError):
            retry_call(
                flaky,
                policy=RetryPolicy(max_attempts=5, base_seconds=0.001),
                retry_on=OSError,
                sleep=_no_sleep,
            )
        assert flaky.calls == 1

    def test_predicate_retry_on(self):
        flaky = Flaky(failures=2, exc=OSError("transient"))
        result = retry_call(
            flaky,
            policy=RetryPolicy(max_attempts=5, base_seconds=0.001),
            retry_on=lambda exc: "transient" in str(exc),
            sleep=_no_sleep,
        )
        assert result == "done"

    def test_on_retry_callback_sees_each_attempt(self):
        seen = []
        flaky = Flaky(failures=2)
        retry_call(
            flaky,
            policy=RetryPolicy(max_attempts=5, base_seconds=0.001),
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
            sleep=_no_sleep,
        )
        assert [attempt for attempt, _ in seen] == [0, 1]

    def test_deadline_gives_up_instead_of_oversleeping(self):
        # With a tiny deadline and a full-jitter draw that always takes
        # the ceiling, the first backoff sleep would blow the budget —
        # so the error surfaces immediately instead.
        class MaxJitter:
            @staticmethod
            def uniform(low, high):
                return high

        flaky = Flaky(failures=100)
        policy = RetryPolicy(
            max_attempts=50, base_seconds=10.0, deadline_seconds=1e-6
        )
        slept = []
        with pytest.raises(OSError):
            retry_call(
                flaky, policy=policy, rng=MaxJitter(), sleep=slept.append
            )
        assert flaky.calls == 1
        assert slept == []

    def test_args_and_kwargs_forwarded(self):
        assert (
            retry_call(lambda a, b=0: a + b, 2, b=3, sleep=_no_sleep) == 5
        )


class TestRetryPolicy:
    def test_backoff_is_bounded_and_jittered(self):
        policy = RetryPolicy(
            max_attempts=10, base_seconds=0.01, cap_seconds=0.05
        )
        rng = random.Random(0)
        for attempt in range(10):
            delay = policy.sleep_for(attempt, rng)
            assert 0.0 <= delay <= 0.05

    def test_backoff_grows_with_attempts_on_average(self):
        policy = RetryPolicy(
            max_attempts=10, base_seconds=0.01, cap_seconds=10.0
        )
        rng = random.Random(1)
        early = sum(policy.sleep_for(0, rng) for _ in range(200)) / 200
        late = sum(policy.sleep_for(5, rng) for _ in range(200)) / 200
        assert late > early

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_seconds": -1.0},
            {"cap_seconds": -1.0},
            {"deadline_seconds": -0.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
