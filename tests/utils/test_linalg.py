"""Unit and property tests for repro.utils.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import linalg as la


class TestBlkdiag:
    def test_basic(self):
        out = la.blkdiag([np.eye(2), 3.0 * np.eye(1)])
        expected = np.diag([1.0, 1.0, 3.0])
        np.testing.assert_array_equal(out, expected)

    def test_empty(self):
        assert la.blkdiag([]).shape == (0, 0)

    def test_rectangular_blocks(self):
        out = la.blkdiag([np.ones((1, 2)), np.ones((2, 1))])
        assert out.shape == (3, 3)
        assert out[0, 2] == 0.0

    def test_dtype_promotion(self):
        out = la.blkdiag([np.eye(1), 1j * np.eye(1)])
        assert out.dtype == complex


class TestSolveShiftedDiagonal:
    def test_vector_rhs(self):
        d = np.array([-1.0, -2.0, -3.0])
        shift = 0.5 + 0.7j
        rhs = np.array([1.0, 2.0, 3.0], dtype=complex)
        x = la.solve_shifted_diagonal(d, shift, rhs)
        np.testing.assert_allclose((d - shift) * x, rhs)

    def test_matrix_rhs(self):
        d = np.array([-1.0, -2.0])
        shift = 1j
        rhs = np.ones((2, 3), dtype=complex)
        x = la.solve_shifted_diagonal(d, shift, rhs)
        np.testing.assert_allclose((d - shift)[:, None] * x, rhs)

    def test_singular_shift_raises(self):
        with pytest.raises(ZeroDivisionError):
            la.solve_shifted_diagonal(np.array([-1.0]), -1.0, np.array([1.0]))


class TestSolveShiftedDiagonalMany:
    def test_matches_per_shift_vector_rhs(self, rng):
        d = -rng.uniform(0.5, 3.0, 6)
        shifts = 0.1 + 1j * np.linspace(0.5, 4.0, 5)
        rhs = rng.standard_normal(6)
        batch = la.solve_shifted_diagonal_many(d, shifts, rhs)
        for k, shift in enumerate(shifts):
            np.testing.assert_allclose(
                batch[k], la.solve_shifted_diagonal(d, shift, rhs), atol=1e-14
            )

    def test_matches_per_shift_matrix_rhs(self, rng):
        d = -rng.uniform(0.5, 3.0, 4)
        shifts = 1j * np.linspace(0.2, 2.0, 3)
        rhs = rng.standard_normal((4, 2))
        batch = la.solve_shifted_diagonal_many(d, shifts, rhs)
        assert batch.shape == (3, 4, 2)
        for k, shift in enumerate(shifts):
            np.testing.assert_allclose(
                batch[k], la.solve_shifted_diagonal(d, shift, rhs), atol=1e-14
            )

    def test_singular_shift_raises(self):
        with pytest.raises(ZeroDivisionError):
            la.solve_shifted_diagonal_many(
                np.array([-1.0, -2.0]), np.array([1j, -1.0 + 0j]), np.ones(2)
            )


class TestRot2:
    def _dense_block(self, alpha, beta):
        return np.array([[alpha, beta], [-beta, alpha]])

    def test_apply_matches_dense(self, rng):
        alpha = rng.standard_normal(5)
        beta = rng.standard_normal(5)
        x = rng.standard_normal((5, 2))
        out = la.apply_rot2(alpha, beta, x)
        for i in range(5):
            np.testing.assert_allclose(
                out[i], self._dense_block(alpha[i], beta[i]) @ x[i]
            )

    def test_solve_matches_dense(self, rng):
        alpha = rng.standard_normal(4)
        beta = rng.standard_normal(4) + 2.0
        shift = 0.3 + 0.9j
        rhs = rng.standard_normal((4, 2)) + 1j * rng.standard_normal((4, 2))
        x = la.solve_shifted_rot2(alpha, beta, shift, rhs)
        for i in range(4):
            block = self._dense_block(alpha[i], beta[i]) - shift * np.eye(2)
            np.testing.assert_allclose(block @ x[i], rhs[i], atol=1e-12)

    def test_solve_matrix_rhs(self, rng):
        alpha = rng.standard_normal(3)
        beta = rng.standard_normal(3) + 1.5
        shift = 1.1j
        rhs = rng.standard_normal((3, 2, 4)) + 0j
        x = la.solve_shifted_rot2(alpha, beta, shift, rhs)
        for i in range(3):
            block = self._dense_block(alpha[i], beta[i]) - shift * np.eye(2)
            np.testing.assert_allclose(block @ x[i], rhs[i], atol=1e-12)

    def test_singular_shift_raises(self):
        # Block eigenvalues are alpha +/- j beta; shift exactly there.
        with pytest.raises(ZeroDivisionError):
            la.solve_shifted_rot2(
                np.array([-1.0]), np.array([2.0]), -1.0 + 2.0j, np.ones((1, 2))
            )


class TestSolveShiftedRot2Many:
    def test_matches_per_shift(self, rng):
        alpha = rng.standard_normal(4)
        beta = rng.standard_normal(4) + 2.0
        shifts = 0.2 + 1j * np.linspace(0.3, 3.0, 6)
        rhs = rng.standard_normal((4, 2)) + 1j * rng.standard_normal((4, 2))
        batch = la.solve_shifted_rot2_many(alpha, beta, shifts, rhs)
        assert batch.shape == (6, 4, 2)
        for k, shift in enumerate(shifts):
            np.testing.assert_allclose(
                batch[k], la.solve_shifted_rot2(alpha, beta, shift, rhs), atol=1e-13
            )

    def test_matches_per_shift_block_rhs(self, rng):
        alpha = rng.standard_normal(3)
        beta = rng.standard_normal(3) + 1.5
        shifts = 1j * np.linspace(0.1, 1.5, 4)
        rhs = rng.standard_normal((3, 2, 5)) + 0j
        batch = la.solve_shifted_rot2_many(alpha, beta, shifts, rhs)
        assert batch.shape == (4, 3, 2, 5)
        for k, shift in enumerate(shifts):
            np.testing.assert_allclose(
                batch[k], la.solve_shifted_rot2(alpha, beta, shift, rhs), atol=1e-13
            )

    def test_singular_shift_raises(self):
        with pytest.raises(ZeroDivisionError):
            la.solve_shifted_rot2_many(
                np.array([-1.0]),
                np.array([2.0]),
                np.array([1j, -1.0 + 2.0j]),
                np.ones((1, 2)),
            )


class TestOrthonormalizeAgainst:
    def test_empty_basis(self, rng):
        v = rng.standard_normal(6) + 0j
        coeffs, norm, q = la.orthonormalize_against(np.zeros((6, 0), complex), v)
        assert coeffs.size == 0
        assert norm == pytest.approx(np.linalg.norm(v))
        np.testing.assert_allclose(np.linalg.norm(q), 1.0)

    def test_orthogonality(self, rng):
        basis, _ = np.linalg.qr(
            rng.standard_normal((8, 3)) + 1j * rng.standard_normal((8, 3))
        )
        v = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        coeffs, norm, q = la.orthonormalize_against(basis, v)
        np.testing.assert_allclose(basis.conj().T @ q, 0.0, atol=1e-12)

    def test_reconstruction(self, rng):
        basis, _ = np.linalg.qr(rng.standard_normal((8, 3)) + 0j)
        v = rng.standard_normal(8) + 0j
        coeffs, norm, q = la.orthonormalize_against(basis, v)
        np.testing.assert_allclose(basis @ coeffs + norm * q, v, atol=1e-12)

    def test_breakdown_detected(self, rng):
        basis, _ = np.linalg.qr(rng.standard_normal((6, 2)) + 0j)
        v = basis @ np.array([1.0, -2.0])  # inside span(basis)
        _, norm, q = la.orthonormalize_against(basis, v)
        assert q is None
        assert norm == 0.0

    def test_zero_vector_breakdown(self):
        basis = np.zeros((4, 0), complex)
        _, norm, q = la.orthonormalize_against(basis, np.zeros(4, complex))
        assert q is None


class TestRelativeSpacing:
    def test_single_value(self):
        assert la.relative_spacing([1.0]) == np.inf

    def test_uniform(self):
        assert la.relative_spacing([0.0, 1.0, 2.0]) == pytest.approx(0.5)


@settings(max_examples=50, deadline=None)
@given(
    alpha=st.floats(-5, 5, allow_nan=False),
    beta=st.floats(0.1, 5, allow_nan=False),
    sr=st.floats(-3, 3, allow_nan=False),
    si=st.floats(-3, 3, allow_nan=False),
)
def test_rot2_solve_property(alpha, beta, sr, si):
    """(block - shift I) @ solve(...) == rhs for random blocks and shifts."""
    shift = complex(sr, si)
    # Skip shifts that coincide with the block eigenvalues alpha +/- j beta.
    if min(abs(shift - (alpha + 1j * beta)), abs(shift - (alpha - 1j * beta))) < 1e-6:
        return
    rhs = np.array([[1.0 + 0.5j, -2.0 - 1.0j]])
    x = la.solve_shifted_rot2(np.array([alpha]), np.array([beta]), shift, rhs)
    block = np.array([[alpha, beta], [-beta, alpha]]) - shift * np.eye(2)
    np.testing.assert_allclose(block @ x[0], rhs[0], atol=1e-8)
