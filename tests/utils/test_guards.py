"""Numerical guards: NaN/Inf detection and conditioning diagnostics."""

import numpy as np
import pytest

from repro.utils.guards import (
    CONDITION_LIMIT,
    NumericalError,
    check_conditioning,
    ensure_finite,
)


class TestEnsureFinite:
    def test_clean_array_passes_through(self):
        arr = np.arange(6.0).reshape(2, 3)
        out = ensure_finite(arr, stage="fit", what="samples")
        assert out is arr

    def test_empty_array_passes(self):
        ensure_finite(np.empty((0, 3)), stage="fit", what="samples")

    def test_nan_raises_with_diagnostic(self):
        arr = np.ones((2, 2))
        arr[0, 1] = np.nan
        with pytest.raises(NumericalError) as excinfo:
            ensure_finite(arr, stage="fit", what="samples")
        err = excinfo.value
        assert err.stage == "fit"
        assert err.kind == "nan"
        assert err.detail["bad_values"] == 1
        assert err.detail["shape"] == [2, 2]

    def test_inf_raises_inf_kind(self):
        with pytest.raises(NumericalError) as excinfo:
            ensure_finite([1.0, np.inf], stage="solve", what="omegas")
        assert excinfo.value.kind == "inf"

    def test_nan_wins_over_inf(self):
        with pytest.raises(NumericalError) as excinfo:
            ensure_finite([np.nan, np.inf], stage="solve", what="omegas")
        assert excinfo.value.kind == "nan"

    def test_complex_nan_detected(self):
        with pytest.raises(NumericalError):
            ensure_finite(
                np.array([1 + 1j, complex(np.nan, 0)]),
                stage="fit",
                what="responses",
            )


class TestCheckConditioning:
    def test_well_conditioned_returns_estimate(self):
        cond = check_conditioning(np.eye(4), stage="simulate", what="m")
        assert cond == pytest.approx(1.0)

    def test_singular_matrix_raises(self):
        singular = np.ones((3, 3))
        with pytest.raises(NumericalError) as excinfo:
            check_conditioning(singular, stage="simulate", what="m")
        err = excinfo.value
        assert err.kind == "conditioning"
        assert err.detail["limit"] == CONDITION_LIMIT

    def test_custom_limit(self):
        mat = np.diag([1.0, 1e-3])  # cond 1e3
        check_conditioning(mat, stage="simulate", what="m", limit=1e4)
        with pytest.raises(NumericalError):
            check_conditioning(mat, stage="simulate", what="m", limit=1e2)

    def test_non_square_is_skipped(self):
        assert (
            check_conditioning(
                np.ones((2, 5)), stage="simulate", what="m"
            )
            == 1.0
        )


class TestNumericalError:
    def test_exception_hierarchy(self):
        # ArithmeticError is the semantic home; ValueError preserves the
        # long-standing public contract that non-finite samples fed to
        # vector_fit raise ValueError.  The batch runner must therefore
        # catch NumericalError *before* any generic handler.
        assert issubclass(NumericalError, ArithmeticError)
        assert issubclass(NumericalError, ValueError)

    def test_to_dict_is_json_shaped(self):
        err = NumericalError(
            "bad", stage="fit", kind="nan", detail={"what": "x"}
        )
        doc = err.to_dict()
        assert doc == {
            "type": "NumericalError",
            "stage": "fit",
            "kind": "nan",
            "message": "bad",
            "detail": {"what": "x"},
        }


class TestPipelineWiring:
    def test_vector_fit_rejects_nan_samples(self):
        from repro.vectfit import vector_fit

        freqs = np.linspace(1.0, 10.0, 40)
        responses = np.ones((40, 1, 1), dtype=complex)
        responses[3, 0, 0] = np.nan
        with pytest.raises(NumericalError) as excinfo:
            vector_fit(freqs, responses, num_poles=4)
        assert excinfo.value.stage == "fit"

    def test_batch_runner_records_diagnostic(self):
        from repro.api import Macromodel
        from repro.batch.jobs import ModelJob
        from repro.batch.runner import BatchRunner

        freqs = np.linspace(1.0, 10.0, 40)
        samples = np.ones((40, 1, 1), dtype=complex)
        samples[0, 0, 0] = np.inf
        session = Macromodel.from_samples(freqs, samples)
        job = ModelJob(name="poisoned", session=session)
        report = BatchRunner(
            workers=1, backend="serial", num_poles=4
        ).run([job])
        result = report.results[0]
        assert result.status == "error"
        assert result.diagnostic is not None
        assert result.diagnostic["type"] == "NumericalError"
        assert result.diagnostic["kind"] == "inf"
        assert result.to_dict()["diagnostic"] == result.diagnostic
