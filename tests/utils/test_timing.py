"""Unit tests for repro.utils.timing."""

import threading

import pytest

from repro.utils.timing import Stopwatch, WorkCounter


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        assert sw.elapsed >= 0.0

    def test_stop_returns_elapsed(self):
        sw = Stopwatch().start()
        out = sw.stop()
        assert out == pytest.approx(sw.elapsed)

    def test_reset_zeroes(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0

    def test_running_elapsed_grows(self):
        sw = Stopwatch().start()
        first = sw.elapsed
        second = sw.elapsed
        assert second >= first

    def test_multiple_spans_accumulate(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first


class TestWorkCounter:
    def test_add_single_field(self):
        wc = WorkCounter()
        wc.add(arnoldi_steps=3)
        assert wc.arnoldi_steps == 3

    def test_add_multiple_fields(self):
        wc = WorkCounter()
        wc.add(operator_applies=2, restarts=1)
        assert wc.operator_applies == 2
        assert wc.restarts == 1

    def test_add_unknown_field_raises(self):
        wc = WorkCounter()
        with pytest.raises(AttributeError):
            wc.add(bogus=1)

    def test_add_private_field_raises(self):
        wc = WorkCounter()
        with pytest.raises(AttributeError):
            wc.add(_lock=1)

    def test_merge(self):
        a = WorkCounter()
        b = WorkCounter()
        a.add(operator_applies=3)
        b.add(operator_applies=4, shifts_processed=1)
        a.merge(b)
        assert a.operator_applies == 7
        assert a.shifts_processed == 1

    def test_snapshot_is_plain_dict(self):
        wc = WorkCounter()
        wc.add(small_solves=2)
        snap = wc.snapshot()
        assert snap["small_solves"] == 2
        assert set(snap) == {
            "operator_applies",
            "arnoldi_steps",
            "restarts",
            "shifts_processed",
            "shifts_eliminated",
            "small_solves",
        }

    def test_total_work_weights_small_solves(self):
        wc = WorkCounter()
        wc.add(operator_applies=10, small_solves=2)
        assert wc.total_work == 10 + 4 * 2

    def test_thread_safety_under_contention(self):
        wc = WorkCounter()

        def bump():
            for _ in range(1000):
                wc.add(operator_applies=1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert wc.operator_applies == 4000
