"""Unit tests for the logging shim (plain and structured modes)."""

import json
import logging

import pytest

from repro.core.config import ConfigError
from repro.obs import trace
from repro.utils.logging import (
    ENV_LOG_FORMAT,
    ENV_LOG_LEVEL,
    JsonLogFormatter,
    TraceContextFilter,
    enable_debug_logging,
    get_logger,
    init_from_env,
    parse_log_format,
    parse_log_level,
    structured_logging_active,
)


class TestGetLogger:
    def test_root_package_logger(self):
        assert get_logger().name == "repro"

    def test_child_logger(self):
        assert get_logger("scheduler").name == "repro.scheduler"

    def test_children_propagate_to_root(self):
        child = get_logger("single_shift")
        assert child.parent.name.startswith("repro") or child.parent.name == "root"


class TestEnableDebugLogging:
    def test_sets_level(self):
        logger = enable_debug_logging(logging.INFO)
        assert logger.level == logging.INFO
        # Restore quiet default for other tests.
        logger.setLevel(logging.WARNING)

    def test_idempotent_handler_attachment(self):
        a = enable_debug_logging()
        count_first = len(a.handlers)
        b = enable_debug_logging()
        assert len(b.handlers) == count_first
        b.setLevel(logging.WARNING)

    def test_debug_messages_flow(self, caplog):
        logger = get_logger("test_channel")
        with caplog.at_level(logging.DEBUG, logger="repro.test_channel"):
            logger.debug("scheduler claimed segment %d", 7)
        assert "claimed segment 7" in caplog.text


def _make_record(message="hello", **extra):
    record = logging.LogRecord(
        name="repro.test",
        level=logging.INFO,
        pathname=__file__,
        lineno=1,
        msg=message,
        args=(),
        exc_info=None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


@pytest.fixture
def restore_package_logger():
    """Snapshot the shared package logger and restore it afterward."""
    logger = get_logger()
    level = logger.level
    formatters = [h.formatter for h in logger.handlers]
    yield logger
    logger.setLevel(level)
    for handler, formatter in zip(logger.handlers, formatters):
        handler.setFormatter(formatter)


class TestParseLogLevel:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("DEBUG", logging.DEBUG),
            ("info", logging.INFO),
            (" Warning ", logging.WARNING),
            ("10", 10),
        ],
    )
    def test_valid(self, raw, expected):
        assert parse_log_level(raw) == expected

    def test_malformed_names_the_variable(self):
        with pytest.raises(ConfigError, match="REPRO_LOG_LEVEL"):
            parse_log_level("loud")


class TestParseLogFormat:
    @pytest.mark.parametrize("raw", ["text", "json", " JSON "])
    def test_valid(self, raw):
        assert parse_log_format(raw) in ("text", "json")

    def test_malformed_names_the_variable(self):
        with pytest.raises(ConfigError, match="REPRO_LOG_FORMAT"):
            parse_log_format("xml")


class TestJsonFormatter:
    def test_correlation_fields_always_present(self):
        line = JsonLogFormatter().format(_make_record())
        payload = json.loads(line)
        assert payload["message"] == "hello"
        assert payload["level"] == "INFO"
        assert payload["trace_id"] is None
        assert payload["span_id"] is None
        assert payload["job_id"] is None

    def test_whitelisted_extras_are_lifted(self):
        record = _make_record(
            http_method="GET", http_path="/healthz", http_status=200,
            duration_ms=1.25,
        )
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["http_method"] == "GET"
        assert payload["http_path"] == "/healthz"
        assert payload["http_status"] == 200
        assert payload["duration_ms"] == 1.25

    def test_exceptions_are_serialized(self):
        record = _make_record()
        try:
            raise RuntimeError("kaboom")
        except RuntimeError:
            import sys

            record.exc_info = sys.exc_info()
        payload = json.loads(JsonLogFormatter().format(record))
        assert "kaboom" in payload["exc_info"]


class TestTraceContextFilter:
    def test_stamps_active_trace_ids(self):
        ctx = trace.TraceContext(
            trace_id="t" * 32, span_id="root", job_id="job-9"
        )
        record = _make_record()
        with trace.activate(ctx, job_id="job-9"):
            with trace.span("op"):
                TraceContextFilter().filter(record)
        assert record.trace_id == "t" * 32
        assert record.span_id is not None
        assert record.job_id == "job-9"

    def test_explicit_extra_wins_over_context(self):
        record = _make_record(trace_id="explicit")
        TraceContextFilter().filter(record)
        assert record.trace_id == "explicit"
        assert record.span_id is None


class TestInitFromEnv:
    def test_noop_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_LOG_LEVEL, raising=False)
        monkeypatch.delenv(ENV_LOG_FORMAT, raising=False)
        assert init_from_env() is None

    def test_json_format_activates_structured_mode(
        self, monkeypatch, restore_package_logger
    ):
        monkeypatch.setenv(ENV_LOG_FORMAT, "json")
        monkeypatch.delenv(ENV_LOG_LEVEL, raising=False)
        logger = init_from_env()
        assert logger is not None
        assert logger.level == logging.INFO  # format alone defaults INFO
        assert structured_logging_active()

    def test_level_alone_keeps_text_format(
        self, monkeypatch, restore_package_logger
    ):
        monkeypatch.setenv(ENV_LOG_LEVEL, "DEBUG")
        monkeypatch.delenv(ENV_LOG_FORMAT, raising=False)
        logger = init_from_env()
        assert logger.level == logging.DEBUG
        assert not structured_logging_active()

    def test_malformed_level_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG_LEVEL, "noisy")
        with pytest.raises(ConfigError, match="REPRO_LOG_LEVEL"):
            init_from_env()

    def test_malformed_format_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG_FORMAT, "yaml")
        monkeypatch.delenv(ENV_LOG_LEVEL, raising=False)
        with pytest.raises(ConfigError, match="REPRO_LOG_FORMAT"):
            init_from_env()


class TestStructuredEndToEnd:
    def test_every_emitted_line_is_json_with_trace_id(
        self, restore_package_logger
    ):
        import io

        logger = enable_debug_logging(logging.DEBUG, fmt="json")
        handler = next(
            h for h in logger.handlers if isinstance(h, logging.StreamHandler)
        )
        buffer = io.StringIO()
        old_stream = handler.setStream(buffer)
        try:
            ctx = trace.TraceContext(
                trace_id="e2e-trace-00001", span_id="root", job_id="job-e2e"
            )
            with trace.activate(ctx, job_id="job-e2e"):
                with trace.span("stage.fit"):
                    get_logger("worker").info("fit finished")
            get_logger("worker").info("outside any trace")
        finally:
            handler.setStream(old_stream)
        lines = [
            l for l in buffer.getvalue().splitlines() if l.strip()
        ]
        assert len(lines) == 2
        first, second = (json.loads(l) for l in lines)
        assert first["trace_id"] == "e2e-trace-00001"
        assert first["job_id"] == "job-e2e"
        assert first["span_id"] is not None
        assert second["trace_id"] is None
