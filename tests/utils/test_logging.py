"""Unit tests for the logging shim."""

import logging

from repro.utils.logging import enable_debug_logging, get_logger


class TestGetLogger:
    def test_root_package_logger(self):
        assert get_logger().name == "repro"

    def test_child_logger(self):
        assert get_logger("scheduler").name == "repro.scheduler"

    def test_children_propagate_to_root(self):
        child = get_logger("single_shift")
        assert child.parent.name.startswith("repro") or child.parent.name == "root"


class TestEnableDebugLogging:
    def test_sets_level(self):
        logger = enable_debug_logging(logging.INFO)
        assert logger.level == logging.INFO
        # Restore quiet default for other tests.
        logger.setLevel(logging.WARNING)

    def test_idempotent_handler_attachment(self):
        a = enable_debug_logging()
        count_first = len(a.handlers)
        b = enable_debug_logging()
        assert len(b.handlers) == count_first
        b.setLevel(logging.WARNING)

    def test_debug_messages_flow(self, caplog):
        logger = get_logger("test_channel")
        with caplog.at_level(logging.DEBUG, logger="repro.test_channel"):
            logger.debug("scheduler claimed segment %d", 7)
        assert "claimed segment 7" in caplog.text
