"""Worker hardening: heartbeat survival/escalation and store degradation."""

import threading
import time

import pytest

from repro.core.config import RunConfig
from repro.queue import JobQueue, QueueConfig, QueueWorker, parse_spec
from repro.store import ResultStore

SPEC = {"kind": "synth", "order": 6, "ports": 2, "seed": 5, "task": "check"}


@pytest.fixture()
def queue_path(tmp_path):
    return tmp_path / "queue.sqlite3"


@pytest.fixture()
def config(tmp_path):
    return RunConfig(cache="readwrite", cache_dir=str(tmp_path / "store"))


def _enqueue(queue, spec, config, job_id="job1"):
    parsed = parse_spec(spec, base_config=config, job_id=job_id)
    return queue.enqueue(
        job_id=job_id,
        task=parsed.task,
        name=parsed.name,
        kind=parsed.kind,
        spec=parsed.resolved_spec(),
        key=parsed.key,
    )


def _make_worker(queue_path, *, heartbeat=0.02, lease=0.5, **kwargs):
    kwargs.setdefault("backend", "serial")
    return QueueWorker(
        queue_path,
        queue_config=QueueConfig(
            poll_seconds=0.02, heartbeat_seconds=heartbeat, lease_seconds=lease
        ),
        **kwargs,
    )


def _run_heartbeat(worker, job_id, *, duration):
    """Drive _heartbeat_loop on a thread for ``duration`` seconds."""
    stop = threading.Event()
    lost = threading.Event()
    thread = threading.Thread(
        target=worker._heartbeat_loop, args=(job_id, stop, lost), daemon=True
    )
    thread.start()
    time.sleep(duration)
    stop.set()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    return lost


class TestHeartbeatHardening:
    def test_transient_failures_are_retried_not_fatal(
        self, queue_path, config
    ):
        """A heartbeat that throws a few times must recover, keep the
        lease alive, and never flag the job as lost."""
        with JobQueue(queue_path) as queue:
            row = _enqueue(queue, SPEC, config)
            worker = _make_worker(queue_path, lease=1.0)
            claimed = worker.queue.claim(worker.worker_id, lease_seconds=1.0)
            assert claimed is not None

            real = worker.queue.heartbeat
            failures = {"left": 3}

            def flaky_heartbeat(*args, **kwargs):
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise RuntimeError("injected heartbeat failure")
                return real(*args, **kwargs)

            worker.queue.heartbeat = flaky_heartbeat
            lost = _run_heartbeat(worker, row.id, duration=0.6)
            assert failures["left"] == 0  # the failures were consumed
            assert not lost.is_set()
            # The lease survived the whole storm: still owned.
            assert worker.queue.owns(row.id, worker.worker_id)
            worker.queue.close()

    def test_unrestorable_heartbeat_escalates_to_lost(
        self, queue_path, config
    ):
        """When heartbeats cannot be restored within the lease budget,
        the loop aborts the job cleanly by flagging it lost."""
        with JobQueue(queue_path) as queue:
            row = _enqueue(queue, SPEC, config)
            worker = _make_worker(queue_path, heartbeat=0.02, lease=0.15)
            claimed = worker.queue.claim(worker.worker_id, lease_seconds=0.15)
            assert claimed is not None

            def dead_heartbeat(*args, **kwargs):
                raise RuntimeError("the queue is gone")

            worker.queue.heartbeat = dead_heartbeat
            lost = _run_heartbeat(worker, row.id, duration=0.6)
            assert lost.is_set()
            worker.queue.close()

    def test_lost_lease_still_detected(self, queue_path, config):
        """The pre-existing contract: heartbeat returning False (lease
        reclaimed by another worker) flags lost immediately."""
        with JobQueue(queue_path) as queue:
            row = _enqueue(queue, SPEC, config)
            worker = _make_worker(queue_path, heartbeat=0.02, lease=0.1)
            assert (
                worker.queue.claim(worker.worker_id, lease_seconds=0.05)
                is not None
            )
            time.sleep(0.1)  # let the lease lapse
            thief = JobQueue(queue_path)
            assert thief.claim("thief", lease_seconds=30.0) is not None
            lost = _run_heartbeat(worker, row.id, duration=0.3)
            assert lost.is_set()
            thief.close()
            worker.queue.close()


class TestStoreDegradation:
    def test_failing_store_degrades_job_instead_of_failing_it(
        self, queue_path, config, monkeypatch
    ):
        """With the store down, the job completes with a warning and
        the result is served from the queue row (cache-off semantics)."""
        from repro import faults
        from repro.faults import FaultPlan

        with JobQueue(queue_path) as queue:
            row = _enqueue(queue, SPEC, config)
            worker = _make_worker(queue_path, max_jobs=1, lease=30.0)
            faults.activate(
                FaultPlan.parse(
                    "store.read:io_error@1;store.write:io_error@1"
                )
            )
            try:
                assert worker.run() == 1
            finally:
                faults.deactivate()
            done = queue.get(row.id)
            assert done.state == "done"
            assert done.attempts == 1
            assert done.result["status"] == "ok"
            assert done.result["warnings"], "the outage must be recorded"
            # Nothing made it into the store...
            store = ResultStore.from_config(config)
            assert store.get(row.key) is None

    def test_healthy_store_keeps_normal_semantics(self, queue_path, config):
        with JobQueue(queue_path) as queue:
            row = _enqueue(queue, SPEC, config)
            worker = _make_worker(queue_path, max_jobs=1, lease=30.0)
            assert worker.run() == 1
            done = queue.get(row.id)
            assert done.state == "done"
            assert "warnings" not in done.result
            store = ResultStore.from_config(config)
            assert store.get(row.key) is not None
