"""QueueWorker: execution, caching, drains, and lost-lease handling."""

import threading
import time

import pytest

from repro.core.config import RunConfig
from repro.queue import JobQueue, QueueConfig, QueueWorker, parse_spec
from repro.store import ResultStore

SPEC = {"kind": "synth", "order": 6, "ports": 2, "seed": 3, "task": "check"}


@pytest.fixture()
def queue_path(tmp_path):
    return tmp_path / "queue.sqlite3"


@pytest.fixture()
def config(tmp_path):
    return RunConfig(cache="readwrite", cache_dir=str(tmp_path / "store"))


def _enqueue(queue, spec, config, job_id="job1"):
    """Enqueue exactly as the HTTP front-end does: resolved spec + key."""
    parsed = parse_spec(spec, base_config=config, job_id=job_id)
    return queue.enqueue(
        job_id=job_id,
        task=parsed.task,
        name=parsed.name,
        kind=parsed.kind,
        spec=parsed.resolved_spec(),
        key=parsed.key,
    )


def _worker(queue_path, **kwargs):
    kwargs.setdefault("backend", "serial")
    kwargs.setdefault("queue_config", QueueConfig(poll_seconds=0.02))
    return QueueWorker(queue_path, **kwargs)


class TestExecution:
    def test_executes_a_job_and_stores_the_result(self, queue_path, config):
        with JobQueue(queue_path) as queue:
            row = _enqueue(queue, SPEC, config)
            worker = _worker(queue_path, max_jobs=1)
            assert worker.run() == 1
            done = queue.get(row.id)
            assert done.state == "done"
            assert done.cached is False
            assert done.result["status"] == "ok"
            assert done.attempts == 1
            # The result went to the content-addressed store BEFORE the
            # ack — a resubmission can short-circuit immediately.
            store = ResultStore.from_config(config)
            assert store.get(row.key) is not None

    def test_unparseable_spec_is_an_error_not_a_retry_loop(self, queue_path):
        with JobQueue(queue_path) as queue:
            queue.enqueue(
                job_id="bad",
                task="check",
                name="bad",
                kind="synth",
                spec={"kind": "no-such-kind"},
            )
            worker = _worker(queue_path, max_jobs=1)
            assert worker.run() == 1
            row = queue.get("bad")
            assert row.state == "error"
            assert "unparseable spec" in row.error
            assert row.attempts == 1  # terminal on the first attempt

    def test_prewarmed_store_short_circuits(self, queue_path, config):
        parsed = parse_spec(SPEC, base_config=config, job_id="warm")
        store = ResultStore.from_config(config)
        store.put(parsed.key, {"status": "ok", "warmed": True}, stage="service-job")
        with JobQueue(queue_path) as queue:
            _enqueue(queue, SPEC, config, job_id="warm")
            worker = _worker(queue_path, max_jobs=1)
            started = time.time()
            assert worker.run() == 1
            assert time.time() - started < 5.0
            row = queue.get("warm")
            assert row.state == "done"
            assert row.cached is True
            assert row.result["warmed"] is True

    def test_cache_off_jobs_skip_the_store(self, queue_path, tmp_path):
        config = RunConfig(cache="off", cache_dir=str(tmp_path / "store"))
        with JobQueue(queue_path) as queue:
            row = _enqueue(queue, SPEC, config)
            worker = _worker(queue_path, max_jobs=1)
            assert worker.run() == 1
            assert queue.get(row.id).state == "done"
        assert not (tmp_path / "store").exists()


class TestDrain:
    def test_stop_before_run_exits_immediately(self, queue_path, config):
        with JobQueue(queue_path) as queue:
            _enqueue(queue, SPEC, config)
            worker = _worker(queue_path)
            worker.request_stop()
            assert worker.stopping is True
            assert worker.run() == 0
            assert queue.get("job1").state == "queued"  # untouched

    def test_drain_finishes_the_leased_job(self, queue_path, config):
        """SIGTERM semantics: stop mid-run, the in-flight job still acks."""
        with JobQueue(queue_path) as queue:
            row = _enqueue(queue, SPEC, config)
            worker = _worker(queue_path)
            thread = threading.Thread(target=worker.run)
            thread.start()
            # Wait for the claim, then request the drain while the job runs.
            deadline = time.time() + 30.0
            while queue.get(row.id).state == "queued":
                assert time.time() < deadline, "worker never claimed"
                time.sleep(0.01)
            worker.request_stop()
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            assert queue.get(row.id).state == "done"
            assert worker.jobs_done == 1

    def test_idle_exit_disbands_an_empty_fleet(self, queue_path):
        worker = _worker(queue_path, idle_seconds=0.1)
        started = time.time()
        assert worker.run() == 0
        assert time.time() - started < 30.0

    def test_worker_registry_reflects_the_lifecycle(self, queue_path, config):
        with JobQueue(queue_path) as queue:
            _enqueue(queue, SPEC, config)
            worker = _worker(queue_path, worker_id="w-test", max_jobs=1)
            worker.run()
            (registered,) = [
                w for w in queue.workers() if w["id"] == "w-test"
            ]
            assert registered["state"] == "stopped"
            assert registered["jobs_done"] == 1


class TestValidation:
    def test_rejects_unknown_backend(self, queue_path):
        with pytest.raises(ValueError, match="backend"):
            QueueWorker(queue_path, backend="quantum")

    def test_rejects_nonpositive_timeout(self, queue_path):
        with pytest.raises(ValueError, match="timeout"):
            QueueWorker(queue_path, timeout=0.0)
