"""Crash recovery: kill -9 a worker mid-job, every job still completes.

The durability contract of the queue, asserted end to end with real
``repro worker`` processes:

* a SIGKILLed worker's leased job is reclaimed after its lease expires
  and re-executed by a surviving worker (attempts == 2);
* every other job completes exactly once (attempts == 1);
* the content-addressed store holds exactly one entry per unique job —
  no duplicated writes from the crash/retry cycle;
* the surviving worker drains gracefully on SIGTERM and exits 0.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import RunConfig
from repro.queue import JobQueue, QueueConfig, QueueWorker, parse_spec
from repro.store import ResultStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: ~1 s of serial Hamiltonian work — long enough to SIGKILL mid-job.
SLOW_SPEC = {"kind": "synth", "order": 40, "ports": 4, "seed": 7, "task": "check"}
#: ~0.1 s each — the background fleet traffic.
FAST_SPEC = {"kind": "synth", "order": 6, "ports": 2, "task": "check"}


def _spawn_worker(queue_path, worker_id, *extra):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--queue",
            str(queue_path),
            "--worker-id",
            worker_id,
            "--backend",
            "serial",
            "--lease",
            "3",
            "--heartbeat",
            "0.5",
            "--poll",
            "0.05",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def _wait_until(predicate, *, budget, what):
    deadline = time.time() + budget
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


def _crash_free_baseline(tmp_path, specs):
    """Store entry count after a clean in-process run of ``specs``."""
    config = RunConfig(cache="readwrite", cache_dir=str(tmp_path / "baseline"))
    with JobQueue(tmp_path / "baseline.sqlite3") as queue:
        for index, spec in enumerate(specs):
            parsed = parse_spec(spec, base_config=config, job_id=f"ref{index}")
            queue.enqueue(
                job_id=f"ref{index}",
                task=parsed.task,
                name=parsed.name,
                kind=parsed.kind,
                spec=parsed.resolved_spec(),
                key=parsed.key,
            )
        worker = QueueWorker(
            tmp_path / "baseline.sqlite3",
            backend="serial",
            max_jobs=len(specs),
            queue_config=QueueConfig(poll_seconds=0.02),
        )
        assert worker.run() == len(specs)
    return ResultStore.from_config(config).stats()["entries"]


def test_killed_worker_never_loses_a_job(tmp_path):
    queue_path = tmp_path / "queue.sqlite3"
    config = RunConfig(cache="readwrite", cache_dir=str(tmp_path / "store"))
    queue = JobQueue(queue_path)
    victim = survivor = None
    try:
        # The slow job is enqueued first so the first worker (the
        # victim) claims it; five fast jobs ride behind it.
        specs = [SLOW_SPEC] + [dict(FAST_SPEC, seed=seed) for seed in range(5)]
        rows = []
        for index, spec in enumerate(specs):
            parsed = parse_spec(spec, base_config=config, job_id=f"job{index}")
            rows.append(
                queue.enqueue(
                    job_id=f"job{index}",
                    task=parsed.task,
                    name=parsed.name,
                    kind=parsed.kind,
                    spec=parsed.resolved_spec(),
                    key=parsed.key,
                    trace_id="crash-trace-0001" if index == 0 else None,
                )
            )
        assert len({row.key for row in rows}) == len(rows)

        victim = _spawn_worker(queue_path, "victim")

        def victim_is_mid_job():
            row = queue.get("job0")
            return (
                row is not None
                and row.state == "running"
                and row.worker == "victim"
            )

        _wait_until(
            victim_is_mid_job,
            budget=60.0,
            what="the victim to claim the slow job",
        )
        # kill -9: no drain, no ack, no lease release — presumed dead.
        victim.kill()
        victim.wait(timeout=30.0)

        survivor = _spawn_worker(queue_path, "survivor")
        _wait_until(
            lambda: all(queue.get(row.id).terminal for row in rows),
            budget=120.0,
            what="every job to reach a terminal state",
        )

        for row in rows:
            final = queue.get(row.id)
            assert final.state == "done", (final.id, final.state, final.error)
            assert final.result["status"] == "ok"
        # The victim's job took exactly one extra attempt — reclaimed
        # once, completed once, never duplicated.
        assert queue.get("job0").attempts == 2
        assert all(queue.get(f"job{i}").attempts == 1 for i in range(1, 6))

        # No duplicated store writes: the crashed-and-recovered store
        # holds exactly the entries a crash-free run of the same six
        # jobs produces (pipeline stages included), and every job key
        # resolves.
        store = ResultStore.from_config(config)
        for row in rows:
            assert store.get(row.key) is not None
        baseline = _crash_free_baseline(tmp_path, specs)
        assert store.stats()["entries"] == baseline

        # Trace propagation across the crash: the retry executed in a
        # different process, yet its spans carry the trace id enqueued
        # with the job, under a fresh attempt-scoped root — one
        # connected timeline across both attempts.
        spans = queue.trace_spans(trace_id="crash-trace-0001")
        assert spans, "the recovered job persisted no spans"
        assert all(s["trace_id"] == "crash-trace-0001" for s in spans)
        attempts = [s for s in spans if s["name"] == "worker.attempt"]
        assert any(
            s["attributes"]["worker"] == "survivor"
            and s["attributes"]["attempt"] == 2
            for s in attempts
        ), attempts
        # The synthesized job root ties every attempt's spans together.
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["job"]
        assert roots[0]["span_id"] == "job0"
        assert roots[0]["attributes"]["attempts"] == 2

        # The survivor drains gracefully: SIGTERM, finish, exit 0.
        survivor.send_signal(signal.SIGTERM)
        assert survivor.wait(timeout=120.0) == 0
        output = survivor.stdout.read().decode()
        assert "drain requested" in output
        survivor = None
    finally:
        for proc in (victim, survivor):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        queue.close()


def test_exhausted_attempts_fail_with_the_reason_recorded(tmp_path):
    """When every attempt dies, the job fails terminally — not silently."""
    queue = JobQueue(tmp_path / "queue.sqlite3", max_attempts=2)
    try:
        queue.enqueue(
            job_id="doomed",
            task="check",
            name="doomed",
            kind="synth",
            spec={"kind": "synth"},
        )
        for worker in ("w1", "w2"):
            row = queue.claim(worker, lease_seconds=0.0)
            assert row is not None and row.worker == worker
        assert queue.claim("w3") is None  # reclaim fails it terminally
        final = queue.get("doomed")
        assert final.state == "failed"
        assert "lease expired" in final.error and "w2" in final.error
    finally:
        queue.close()
