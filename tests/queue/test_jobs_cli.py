"""The ``repro jobs`` admin CLI: list, show, retry, purge."""

import json

import pytest

from repro.cli import main
from repro.queue import JobQueue


@pytest.fixture()
def queue_path(tmp_path):
    """A queue seeded with one job per interesting state."""
    path = tmp_path / "queue.sqlite3"
    with JobQueue(path) as queue:
        # Terminal rows are seeded first: claim() always takes the
        # oldest queued job, so each claim below gets the row just
        # enqueued only while nothing older is still queued.
        for job_id, task, state in (
            ("bbb222", "check", "done"),
            ("ccc333", "simulate", "error"),
            ("aaa111", "check", "queued"),
        ):
            queue.enqueue(
                job_id=job_id,
                task=task,
                name=f"{task}-{job_id}",
                kind="synth",
                spec={"kind": "synth", "order": 6},
                key=f"key-{job_id}",
            )
            if state != "queued":
                queue.claim("w1")
                queue.ack(
                    job_id,
                    "w1",
                    state=state,
                    result={"status": "ok"} if state == "done" else None,
                    error="boom" if state == "error" else None,
                )
    return path


def _jobs(queue_path, command, *argv):
    # The queue flags live on each subcommand, after its positionals.
    return main(["jobs", command, *argv, "--queue", str(queue_path)])


class TestList:
    def test_table_lists_every_job(self, queue_path, capsys):
        assert _jobs(queue_path, "list") == 0
        out = capsys.readouterr().out
        for job_id in ("aaa111", "bbb222", "ccc333"):
            assert job_id in out
        assert "state" in out  # header row

    def test_state_and_task_filters(self, queue_path, capsys):
        assert _jobs(queue_path, "list", "--state", "error") == 0
        out = capsys.readouterr().out
        assert "ccc333" in out and "bbb222" not in out
        assert _jobs(queue_path, "list", "--task", "simulate") == 0
        out = capsys.readouterr().out
        assert "ccc333" in out and "aaa111" not in out

    def test_json_output_is_parseable(self, queue_path, capsys):
        assert _jobs(queue_path, "list", "--json") == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["id"] for row in rows} == {"aaa111", "bbb222", "ccc333"}
        assert all("status" in row for row in rows)

    def test_empty_match_says_so(self, queue_path, capsys):
        assert _jobs(queue_path, "list", "--state", "failed") == 0
        assert "no jobs match" in capsys.readouterr().out


class TestShow:
    def test_show_prints_the_fields(self, queue_path, capsys):
        assert _jobs(queue_path, "show", "ccc333") == 0
        out = capsys.readouterr().out
        assert "ccc333" in out and "error" in out and "boom" in out

    def test_show_json_includes_the_spec(self, queue_path, capsys):
        assert _jobs(queue_path, "show", "bbb222", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "done"
        assert payload["spec"] == {"kind": "synth", "order": 6}

    def test_unknown_id_is_a_clean_error(self, queue_path, capsys):
        assert _jobs(queue_path, "show", "nope") == 1
        assert "unknown job id" in capsys.readouterr().err


class TestRetry:
    def test_retry_requeues_a_finished_job(self, queue_path, capsys):
        assert _jobs(queue_path, "retry", "ccc333") == 0
        assert "requeued" in capsys.readouterr().out
        with JobQueue(queue_path) as queue:
            row = queue.get("ccc333")
            assert row.state == "queued" and row.error is None

    def test_retry_refuses_live_jobs(self, queue_path, capsys):
        assert _jobs(queue_path, "retry", "aaa111") == 1
        err = capsys.readouterr().err
        assert "queued" in err and "only finished jobs" in err

    def test_retry_json(self, queue_path, capsys):
        assert _jobs(queue_path, "retry", "bbb222", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"id": "bbb222", "status": "queued"}


class TestPurge:
    def test_purge_removes_one_terminal_state(self, queue_path, capsys):
        assert _jobs(queue_path, "purge", "--state", "error") == 0
        assert "purged 1 error job(s)" in capsys.readouterr().out
        with JobQueue(queue_path) as queue:
            assert queue.get("ccc333") is None
            assert queue.get("bbb222") is not None

    def test_purge_json_reports_the_count(self, queue_path, capsys):
        assert _jobs(queue_path, "purge", "--state", "failed", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"state": "failed", "removed": 0}


class TestErrors:
    def test_missing_database_is_a_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nowhere" / "queue.sqlite3"
        assert main(["jobs", "list", "--queue", str(missing)]) == 1
        err = capsys.readouterr().err
        assert "no queue database" in err and str(missing) in err
