"""JobQueue: atomic claims, leases, guarded acks, admin operations."""

import threading

import pytest

from repro.queue import JOB_STATES, TERMINAL_STATES, JobQueue


@pytest.fixture()
def queue(tmp_path):
    q = JobQueue(tmp_path / "queue.sqlite3")
    yield q
    q.close()


def _enqueue(queue, job_id, **overrides):
    fields = dict(
        job_id=job_id,
        task="check",
        name=f"check-{job_id}",
        kind="synth",
        spec={"kind": "synth", "order": 6, "seed": int(job_id[-1], 36)},
        key=f"key-{job_id}",
    )
    fields.update(overrides)
    return queue.enqueue(**fields)


class TestEnqueueAndClaim:
    def test_enqueue_returns_the_stored_row(self, queue):
        row = _enqueue(queue, "a1")
        assert row.id == "a1"
        assert row.state == "queued"
        assert row.attempts == 0
        assert row.spec["order"] == 6
        assert not row.terminal
        assert row.status == row.state

    def test_claim_is_fifo_and_stamps_the_lease(self, queue):
        _enqueue(queue, "a1")
        _enqueue(queue, "a2")
        first = queue.claim("w1", lease_seconds=60.0)
        assert first.id == "a1"
        assert first.state == "running"
        assert first.worker == "w1"
        assert first.attempts == 1
        assert first.lease_expires is not None
        second = queue.claim("w1")
        assert second.id == "a2"
        assert queue.claim("w1") is None

    def test_two_connections_never_claim_the_same_job(self, queue, tmp_path):
        # Two JobQueue handles over the same file (as two worker
        # processes would hold), racing claims from threads.
        for i in range(20):
            _enqueue(queue, f"j{i:02d}")
        other = JobQueue(tmp_path / "queue.sqlite3")
        claimed, start = [], threading.Barrier(2)

        def drain(q, worker):
            start.wait()
            while True:
                row = q.claim(worker, lease_seconds=60.0)
                if row is None:
                    return
                claimed.append(row.id)

        threads = [
            threading.Thread(target=drain, args=(queue, "w1")),
            threading.Thread(target=drain, args=(other, "w2")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        other.close()
        assert sorted(claimed) == [f"j{i:02d}" for i in range(20)]
        assert len(set(claimed)) == 20  # no double-claims

    def test_begin_immediate_fallback_claims_identically(self, queue):
        # Force the pre-3.35 path: same guarded flip, no RETURNING.
        queue._returning = False
        _enqueue(queue, "a1")
        _enqueue(queue, "a2")
        row = queue.claim("w1")
        assert row.id == "a1" and row.state == "running"
        assert row.worker == "w1" and row.attempts == 1
        assert queue.claim("w1").id == "a2"
        assert queue.claim("w1") is None

    def test_cached_result_rows_are_born_done(self, queue):
        row = _enqueue(queue, "a1", cached_result={"status": "ok"})
        assert row.state == "done"
        assert row.cached is True
        assert row.result == {"status": "ok"}
        assert queue.claim("w1") is None  # nothing runnable


class TestLeases:
    def test_heartbeat_extends_only_while_owned(self, queue):
        _enqueue(queue, "a1")
        row = queue.claim("w1", lease_seconds=30.0)
        assert queue.heartbeat(row.id, "w1", lease_seconds=30.0) is True
        assert queue.heartbeat(row.id, "imposter") is False
        assert queue.owns(row.id, "w1") is True
        assert queue.owns(row.id, "imposter") is False

    def test_expired_lease_requeues_then_fails(self, queue):
        _enqueue(queue, "a1", max_attempts=2)
        first = queue.claim("w1", lease_seconds=0.0)
        assert first.attempts == 1
        # The lease is already expired; the next claim reclaims and
        # immediately re-claims the job for the new worker.
        second = queue.claim("w2", lease_seconds=0.0)
        assert second.id == "a1"
        assert second.worker == "w2"
        assert second.attempts == 2
        # Attempts are exhausted: the next reclaim fails it terminally,
        # recording who was last seen holding it.
        assert queue.claim("w3") is None
        row = queue.get("a1")
        assert row.state == "failed"
        assert row.worker is None
        assert "lease expired after 2 attempt(s)" in row.error
        assert "w2" in row.error

    def test_live_leases_are_not_reclaimed(self, queue):
        _enqueue(queue, "a1")
        queue.claim("w1", lease_seconds=3600.0)
        assert queue.reclaim_expired() == 0
        assert queue.get("a1").state == "running"


class TestAck:
    def test_ack_records_the_outcome(self, queue):
        _enqueue(queue, "a1")
        row = queue.claim("w1")
        before = row.version
        assert queue.ack(row.id, "w1", state="done", result={"x": 1}) is True
        row = queue.get("a1")
        assert row.state == "done"
        assert row.result == {"x": 1}
        assert row.worker is None
        assert row.finished is not None
        assert row.version > before

    def test_zombie_worker_cannot_overwrite(self, queue):
        """The exactly-once guarantee: a reclaimed worker's ack bounces."""
        _enqueue(queue, "a1", max_attempts=5)
        queue.claim("w1", lease_seconds=0.0)  # w1's lease dies instantly
        queue.claim("w2", lease_seconds=3600.0)  # reclaim hands it to w2
        assert queue.ack("a1", "w1", state="done", result={"from": "w1"}) is False
        assert queue.ack("a1", "w2", state="done", result={"from": "w2"}) is True
        assert queue.get("a1").result == {"from": "w2"}
        # ... and a second ack from anyone is too late.
        assert queue.ack("a1", "w2", state="error", error="again") is False

    def test_ack_rejects_non_terminal_states(self, queue):
        _enqueue(queue, "a1")
        queue.claim("w1")
        with pytest.raises(ValueError, match="ack state"):
            queue.ack("a1", "w1", state="queued")

    def test_release_requeues_without_an_outcome(self, queue):
        _enqueue(queue, "a1")
        row = queue.claim("w1")
        assert queue.release(row.id, "w1") is True
        fresh = queue.get("a1")
        assert fresh.state == "queued"
        assert fresh.attempts == 1  # the attempt stays counted
        assert queue.release("a1", "w1") is False  # no longer owned


class TestAdmin:
    def test_retry_requeues_only_terminal_jobs(self, queue):
        _enqueue(queue, "a1")
        queue.claim("w1")
        assert queue.retry("a1") is False  # running → untouchable
        queue.ack("a1", "w1", state="error", error="boom")
        assert queue.retry("a1") is True
        row = queue.get("a1")
        assert row.state == "queued"
        assert row.attempts == 0 and row.error is None and row.result is None
        assert queue.retry("missing") is False

    def test_purge_deletes_one_terminal_state(self, queue):
        for i, state in enumerate(("error", "error", "done")):
            _enqueue(queue, f"a{i}")
            queue.claim("w1")
            queue.ack(f"a{i}", "w1", state=state)
        _enqueue(queue, "live")
        assert queue.purge("error") == 2
        assert queue.get("a2").state == "done"
        assert queue.get("live").state == "queued"
        with pytest.raises(ValueError, match="terminal"):
            queue.purge("queued")

    def test_list_filters_and_orders_newest_first(self, queue):
        _enqueue(queue, "a1")
        _enqueue(queue, "a2", task="simulate")
        _enqueue(queue, "a3")
        assert [r.id for r in queue.list()] == ["a3", "a2", "a1"]
        assert [r.id for r in queue.list(task="simulate")] == ["a2"]
        assert [r.id for r in queue.list(state="queued", limit=1)] == ["a3"]
        with pytest.raises(ValueError, match="unknown state"):
            queue.list(state="pending")


class TestEvents:
    def test_wait_for_version_returns_on_transition(self, queue):
        _enqueue(queue, "a1")
        row = queue.get("a1")

        def finish():
            claimed = queue.claim("w1")
            queue.ack(claimed.id, "w1", state="done", result={})

        timer = threading.Timer(0.1, finish)
        timer.start()
        try:
            fresh = queue.wait_for_version(
                "a1", since=row.version, timeout=30.0, poll=0.01
            )
        finally:
            timer.join()
        assert fresh.version > row.version

    def test_wait_for_version_times_out_with_current_row(self, queue):
        _enqueue(queue, "a1")
        row = queue.get("a1")
        same = queue.wait_for_version(
            "a1", since=row.version, timeout=0.05, poll=0.01
        )
        assert same.version == row.version

    def test_terminal_rows_return_immediately(self, queue):
        _enqueue(queue, "a1", cached_result={"status": "ok"})
        row = queue.get("a1")
        # since == current version would normally block, but a terminal
        # row will never change again — no point waiting.
        assert (
            queue.wait_for_version("a1", since=row.version, timeout=30.0).id
            == "a1"
        )

    def test_unknown_id_is_none(self, queue):
        assert queue.wait_for_version("nope", timeout=0.0) is None


class TestStats:
    def test_depth_covers_every_state(self, queue):
        assert queue.depth() == {state: 0 for state in JOB_STATES}
        _enqueue(queue, "a1")
        _enqueue(queue, "a2")
        queue.claim("w1")
        depth = queue.depth()
        assert depth["queued"] == 1 and depth["running"] == 1

    def test_stats_aggregates(self, queue):
        _enqueue(queue, "a1", cached_result={"status": "ok"})
        _enqueue(queue, "a2", task="simulate")
        queue.claim("w1")
        queue.ack("a2", "w1", state="done", result={})
        stats = queue.stats()
        assert stats["total"] == 2
        assert stats["cached"] == 1
        assert stats["completed"] == 2
        assert stats["tasks_completed"] == {"check": 1, "simulate": 1}
        assert stats["depth"]["done"] == 2

    def test_worker_registry(self, queue):
        queue.register_worker("w1", pid=4242)
        queue.worker_update("w1", state="running", job_id="a1")
        (worker,) = queue.workers()
        assert worker["id"] == "w1" and worker["pid"] == 4242
        assert worker["state"] == "running" and worker["job_id"] == "a1"
        assert worker["heartbeat_age"] >= 0.0
        queue.worker_update("w1", state="idle", bump_done=True)
        queue.worker_update("w1", state="idle", bump_done=True)
        (worker,) = queue.workers()
        assert worker["jobs_done"] == 2

    def test_terminal_states_are_a_subset_of_states(self):
        assert set(TERMINAL_STATES) < set(JOB_STATES)


class TestSchemaMigration:
    def test_pre_trace_database_is_migrated_in_place(self, tmp_path):
        """Opening a queue file created before the tracing release adds
        the ``trace_id`` column (and traces table) without losing rows."""
        import sqlite3
        import time as _time

        path = tmp_path / "old.sqlite3"
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE jobs (
                id           TEXT PRIMARY KEY,
                task         TEXT NOT NULL,
                name         TEXT NOT NULL,
                kind         TEXT NOT NULL,
                spec         TEXT NOT NULL,
                key          TEXT,
                state        TEXT NOT NULL DEFAULT 'queued',
                cached       INTEGER NOT NULL DEFAULT 0,
                attempts     INTEGER NOT NULL DEFAULT 0,
                max_attempts INTEGER NOT NULL DEFAULT 3,
                worker       TEXT,
                lease_expires REAL,
                submitted    REAL NOT NULL,
                started      REAL,
                finished     REAL,
                error        TEXT,
                result       TEXT,
                version      INTEGER NOT NULL DEFAULT 1
            );
            """
        )
        conn.execute(
            "INSERT INTO jobs (id, task, name, kind, spec, submitted)"
            " VALUES ('legacy1', 'check', 'old', 'synth', '{}', ?)",
            (_time.time(),),
        )
        conn.commit()
        conn.close()

        queue = JobQueue(path)
        try:
            legacy = queue.get("legacy1")
            assert legacy is not None
            assert legacy.trace_id is None
            fresh = _enqueue(queue, "new1", trace_id="migrated-trace-01")
            assert fresh.trace_id == "migrated-trace-01"
            assert queue.get("new1").trace_id == "migrated-trace-01"
            # The traces table exists and serves the new row.
            assert queue.trace_spans(job_id="new1") == []
        finally:
            queue.close()

    def test_enqueue_without_trace_id_stays_null(self, queue):
        row = _enqueue(queue, "a1")
        assert row.trace_id is None
        assert queue.get("a1").to_dict()["trace_id"] is None
