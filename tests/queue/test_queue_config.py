"""QueueConfig: validation, environment layering, path resolution."""

import pytest

from repro.core.config import ConfigError
from repro.queue import QUEUE_FILENAME, QueueConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = QueueConfig()
        assert config.lease_seconds > config.heartbeat_seconds
        assert config.max_attempts >= 1
        assert config.rate == 0.0  # limiting off by default

    def test_heartbeat_must_stay_below_lease(self):
        with pytest.raises(ValueError, match="heartbeat"):
            QueueConfig(lease_seconds=10.0, heartbeat_seconds=10.0)
        with pytest.raises(ValueError, match="heartbeat"):
            QueueConfig(lease_seconds=5.0, heartbeat_seconds=9.0)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("lease_seconds", 0.0),
            ("heartbeat_seconds", -1.0),
            ("poll_seconds", 0.0),
            ("max_attempts", 0),
            ("rate", -1.0),
            ("burst", 0),
        ],
    )
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises((TypeError, ValueError)):
            QueueConfig(**{field: value})

    def test_merged_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown QueueConfig field"):
            QueueConfig().merged(lease=5.0)

    def test_merged_revalidates(self):
        with pytest.raises(ValueError, match="heartbeat"):
            QueueConfig().merged(lease_seconds=1.0)


class TestFromEnv:
    def test_reads_every_knob(self):
        config = QueueConfig.from_env(
            {
                "REPRO_QUEUE_PATH": "/tmp/q.sqlite3",
                "REPRO_QUEUE_LEASE": "120",
                "REPRO_QUEUE_HEARTBEAT": "20",
                "REPRO_QUEUE_POLL": "0.5",
                "REPRO_QUEUE_MAX_ATTEMPTS": "5",
                "REPRO_QUEUE_RATE": "2.5",
                "REPRO_QUEUE_BURST": "40",
            }
        )
        assert config.path == "/tmp/q.sqlite3"
        assert config.lease_seconds == 120.0
        assert config.heartbeat_seconds == 20.0
        assert config.poll_seconds == 0.5
        assert config.max_attempts == 5
        assert config.rate == 2.5
        assert config.burst == 40

    def test_empty_environment_returns_base(self):
        base = QueueConfig(lease_seconds=90.0)
        assert QueueConfig.from_env({}, base=base) is base

    def test_malformed_value_names_the_variable(self):
        with pytest.raises(ConfigError, match="REPRO_QUEUE_LEASE"):
            QueueConfig.from_env({"REPRO_QUEUE_LEASE": "soon"})

    def test_semantic_rejection_is_config_error(self):
        # Parseable floats that violate the heartbeat < lease invariant
        # must still surface as the one environment error type.
        with pytest.raises(ConfigError, match="heartbeat"):
            QueueConfig.from_env(
                {"REPRO_QUEUE_LEASE": "5", "REPRO_QUEUE_HEARTBEAT": "9"}
            )

    def test_round_trips_to_dict(self):
        config = QueueConfig(lease_seconds=30.0, heartbeat_seconds=5.0)
        assert QueueConfig(**config.to_dict()) == config


class TestResolvePath:
    def test_explicit_path_wins(self, tmp_path):
        config = QueueConfig(path=str(tmp_path / "x.db"))
        assert config.resolve_path(tmp_path / "store") == tmp_path / "x.db"

    def test_defaults_next_to_the_store(self, tmp_path):
        resolved = QueueConfig().resolve_path(tmp_path / "store")
        assert resolved == tmp_path / "store" / QUEUE_FILENAME
