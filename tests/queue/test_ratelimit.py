"""Token-bucket rate limiter: burst, refill, isolation, pruning."""

import pytest

import repro.queue.ratelimit as ratelimit
from repro.queue import TokenBucketLimiter


class TestDisabled:
    def test_rate_zero_allows_everything(self):
        limiter = TokenBucketLimiter(rate=0.0, burst=1)
        assert limiter.enabled is False
        for _ in range(1000):
            allowed, retry_after = limiter.allow("client")
            assert allowed is True and retry_after == 0.0
        assert limiter._buckets == {}  # no bookkeeping when disabled


class TestBucket:
    def test_burst_then_429(self):
        limiter = TokenBucketLimiter(rate=1.0, burst=3)
        assert limiter.enabled is True
        for _ in range(3):
            assert limiter.allow("c", now=100.0) == (True, 0.0)
        allowed, retry_after = limiter.allow("c", now=100.0)
        assert allowed is False
        assert retry_after == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        limiter = TokenBucketLimiter(rate=2.0, burst=2)
        assert limiter.allow("c", now=0.0)[0]
        assert limiter.allow("c", now=0.0)[0]
        assert limiter.allow("c", now=0.0)[0] is False
        # 0.5 s at 2 tokens/s refills exactly one token.
        assert limiter.allow("c", now=0.5) == (True, 0.0)
        assert limiter.allow("c", now=0.5)[0] is False

    def test_refill_caps_at_burst(self):
        limiter = TokenBucketLimiter(rate=10.0, burst=2)
        limiter.allow("c", now=0.0)
        # An hour idle refills to the cap, not to 36000 tokens.
        for _ in range(2):
            assert limiter.allow("c", now=3600.0)[0] is True
        assert limiter.allow("c", now=3600.0)[0] is False

    def test_clients_have_independent_buckets(self):
        limiter = TokenBucketLimiter(rate=1.0, burst=1)
        assert limiter.allow("a", now=0.0)[0] is True
        assert limiter.allow("a", now=0.0)[0] is False
        assert limiter.allow("b", now=0.0)[0] is True

    def test_retry_after_shrinks_as_tokens_refill(self):
        limiter = TokenBucketLimiter(rate=0.5, burst=1)
        limiter.allow("c", now=0.0)
        _, first = limiter.allow("c", now=0.0)
        _, later = limiter.allow("c", now=1.0)
        assert first == pytest.approx(2.0)
        assert later < first

    def test_rejects_bad_parameters(self):
        with pytest.raises((TypeError, ValueError)):
            TokenBucketLimiter(rate=-1.0)
        with pytest.raises((TypeError, ValueError)):
            TokenBucketLimiter(rate=1.0, burst=0)


class TestPrune:
    def test_idle_clients_are_forgotten(self, monkeypatch):
        monkeypatch.setattr(ratelimit, "_MAX_CLIENTS", 4)
        limiter = TokenBucketLimiter(rate=1.0, burst=1)
        # Five clients drain their buckets at t=0 ...
        for i in range(5):
            limiter.allow(f"old-{i}", now=0.0)
        assert len(limiter._buckets) == 5
        # ... then one more miss far in the future triggers the prune:
        # the old buckets have fully refilled and are dropped.
        limiter.allow("new", now=100.0)
        assert limiter.allow("new", now=100.0)[0] is False
        assert set(limiter._buckets) == {"new"}

    def test_active_clients_survive_the_prune(self, monkeypatch):
        monkeypatch.setattr(ratelimit, "_MAX_CLIENTS", 2)
        limiter = TokenBucketLimiter(rate=1.0, burst=10)
        for i in range(3):
            limiter.allow(f"idle-{i}", now=0.0)
        for _ in range(10):
            limiter.allow("busy", now=99.5)  # drained just before the prune
        limiter.allow("busy", now=100.0)
        assert "busy" in limiter._buckets
