"""End-to-end acceptance: the transient witness through every layer.

The acceptance scenario of the time-domain subsystem: on a seeded
synthetic non-passive model the simulated port-energy gain exceeds 1
(violation witnessed); after enforcement, the *same* stimulus reports
gain <= 1 + 1e-8 — asserted through the session facade, the batch
runner, and the HTTP service, with exact store round trips for
``SimulationResult`` and ``EnergyReport``.
"""

import json
import time

import pytest

from repro.api import Macromodel
from repro.batch import BatchRunner, ModelJob
from repro.core.config import RunConfig
from repro.service import ReproServer
from repro.synth import random_macromodel
from repro.timedomain import EnergyReport, SimulationResult, worst_tone
from repro.utils.serialization import to_jsonable

SEED = 7  # sigma_target 1.05 -> one clean violation band


@pytest.fixture(scope="module")
def violating_model():
    return random_macromodel(10, 2, seed=SEED, sigma_target=1.05)


def test_witness_then_enforce_same_stimulus(violating_model):
    session = Macromodel.from_pole_residue(violating_model)
    session.check_passivity(num_threads=2)
    report = session.passivity_report
    assert not report.passive and report.bands

    band = max(report.bands, key=lambda b: b.severity)
    stimulus = worst_tone(violating_model, band.peak_freq)

    # 1. The violation is witnessed in the time domain.
    session.simulate(stimulus, num_steps=200_000)
    gain_before = session.energy_report.energy_gain
    assert gain_before > 1.0, session.energy_report.summary()

    # 2. The repaired model under the *same* stimulus contracts.
    session.enforce()
    assert session.is_passive
    session.simulate(stimulus, num_steps=200_000)
    gain_after = session.energy_report.energy_gain
    assert gain_after <= 1.0 + 1e-8, session.energy_report.summary()

    # 3. Exact serialization round trips (the store contract).
    result = session.simulation_result
    rebuilt = SimulationResult.from_dict(result.to_dict())
    assert to_jsonable(rebuilt.to_dict()) == to_jsonable(result.to_dict())
    energy = EnergyReport.from_dict(session.energy_report.to_dict())
    assert energy == session.energy_report


def test_batch_simulate_task(violating_model, tmp_path):
    runner = BatchRunner(
        backend="serial",
        simulate=True,
        simulate_params={"num_steps": 2048},
    )
    report = runner.run([ModelJob(name="dev", model=violating_model)])
    assert report.all_ok
    row = report.result("dev")
    assert isinstance(row.energy_gain, float)
    payload = report.to_dict()
    json.dumps(payload)
    assert payload["results"][0]["energy_gain"] == row.energy_gain
    assert "simulation" in payload["results"][0]["session"]


def test_service_simulate_job_with_cached_resubmission(tmp_path):
    import urllib.request

    config = RunConfig(cache="readwrite", cache_dir=str(tmp_path / "store"))
    server = ReproServer.create(
        port=0, config=config, workers=1, backend="serial", timeout=300.0
    )
    server.start_background()
    try:
        spec = {
            "kind": "synth",
            "order": 6,
            "ports": 2,
            "seed": 3,
            "task": "simulate",
            "simulate": {"num_steps": 1024},
        }

        def post():
            request = urllib.request.Request(
                server.url + "/v1/jobs",
                data=json.dumps(spec).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())

        status, first = post()
        assert status == 202 and first["cached"] is False

        deadline = time.time() + 120
        record = None
        while time.time() < deadline:
            with urllib.request.urlopen(
                server.url + "/v1/jobs/" + first["id"], timeout=30
            ) as response:
                record = json.loads(response.read())
            if record["status"] in ("done", "error", "timeout"):
                break
            time.sleep(0.05)
        assert record["status"] == "done", record
        gain = record["result"]["energy_gain"]
        assert isinstance(gain, float) and 0.0 <= gain <= 1.0
        sim_payload = record["result"]["session"]["simulation"]
        rebuilt = SimulationResult.from_dict(sim_payload)
        assert to_jsonable(rebuilt.to_dict()) == to_jsonable(sim_payload)

        status, second = post()
        assert status == 200 and second["cached"] is True
        assert second["result"]["energy_gain"] == gain
    finally:
        server.stop()
