"""Chaos acceptance suite: the service under fire at every injection point.

The contract proven here (the PR's acceptance criterion): a 200-job
fleet submitted over HTTP while **every** registered injection point
fires with >= 5% probability still completes every job exactly once,
with results bit-identical to a fault-free run and no duplicated store
writes — and an induced store outage flips ``/healthz`` to ``degraded``
while it lasts and back to ``ok`` when it lifts.

The fleet size and seed are environment-tunable so CI's ``chaos-smoke``
job can pin them (``REPRO_CHAOS_JOBS``, ``REPRO_CHAOS_SEED``).
"""

import json
import os
import sqlite3
import time
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.core.config import RunConfig
from repro.faults import INJECTION_POINTS, FaultPlan
from repro.queue import QueueConfig
from repro.service import ReproServer

#: Every registered injection point, firing at >= 5%, with a fault kind
#: the hardened stack must fully absorb (retries, degradation, client
#: backoff) — never surface as a failed job.
CHAOS_PLAN = (
    "store.write:io_error@0.05;"
    "store.read:io_error@0.05;"
    "queue.enqueue:busy@0.05;"
    "queue.claim:busy@0.1;"
    "queue.ack:busy@0.05;"
    "queue.heartbeat:busy@0.05;"
    "worker.run:hang@0.05;"
    "http.request:error@0.05"
)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))
FLEET_SIZE = int(os.environ.get("REPRO_CHAOS_JOBS", "200"))


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def _api(base_url, path, doc=None, retries=25):
    """JSON round trip retrying 429/503 with a (test-capped) backoff."""
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    last = None
    for attempt in range(retries + 1):
        request = urllib.request.Request(
            base_url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method="GET" if doc is None else "POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            if exc.code not in (429, 503) or attempt >= retries:
                raise
            last = exc
            try:
                delay = float(exc.headers.get("Retry-After"))
            except (TypeError, ValueError):
                delay = 0.1
            time.sleep(min(delay, 0.2))  # honor the header, capped for CI
    raise AssertionError(f"retries exhausted: {last}")


def _spec(seed):
    return {
        "kind": "synth",
        "order": 6,
        "ports": 2,
        "seed": seed,
        "task": "check",
    }


def _fingerprint(result):
    """The bit-comparable core of one job result.

    Job names embed the submission's job id and timings vary run to
    run; the *computation* — the passivity verdict and every crossing
    frequency, bit for bit — must not.
    """
    return (
        result["is_passive"],
        tuple(result["crossings"]),
    )


def _run_fleet(tmp_path, subdir, plan_text=None):
    """Submit FLEET_SIZE jobs, drain them, return {seed: row}."""
    root = tmp_path / subdir
    server = ReproServer.create(
        port=0,
        config=RunConfig(cache="readwrite", cache_dir=str(root / "store")),
        workers=2,
        backend="serial",
        queue_path=str(root / "queue.sqlite3"),
        # Heartbeat fast enough to actually fire during millisecond
        # jobs, so the queue.heartbeat injection point sees traffic.
        queue_config=QueueConfig(
            heartbeat_seconds=0.02, lease_seconds=60.0
        ),
    )
    server.start_background()
    try:
        if plan_text is not None:
            faults.activate(FaultPlan.parse(plan_text, seed=CHAOS_SEED))
        submitted = {}
        for seed in range(FLEET_SIZE):
            record = _api(server.url, "/v1/jobs", _spec(seed))
            submitted[seed] = record["id"]

        rows = {}
        deadline = time.time() + 300.0
        pending = dict(submitted)
        while pending:
            assert time.time() < deadline, (
                f"{len(pending)} job(s) still pending at the deadline"
            )
            for seed, job_id in list(pending.items()):
                row = _api(server.url, f"/v1/jobs/{job_id}")
                if row["status"] in ("done", "error", "timeout", "failed"):
                    rows[seed] = row
                    del pending[seed]
            time.sleep(0.05)

        faults.deactivate()
        store_entries = server.manager.store.stats()["entries"]
        worker_writes = sum(
            store.counters["writes"]
            for worker, _thread in server.manager._embedded
            for store in worker._stores.values()
        )
        return rows, store_entries, worker_writes
    finally:
        faults.deactivate()
        server.stop()


class TestChaosFleet:
    def test_fleet_survives_faults_at_every_point(self, tmp_path):
        # The plan must cover the whole registry — if a new injection
        # point is added, this test fails until the chaos plan does too.
        plan = FaultPlan.parse(CHAOS_PLAN, seed=CHAOS_SEED)
        assert set(plan.by_point) == set(INJECTION_POINTS)
        assert all(
            spec.probability >= 0.05 for spec in plan.specs
        )

        chaos_rows, entries, writes = _run_fleet(
            tmp_path, "chaos", CHAOS_PLAN
        )
        baseline_rows, _, _ = _run_fleet(tmp_path, "baseline")

        # Every job completed, exactly once, under fire.
        assert len(chaos_rows) == FLEET_SIZE
        bad = {
            seed: (row["status"], row["error"])
            for seed, row in chaos_rows.items()
            if row["status"] != "done"
        }
        assert not bad, f"jobs failed under chaos: {bad}"
        assert all(
            row["attempts"] == 1 for row in chaos_rows.values()
        ), "a job ran more than once under chaos"
        assert all(not row["cached"] for row in chaos_rows.values())

        # No duplicated store writes.  The workers' job-level put
        # counters must account for exactly one write per job — minus
        # the (rare) jobs that recorded a store warning instead of a
        # write (put retries exhausted, or degraded to cache-off).  A
        # double-executed job would push the sum past the fleet size.
        keys = {row["key"] for row in chaos_rows.values()}
        assert len(keys) == FLEET_SIZE
        warned = sum(
            1
            for row in chaos_rows.values()
            if (row["result"] or {}).get("warnings")
        )
        assert writes + warned == FLEET_SIZE
        assert warned <= FLEET_SIZE // 10, (
            "store degradation should be the exception, not the rule"
        )
        # Stage-level cache entries ride along; the scan can only hold
        # entries someone actually wrote.
        assert entries >= writes

        # Bit-correct under fire: the passivity verdict and every
        # crossing frequency match the fault-free run exactly.
        for seed in range(FLEET_SIZE):
            chaos_result = chaos_rows[seed]["result"]
            base_result = baseline_rows[seed]["result"]
            assert _fingerprint(chaos_result) == _fingerprint(base_result)


class TestStoreOutage:
    def test_degraded_during_outage_ok_after(self, tmp_path):
        root = tmp_path / "outage"
        server = ReproServer.create(
            port=0,
            config=RunConfig(
                cache="readwrite", cache_dir=str(root / "store")
            ),
            workers=2,
            backend="serial",
            queue_path=str(root / "queue.sqlite3"),
        )
        server.start_background()
        try:
            assert _api(server.url, "/healthz")["status"] == "ok"

            # Kill the store: every read and write now fails.
            faults.activate(
                FaultPlan.parse(
                    "store.write:io_error@1;store.read:io_error@1"
                )
            )
            health = _api(server.url, "/healthz")
            assert health["status"] == "degraded"
            assert health["subsystems"]["store"]["status"] == "failing"
            assert health["subsystems"]["queue"]["status"] == "ok"

            # Jobs degrade (cache off, warning recorded) — never fail.
            finished = []
            for seed in (9001, 9002):
                record = _api(server.url, "/v1/jobs", _spec(seed))
                deadline = time.time() + 120.0
                while True:
                    row = _api(server.url, f"/v1/jobs/{record['id']}")
                    if row["status"] in ("done", "error", "timeout", "failed"):
                        finished.append(row)
                        break
                    assert time.time() < deadline
                    time.sleep(0.05)
            for row in finished:
                assert row["status"] == "done", row["error"]
                assert row["result"]["warnings"], (
                    "a store outage must be recorded on the result"
                )

            # Outage lifts: the next health probe heals the verdict.
            faults.deactivate()
            health = _api(server.url, "/healthz")
            assert health["status"] == "ok"
            assert health["subsystems"]["store"]["status"] == "ok"
        finally:
            faults.deactivate()
            server.stop()


class TestQueueOutage:
    def test_writes_503_reads_keep_serving(self, tmp_path):
        root = tmp_path / "qdead"
        server = ReproServer.create(
            port=0,
            config=RunConfig(
                cache="readwrite", cache_dir=str(root / "store")
            ),
            workers=0,  # pure front-end; no embedded workers to confuse
            queue_path=str(root / "queue.sqlite3"),
        )
        server.start_background()
        try:
            key = "ee" * 20
            assert server.manager.store.put(
                key, {"name": "kept"}, stage="test"
            )
            assert _api(server.url, "/healthz")["status"] == "ok"

            server.manager.queue.close()  # the queue database dies

            health = _api(server.url, "/healthz")
            assert health["status"] == "degraded"
            assert health["subsystems"]["queue"]["status"] == "failing"

            # Writes: 503 with Retry-After, the retryable signal.
            request = urllib.request.Request(
                server.url + "/v1/jobs",
                data=json.dumps(_spec(1)).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 503
            assert excinfo.value.headers.get("Retry-After") is not None
            body = json.loads(excinfo.value.read())
            assert body["error"]["code"] == "unavailable"

            # Reads: stored results keep serving from the live store.
            stored = _api(server.url, f"/v1/results/{key}")
            assert stored["payload"] == {"name": "kept"}

            # Refused submissions are counted (but stats needs the
            # queue, so assert on the manager directly).
            assert server.manager._unavailable >= 1
        finally:
            server.stop()
