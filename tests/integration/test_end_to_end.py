"""Integration tests: the full macromodeling flow across subsystems.

These exercise the pipeline the paper's introduction describes: tabulated
scattering data -> rational fitting (Vector Fitting) -> structured
realization -> Hamiltonian passivity characterization -> perturbation
enforcement -> re-verification, plus the file-format layer.
"""

import numpy as np
import pytest

from repro import (
    characterize_passivity,
    enforce_passivity,
    find_imaginary_eigenvalues,
    pole_residue_to_simo,
    read_touchstone,
    vector_fit,
    write_touchstone,
)
from repro.hamiltonian.spectral import imaginary_eigenvalues_dense
from repro.passivity.metrics import grid_passivity_margin
from repro.synth import random_macromodel


@pytest.fixture(scope="module")
def ground_truth():
    """A mildly non-passive 'device' serving as the measurement source."""
    return random_macromodel(12, 3, seed=91, sigma_target=1.04)


@pytest.fixture(scope="module")
def tabulated(ground_truth):
    freqs = np.linspace(0.01, 16.0, 300)
    return freqs, ground_truth.frequency_response(freqs)


class TestFitCharacterizeEnforce:
    def test_full_flow(self, ground_truth, tabulated):
        freqs, samples = tabulated
        # 1. Identify a rational macromodel from the tabulated data.
        fit = vector_fit(freqs, samples, num_poles=ground_truth.num_poles)
        assert fit.rms_error < 1e-8

        # 2. Characterize passivity via the Hamiltonian eigensolver.
        report = characterize_passivity(fit.model, num_threads=2)
        assert not report.passive  # the device violates by construction

        # 3. Enforce.
        enforced = enforce_passivity(fit.model, num_threads=2)
        assert enforced.passive

        # 4. Independent verification: dense Hamiltonian + dense grid.
        simo = pole_residue_to_simo(enforced.model)
        assert imaginary_eigenvalues_dense(simo).size == 0
        grid = np.linspace(0.0, 24.0, 2000)
        assert grid_passivity_margin(enforced.model, grid) > 0.0

        # 5. The enforced model still fits the data well away from the
        # violation bands (accuracy preservation).
        fitted = enforced.model.frequency_response(freqs)
        rel_err = np.linalg.norm(fitted - samples) / np.linalg.norm(samples)
        assert rel_err < 0.05

    def test_fit_then_hamiltonian_matches_source(self, ground_truth, tabulated):
        """Crossings of the fitted model match the source model's."""
        freqs, samples = tabulated
        fit = vector_fit(freqs, samples, num_poles=ground_truth.num_poles)
        src = find_imaginary_eigenvalues(ground_truth, num_threads=2)
        fitted = find_imaginary_eigenvalues(fit.model, num_threads=2)
        assert src.num_crossings == fitted.num_crossings
        np.testing.assert_allclose(
            np.sort(src.omegas), np.sort(fitted.omegas), rtol=1e-4, atol=1e-6
        )


class TestTouchstoneFlow:
    def test_roundtrip_through_file(self, ground_truth, tmp_path):
        freqs_rad = np.linspace(0.01, 16.0, 200)
        samples = ground_truth.frequency_response(freqs_rad)
        # Angular rad/s -> Hz for the file format.
        path = write_touchstone(
            tmp_path / "device.s3p", freqs_rad / (2 * np.pi), samples
        )
        data = read_touchstone(path)
        fit = vector_fit(data.freqs_rad, data.matrices, num_poles=12)
        assert fit.rms_error < 1e-7
        report = characterize_passivity(fit.model)
        assert not report.passive


class TestSolverConsistency:
    @pytest.mark.parametrize("seed", [101, 102, 103])
    def test_all_strategies_and_dense_agree(self, seed):
        model = random_macromodel(10, 3, seed=seed, sigma_target=1.07)
        simo = pole_residue_to_simo(model)
        truth = imaginary_eigenvalues_dense(simo)
        for strategy, threads in [("bisection", 1), ("queue", 2), ("static", 2)]:
            result = find_imaginary_eigenvalues(
                simo, num_threads=threads, strategy=strategy
            )
            assert result.num_crossings == truth.size, (strategy, threads)
            if truth.size:
                np.testing.assert_allclose(
                    np.sort(result.omegas), truth, atol=1e-5
                )

    def test_immittance_representation_end_to_end(self):
        model = random_macromodel(8, 2, seed=104, sigma_target=None)
        shifted = model.with_d(model.d + 2.0 * np.eye(2))
        simo = pole_residue_to_simo(shifted)
        truth = imaginary_eigenvalues_dense(simo, representation="immittance")
        result = find_imaginary_eigenvalues(
            simo, num_threads=2, representation="immittance"
        )
        assert result.num_crossings == truth.size
        if truth.size:
            np.testing.assert_allclose(np.sort(result.omegas), truth, atol=1e-5)
