"""Failure-injection and degenerate-input tests.

A production library must fail loudly and informatively on bad inputs and
survive degenerate-but-legal ones.  These tests poke every layer with the
pathological cases DESIGN.md calls out: unstable poles, singular direct
terms, empty/degenerate bands, trivial models, and corrupted data.
"""

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.solver import find_imaginary_eigenvalues
from repro.macromodel.rational import PoleResidueModel
from repro.passivity.characterization import characterize_passivity
from repro.passivity.enforcement import enforce_passivity
from repro.synth import random_macromodel
from repro.vectfit.vector_fitting import vector_fit


def tiny_model(pole=-1.0, residue=0.3, d=0.1):
    return PoleResidueModel(
        np.array([pole], dtype=complex),
        np.array([[[residue]]], dtype=complex),
        np.array([[d]]),
    )


class TestDegenerateModels:
    def test_single_pole_single_port(self):
        """The smallest possible model sweeps cleanly."""
        result = find_imaginary_eigenvalues(tiny_model())
        assert result.coverage_gaps() == []

    def test_single_pole_with_crossing(self):
        """|H(0)| = d + r/|p| > 1: crossings must exist and be found."""
        model = tiny_model(residue=1.5)
        result = find_imaginary_eigenvalues(model)
        assert result.num_crossings >= 1
        for w in result.omegas:
            h = model.transfer(1j * w)
            assert abs(abs(h[0, 0]) - 1.0) < 1e-6

    def test_marginally_stable_pole_rejected(self):
        model = PoleResidueModel(
            np.array([2j, -2j]),
            np.array([[[0.1 + 0j]], [[0.1 - 0j]]]),
            np.zeros((1, 1)),
        )
        with pytest.raises(ValueError, match="stable"):
            find_imaginary_eigenvalues(model)

    def test_sigma_d_equal_one_rejected(self):
        model = tiny_model(d=1.0)
        with pytest.raises(ValueError, match="asymptotic"):
            find_imaginary_eigenvalues(model)

    def test_sigma_d_above_one_rejected_with_hint(self):
        model = tiny_model(d=1.3)
        with pytest.raises(ValueError, match="asymptotic"):
            characterize_passivity(model)

    def test_enforcement_clips_bad_d_and_proceeds(self):
        model = tiny_model(d=1.3, residue=0.05)
        result = enforce_passivity(model)
        assert np.linalg.svd(result.model.d, compute_uv=False).max() < 1.0

    def test_pure_real_pole_model(self):
        """No complex pairs at all (RC-like network)."""
        model = PoleResidueModel(
            np.array([-1.0, -2.0, -5.0], dtype=complex),
            0.2 * np.ones((3, 1, 1), dtype=complex),
            np.array([[0.05]]),
        )
        result = find_imaginary_eigenvalues(model)
        assert result.coverage_gaps() == []

    def test_zero_residue_model_is_passive(self):
        model = PoleResidueModel(
            np.array([-1.0 + 0j]),
            np.zeros((1, 1, 1), dtype=complex),
            np.array([[0.2]]),
        )
        report = characterize_passivity(model)
        assert report.passive


class TestDegenerateBands:
    def test_explicit_narrow_band(self):
        model = random_macromodel(8, 2, seed=201, sigma_target=0.9)
        result = find_imaginary_eigenvalues(model, omega_min=1.0, omega_max=1.001)
        assert result.band == (1.0, 1.001)
        assert result.coverage_gaps() == []

    def test_band_away_from_dc(self):
        model = random_macromodel(8, 2, seed=202, sigma_target=1.08)
        full = find_imaginary_eigenvalues(model)
        if full.num_crossings == 0:
            pytest.skip("model has no crossings")
        w = full.omegas[0]
        window = find_imaginary_eigenvalues(
            model, omega_min=max(0.0, w - 0.5), omega_max=w + 0.5
        )
        assert any(abs(x - w) < 1e-5 for x in window.omegas)

    def test_inverted_band_rejected(self):
        model = random_macromodel(8, 2, seed=203, sigma_target=0.9)
        with pytest.raises(ValueError, match="empty band"):
            find_imaginary_eigenvalues(model, omega_min=2.0, omega_max=1.0)


class TestCorruptedFittingData:
    def test_nan_samples_rejected(self):
        freqs = np.linspace(0.1, 10.0, 50)
        samples = np.ones((50, 1, 1), dtype=complex)
        samples[7] = np.nan
        with pytest.raises(ValueError):
            vector_fit(freqs, samples, num_poles=4)

    def test_unsorted_frequencies_rejected(self):
        freqs = np.array([1.0, 0.5, 2.0])
        samples = np.ones((3, 1, 1), dtype=complex)
        with pytest.raises(ValueError, match="increasing"):
            vector_fit(freqs, samples, num_poles=1)

    def test_fit_of_constant_data(self):
        """Pure direct-term data: residues should be ~0."""
        freqs = np.linspace(0.1, 10.0, 60)
        samples = np.full((60, 2, 2), 0.3 + 0j)
        samples[:, 0, 1] = samples[:, 1, 0] = 0.0
        fit = vector_fit(freqs, samples, num_poles=2)
        assert fit.rms_error < 1e-8
        assert np.max(np.abs(fit.model.residues)) < 1e-6


class TestSolverRobustness:
    def test_shift_landing_on_eigenvalue(self):
        """Force a band edge exactly onto a crossing frequency."""
        model = random_macromodel(8, 2, seed=204, sigma_target=1.06)
        full = find_imaginary_eigenvalues(model)
        if full.num_crossings == 0:
            pytest.skip("model has no crossings")
        w = float(full.omegas[0])
        # omega_max exactly at the crossing: edge shift sits on it.
        result = find_imaginary_eigenvalues(model, omega_max=w)
        assert any(abs(x - w) < 1e-5 for x in result.omegas)

    def test_tight_options_still_correct(self):
        model = random_macromodel(8, 2, seed=205, sigma_target=1.06)
        tight = SolverOptions(krylov_dim=24, num_wanted=2, max_restarts=40)
        loose = find_imaginary_eigenvalues(model)
        constrained = find_imaginary_eigenvalues(model, options=tight)
        assert constrained.num_crossings == loose.num_crossings

    def test_large_kappa(self):
        model = random_macromodel(8, 2, seed=206, sigma_target=1.05)
        result = find_imaginary_eigenvalues(
            model, num_threads=2, strategy="queue",
            options=SolverOptions(kappa=6),
        )
        assert result.coverage_gaps() == []
