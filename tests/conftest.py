"""Shared fixtures and model factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import pole_residue_to_simo


def make_pole_residue(
    seed: int = 0,
    num_ports: int = 3,
    num_real: int = 2,
    num_pairs: int = 3,
    residue_scale: float = 0.4,
    d_scale: float = 0.05,
) -> PoleResidueModel:
    """Small deterministic pole/residue model for unit tests."""
    rng = np.random.default_rng(seed)
    real_poles = -rng.uniform(0.5, 2.0, num_real)
    pair_poles = -rng.uniform(0.1, 1.0, num_pairs) + 1j * rng.uniform(
        1.0, 12.0, num_pairs
    )
    poles = np.concatenate(
        [real_poles.astype(complex), pair_poles, np.conj(pair_poles)]
    )
    m = poles.size
    residues = np.zeros((m, num_ports, num_ports), dtype=complex)
    for i in range(num_real):
        residues[i] = residue_scale * rng.standard_normal((num_ports, num_ports))
    for i in range(num_pairs):
        block = residue_scale * (
            rng.standard_normal((num_ports, num_ports))
            + 1j * rng.standard_normal((num_ports, num_ports))
        )
        residues[num_real + i] = block
        residues[num_real + num_pairs + i] = np.conj(block)
    d = d_scale * rng.standard_normal((num_ports, num_ports))
    return PoleResidueModel(poles, residues, d)


@pytest.fixture
def small_model():
    """A 3-port, 8-pole model (order 24) with mild dynamics."""
    return make_pole_residue(seed=0)


@pytest.fixture
def small_simo(small_model):
    """The structured realization of ``small_model``."""
    return pole_residue_to_simo(small_model)


@pytest.fixture
def rng():
    """Deterministic generator for per-test randomness."""
    return np.random.default_rng(12345)
