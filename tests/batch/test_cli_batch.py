"""CLI tests for the ``repro batch`` subcommand."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.synth import random_macromodel
from repro.touchstone import write_touchstone


@pytest.fixture(scope="module")
def touchstone_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    freqs = np.linspace(0.05, 14.0, 200)
    for k, sigma in enumerate((0.9, 1.04)):
        model = random_macromodel(8, 2, seed=40 + k, sigma_target=sigma)
        write_touchstone(
            root / f"dev{k}.s2p",
            freqs / (2 * np.pi),
            model.frequency_response(freqs),
        )
    return root


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["batch", "--synth", "4"])
        assert args.synth == 4
        assert args.backend == "process"
        assert args.workers is None

    def test_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--backend", "gpu"])


class TestRun:
    def test_synth_fleet_serial(self, capsys):
        code = main(
            [
                "batch",
                "--synth",
                "2",
                "--synth-order",
                "6",
                "--backend",
                "serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 jobs, 2 ok" in out

    def test_touchstone_glob_with_report(self, touchstone_files, tmp_path, capsys):
        out_path = tmp_path / "fleet.json"
        code = main(
            [
                "batch",
                str(touchstone_files / "*.s2p"),
                "--poles",
                "16",
                "--backend",
                "serial",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["num_jobs"] == 2
        assert payload["num_ok"] == 2
        names = [r["name"] for r in payload["results"]]
        assert names == ["dev0", "dev1"]

    def test_json_stdout_is_parseable(self, capsys):
        code = main(
            [
                "batch",
                "--synth",
                "2",
                "--synth-order",
                "6",
                "--backend",
                "serial",
                "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["num_ok"] == 2
        # Human-readable summary goes to stderr under --json.
        assert "2 jobs" in captured.err

    def test_failed_job_exit_code(self, capsys):
        code = main(["batch", "missing-file.s2p", "--backend", "serial"])
        assert code == 4
        assert "error" in capsys.readouterr().out

    def test_no_inputs_is_an_error(self, capsys):
        code = main(["batch"])
        assert code == 1
        assert "nothing to run" in capsys.readouterr().err

    def test_process_backend_end_to_end(self, capsys):
        code = main(
            [
                "batch",
                "--synth",
                "2",
                "--synth-order",
                "6",
                "--workers",
                "2",
                "--backend",
                "process",
                "--timeout",
                "300",
            ]
        )
        assert code == 0
        assert "process backend" in capsys.readouterr().out
