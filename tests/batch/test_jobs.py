"""Unit tests for batch job specifications and source expansion."""

import pickle

import numpy as np
import pytest

from repro.api import Macromodel
from repro.batch import ModelJob, SynthJob, TouchstoneJob, expand_jobs, synth_fleet
from repro.synth import random_macromodel
from repro.touchstone.writer import write_touchstone


@pytest.fixture
def touchstone_dir(tmp_path):
    freqs_hz = np.linspace(1e6, 1e9, 40)
    model = random_macromodel(6, 2, seed=5, sigma_target=0.9)
    response = model.frequency_response(2.0 * np.pi * freqs_hz)
    for k in range(3):
        write_touchstone(tmp_path / f"dev{k}.s2p", freqs_hz, response)
    return tmp_path


class TestSynthFleet:
    def test_seeds_and_names(self):
        fleet = synth_fleet(3, base_seed=10)
        assert [job.seed for job in fleet] == [10, 11, 12]
        assert [job.name for job in fleet] == ["synth-10", "synth-11", "synth-12"]

    def test_count_validated(self):
        with pytest.raises(ValueError, match="count"):
            synth_fleet(0)

    def test_jobs_picklable_and_tiny(self):
        fleet = synth_fleet(2)
        payload = pickle.dumps(fleet)
        assert len(payload) < 2000
        assert pickle.loads(payload) == fleet

    def test_open_session_builds_model(self):
        job = synth_fleet(1, order_per_column=6)[0]
        session = job.open_session(None)
        assert session.model is not None
        assert not job.needs_fit


class TestExpandJobs:
    def test_glob_expansion_sorted(self, touchstone_dir):
        jobs = expand_jobs(str(touchstone_dir / "*.s2p"))
        assert [job.name for job in jobs] == ["dev0", "dev1", "dev2"]
        assert all(isinstance(job, TouchstoneJob) for job in jobs)

    def test_empty_glob_raises(self, touchstone_dir):
        with pytest.raises(FileNotFoundError, match="matched no files"):
            expand_jobs(str(touchstone_dir / "*.s9p"))

    def test_explicit_path_kept_even_if_missing(self):
        (job,) = expand_jobs("does-not-exist.s2p")
        assert isinstance(job, TouchstoneJob)

    def test_models_and_sessions(self):
        model = random_macromodel(6, 2, seed=1)
        session = Macromodel.from_pole_residue(model)
        jobs = expand_jobs([model, session])
        assert isinstance(jobs[0], ModelJob) and jobs[0].model is model
        assert isinstance(jobs[1], ModelJob) and jobs[1].session is session

    def test_mixed_sources_with_unique_names(self, touchstone_dir):
        jobs = expand_jobs(
            [
                str(touchstone_dir / "dev0.s2p"),
                str(touchstone_dir / "dev0.s2p"),
                SynthJob(name="s", seed=1),
            ]
        )
        names = [job.name for job in jobs]
        assert len(names) == len(set(names))

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="no jobs"):
            expand_jobs([])

    def test_duplicate_explicit_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate job name"):
            expand_jobs([SynthJob(name="a", seed=1), SynthJob(name="a", seed=2)])

    def test_bad_source_type_rejected(self):
        with pytest.raises(TypeError, match="job sources"):
            expand_jobs([42])

    def test_describe_is_json_friendly(self):
        import json

        for job in (
            SynthJob(name="a", seed=3),
            TouchstoneJob(name="b", path="x.s2p"),
            ModelJob(name="c", model=random_macromodel(4, 2, seed=0)),
        ):
            json.dumps(job.describe())
