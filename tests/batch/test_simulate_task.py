"""The centralized task registry and the fleet-level simulate stage."""

import pytest

from repro.batch import (
    VALID_TASKS,
    BatchRunner,
    ModelJob,
    task_settings,
)
from repro.synth import random_macromodel


def test_registry_names_every_task():
    assert VALID_TASKS == ("fit", "check", "enforce", "hinf", "simulate")


@pytest.mark.parametrize(
    ("task", "expected"),
    [
        ("fit", {}),
        ("check", {}),
        ("enforce", {"enforce": True}),
        ("hinf", {"hinf": True}),
        ("simulate", {"simulate": True}),
    ],
)
def test_task_settings_mapping(task, expected):
    assert task_settings(task) == expected


def test_task_settings_returns_copies():
    task_settings("enforce")["enforce"] = False
    assert task_settings("enforce") == {"enforce": True}


def test_unknown_task_lists_alternatives():
    with pytest.raises(ValueError) as err:
        task_settings("profile")
    message = str(err.value)
    for task in VALID_TASKS:
        assert task in message


def test_runner_simulate_flag_builds_settings():
    runner = BatchRunner(
        backend="serial", simulate=True, simulate_params={"num_steps": 128}
    )
    assert runner.settings.simulate is True
    assert runner.settings.simulate_params == {"num_steps": 128}
    off = BatchRunner(backend="serial")
    assert off.settings.simulate is False
    assert off.settings.simulate_params is None


def test_fleet_rows_carry_energy_gain():
    passive = random_macromodel(6, 2, seed=1, sigma_target=0.9)
    report = BatchRunner(
        backend="serial", simulate=True, simulate_params={"num_steps": 512}
    ).run([ModelJob(name="passive", model=passive)])
    row = report.result("passive")
    assert row.ok
    assert 0.0 <= row.energy_gain <= 1.0 + 1e-8
    assert row.to_dict()["energy_gain"] == row.energy_gain


def test_rows_without_simulation_have_no_gain():
    model = random_macromodel(6, 2, seed=1, sigma_target=0.9)
    report = BatchRunner(backend="serial").run([ModelJob(name="m", model=model)])
    assert report.result("m").energy_gain is None
    assert report.result("m").to_dict()["energy_gain"] is None
