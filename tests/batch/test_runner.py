"""Unit tests for the batch fleet runner."""

import json
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.api import Macromodel, RunConfig
from repro.batch import BatchRunner, FleetReport, SynthJob, synth_fleet
from repro.batch.jobs import BatchJob, TouchstoneJob
from repro.batch.runner import _execute_job, JobSettings


@dataclass(frozen=True)
class SleepJob(BatchJob):
    """Test-only job that hangs, to exercise the timeout kill path."""

    seconds: float = 60.0

    def open_session(self, config):
        time.sleep(self.seconds)
        raise AssertionError("the sleep should have been terminated")


@pytest.fixture(scope="module")
def small_fleet():
    return synth_fleet(3, order_per_column=6, base_seed=50)


class TestSerialBackend:
    def test_all_ok_in_input_order(self, small_fleet):
        report = BatchRunner(backend="serial").run(small_fleet)
        assert isinstance(report, FleetReport)
        assert report.all_ok
        assert [r.name for r in report.results] == [j.name for j in small_fleet]
        assert report.backend == "serial"

    def test_results_carry_crossings_and_payload(self, small_fleet):
        report = BatchRunner(backend="serial").run(small_fleet)
        for result in report.results:
            assert result.is_passive is not None
            assert result.session is not None
            assert result.source["kind"] == "synth"
        json.dumps(report.to_dict())

    def test_error_capture_does_not_sink_fleet(self, small_fleet):
        sources = [TouchstoneJob(name="missing", path="no-such.s2p")]
        sources += list(small_fleet)
        report = BatchRunner(backend="serial").run(sources)
        assert report.num_failed == 1
        assert report.num_ok == len(small_fleet)
        bad = report.result("missing")
        assert bad.status == "error"
        assert "missing" not in report.crossings_by_name()

    def test_enforce_stage(self):
        report = BatchRunner(backend="serial", enforce=True).run(
            synth_fleet(1, order_per_column=6, base_seed=50)
        )
        (result,) = report.results
        assert result.ok
        assert result.is_passive  # violating model was repaired
        assert result.crossings  # pre-enforcement fingerprint retained

    def test_serial_budget_overrun_relabelled(self, small_fleet):
        # A microscopic budget: every job completes but is re-labelled.
        report = BatchRunner(backend="serial", timeout=1e-6).run(small_fleet)
        assert all(r.status == "timeout" for r in report.results)
        assert "cannot interrupt" in report.results[0].error
        assert all(r.elapsed > 0 for r in report.results)

    def test_summary_readable(self, small_fleet):
        text = BatchRunner(backend="serial").run(small_fleet).summary()
        assert "3 jobs" in text
        for job in small_fleet:
            assert job.name in text


class TestProcessBackend:
    def test_matches_serial_exactly(self, small_fleet):
        serial = BatchRunner(backend="serial").run(small_fleet)
        process = BatchRunner(backend="process", workers=2).run(small_fleet)
        assert process.all_ok
        assert process.backend == "process"
        a = serial.crossings_by_name()
        b = process.crossings_by_name()
        assert set(a) == set(b)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_timeout_terminates_worker(self, small_fleet):
        sources = [SleepJob(name="hang", seconds=120.0)] + list(small_fleet)
        started = time.perf_counter()
        report = BatchRunner(
            backend="process", workers=2, timeout=1.5
        ).run(sources)
        wall = time.perf_counter() - started
        assert wall < 60.0, "the hung worker was not terminated"
        hung = report.result("hang")
        assert hung.status == "timeout"
        assert "terminated" in hung.error
        assert report.num_ok == len(small_fleet)

    def test_worker_crash_reported(self, small_fleet):
        @dataclass(frozen=True)
        class _Local(BatchJob):
            pass

        # A job class defined inside the test function cannot be pickled
        # by reference: the runner must surface an error row, not hang
        # or raise.
        sources = [_Local(name="unpicklable")] + list(small_fleet)
        report = BatchRunner(backend="process", workers=2).run(sources)
        bad = report.result("unpicklable")
        assert bad.status == "error"
        assert "picklable" in bad.error
        assert report.num_ok == len(small_fleet)

    def test_nested_process_backend_downgraded(self):
        job = SynthJob(name="s", order_per_column=6, seed=50)
        settings = JobSettings(
            config=RunConfig(num_threads=2, backend="process"),
            in_process_pool=True,
        )
        result = _execute_job(job, settings)
        assert result.ok
        # The inner sweep ran on the auto backend (thread queue), not a
        # nested process pool.
        assert result.session["config"]["backend"] == "auto"


class TestThreadBackend:
    def test_runs_fleet(self, small_fleet):
        report = BatchRunner(backend="thread", workers=2).run(small_fleet)
        assert report.all_ok
        assert report.backend == "thread"


class TestValidation:
    def test_bad_backend(self):
        with pytest.raises(ValueError, match="batch backend"):
            BatchRunner(backend="gpu")

    def test_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            BatchRunner(timeout=0.0)

    def test_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            BatchRunner(workers=0)


class TestFacadeMap:
    def test_map_runs_fleet(self, small_fleet):
        report = Macromodel.map(small_fleet, backend="serial")
        assert report.all_ok

    def test_map_accepts_models(self):
        from repro.synth import random_macromodel

        model = random_macromodel(6, 2, seed=9, sigma_target=0.9)
        report = Macromodel.map([model], backend="serial")
        assert report.all_ok
        assert report.results[0].is_passive
