"""Unit tests for table/figure formatting and the experiment drivers."""

import pytest

from repro.core.options import SolverOptions
from repro.reporting.fig6 import run_fig6
from repro.reporting.table1 import run_case, run_table1
from repro.reporting.tables import Fig6Point, Table1Row, format_fig6, format_table1
from repro.synth.workloads import TABLE1_CASES


def make_row(**overrides):
    base = dict(
        case_name="Case 1",
        order=1000,
        ports=20,
        nlambda=6,
        tau1=13.7,
        tau_t_mean=0.65,
        tau_t_max=0.84,
        eta_wall=21.0,
        eta_work=1.3,
        eta_proj=20.8,
        shifts=30,
        eliminated=5,
        paper_nlambda=6,
        paper_eta=21.028,
    )
    base.update(overrides)
    return Table1Row(**base)


class TestFormatting:
    def test_table1_layout(self):
        text = format_table1([make_row()], num_threads=16)
        lines = text.splitlines()
        assert "tau16[s]" in lines[0]
        assert "Case 1" in lines[2]
        assert "21.028" in lines[2]

    def test_table1_missing_paper_refs(self):
        text = format_table1(
            [make_row(paper_nlambda=None, paper_eta=None)], num_threads=4
        )
        assert text.splitlines()[2].rstrip().endswith("-")

    def test_fig6_layout(self):
        points = [
            Fig6Point(1, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0),
            Fig6Point(2, 1.8, 0.1, 1.9, 0.05, 1.95, 0.05),
        ]
        text = format_fig6(points)
        assert "eta_proj" in text
        assert "projected speedup" in text
        assert "|" in text.splitlines()[-1]


class TestDrivers:
    """Tiny-scale smoke runs of the actual experiment drivers."""

    @pytest.fixture(scope="class")
    def quick_options(self):
        return SolverOptions(krylov_dim=40, num_wanted=4)

    def test_run_case_row_fields(self, quick_options):
        row = run_case(
            TABLE1_CASES[0],
            scale=0.04,
            num_threads=2,
            repeats=1,
            options=quick_options,
        )
        assert row.order == 40  # 1000 * 0.04
        assert row.ports == 20
        assert row.tau1 > 0
        assert row.eta_proj > 0
        assert row.shifts > 0

    def test_run_table1_subset(self, quick_options):
        rows = run_table1(
            cases=TABLE1_CASES[:2],
            scale=0.04,
            num_threads=2,
            repeats=1,
            options=quick_options,
        )
        assert len(rows) == 2
        assert rows[0].case_name == "Case 1"

    def test_run_fig6_points(self, quick_options):
        points = run_fig6(
            scale=0.03,
            threads=(1, 2),
            repeats=2,
            options=quick_options,
        )
        assert [p.threads for p in points] == [1, 2]
        for p in points:
            assert p.eta_proj_mean > 0
            assert p.eta_proj_std >= 0
