"""Unit tests for the multicore speedup projection."""

import numpy as np
import pytest

from repro.core.results import ShiftRecord, SingleShiftResult, SolveResult
from repro.reporting.projection import (
    SpeedupProjection,
    project_speedup,
    simulate_makespan,
)


class TestSimulateMakespan:
    def test_empty(self):
        assert simulate_makespan([], 4) == 0.0

    def test_single_worker_is_sum(self):
        assert simulate_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_perfect_split(self):
        assert simulate_makespan([1.0, 1.0, 1.0, 1.0], 2) == 2.0

    def test_long_task_dominates(self):
        # One 10-unit task dominates regardless of worker count.
        assert simulate_makespan([10.0, 1.0, 1.0], 8) == 10.0

    def test_list_scheduling_order_matters(self):
        # Greedy in-order assignment: [3, 3, 2, 2] on 2 workers -> 5.
        assert simulate_makespan([3.0, 3.0, 2.0, 2.0], 2) == 5.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            simulate_makespan([-1.0], 2)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 0)


def _solve_result(applies_per_shift, total_applies, threads=4):
    records = []
    for i, applies in enumerate(applies_per_shift):
        result = SingleShiftResult(
            shift=1j * i,
            radius=1.0,
            eigenvalues=np.empty(0, complex),
            restarts=1,
            converged=True,
            applies=applies,
        )
        records.append(
            ShiftRecord(
                index=i,
                center=float(i),
                interval=(i - 0.5, i + 0.5),
                result=result,
                worker=0,
                elapsed=0.0,
            )
        )
    return SolveResult(
        omegas=np.empty(0),
        eigenvalues=np.empty(0, complex),
        band=(0.0, float(max(len(applies_per_shift), 1))),
        shifts=records,
        work={"operator_applies": total_applies},
        elapsed=1.0,
        num_threads=threads,
        strategy="queue",
    )


class TestProjectSpeedup:
    def test_equal_work_ideal_is_thread_count(self):
        serial = _solve_result([25] * 4, 100, threads=1)
        parallel = _solve_result([25] * 4, 100, threads=4)
        proj = project_speedup(serial, parallel, 4)
        assert proj.eta_ideal == pytest.approx(4.0)
        assert proj.eta_makespan == pytest.approx(100 / 25)

    def test_superlinear_when_parallel_does_less_work(self):
        """The paper's superlinear effect: W_T < W_1 via shift elimination."""
        serial = _solve_result([25] * 4, 100, threads=1)
        parallel = _solve_result([20] * 4, 80, threads=4)
        proj = project_speedup(serial, parallel, 4)
        assert proj.eta_ideal > 4.0

    def test_tail_idle_reduces_makespan_speedup(self):
        serial = _solve_result([30] * 3, 90, threads=1)
        # One long shift (60) and two short: makespan 60 on 4 workers.
        parallel = _solve_result([60, 15, 15], 90, threads=4)
        proj = project_speedup(serial, parallel, 4)
        assert proj.eta_makespan == pytest.approx(90 / 60)
        assert proj.eta_makespan < proj.eta_ideal

    def test_is_dataclass_with_counts(self):
        serial = _solve_result([10], 10, threads=1)
        parallel = _solve_result([10], 10, threads=2)
        proj = project_speedup(serial, parallel, 2)
        assert isinstance(proj, SpeedupProjection)
        assert proj.work_serial == 10
        assert proj.work_parallel == 10
