"""Unit tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.reporting.ascii_plot import ascii_series, sigma_plot
from repro.synth import random_macromodel


class TestAsciiSeries:
    def test_basic_render(self):
        x = np.linspace(0, 1, 20)
        y = x**2
        chart = ascii_series(x, y, width=40, height=8, title="parabola")
        lines = chart.splitlines()
        assert lines[0] == "parabola"
        assert len([row for row in lines if "|" in row]) == 8

    def test_hline_rendered(self):
        x = np.linspace(0, 1, 10)
        y = np.linspace(0, 2, 10)
        chart = ascii_series(x, y, hline=1.0, width=30, height=10)
        assert any(set(line.split("|")[-1].strip()) <= {"-", "*"} and "-" in line
                   for line in chart.splitlines() if "|" in line)

    def test_markers_present(self):
        x = np.linspace(0, 1, 5)
        y = np.ones(5)
        chart = ascii_series(x, y, width=20, height=5)
        assert "*" in chart

    def test_footer_shows_range(self):
        x = np.linspace(2.0, 8.0, 10)
        chart = ascii_series(x, x, width=30, height=5)
        assert "2" in chart.splitlines()[-1]
        assert "8" in chart.splitlines()[-1]

    def test_constant_series_ok(self):
        x = np.linspace(0, 1, 4)
        chart = ascii_series(x, np.full(4, 3.0), width=20, height=5)
        assert "*" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_series(np.arange(3), np.arange(4))

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            ascii_series(np.array([1.0]), np.array([1.0]))


class TestSigmaPlot:
    def test_plot_of_model(self):
        model = random_macromodel(8, 2, seed=61, sigma_target=1.05)
        freqs = np.linspace(0.01, 15.0, 100)
        chart = sigma_plot(model, freqs, width=40, height=8)
        assert "sigma_max" in chart
        assert "----" in chart  # unit threshold line

    def test_band_annotation(self):
        model = random_macromodel(8, 2, seed=61, sigma_target=1.05)
        freqs = np.linspace(0.01, 15.0, 50)
        chart = sigma_plot(model, freqs, mark_bands=[(1.0, 2.0)])
        assert "violation bands" in chart
        assert "[1, 2]" in chart
