"""Smoke tests for the experiment drivers' command-line entry points."""


from repro.reporting.fig6 import main as fig6_main
from repro.reporting.table1 import main as table1_main


class TestTable1Main:
    def test_subset_run(self, capsys):
        code = table1_main(
            ["--scale", "0.03", "--threads", "2", "--cases", "1", "--repeats", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Case 1" in out
        assert "eta_proj" in out

    def test_multiple_cases(self, capsys):
        code = table1_main(
            ["--scale", "0.03", "--threads", "2", "--cases", "1,2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Case 2" in out


class TestFig6Main:
    def test_small_sweep(self, capsys):
        code = fig6_main(
            ["--scale", "0.02", "--max-threads", "2", "--repeats", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eta_proj" in out
        assert "projected speedup" in out
