"""Stimulus library: shapes, seeding, serialization round trips."""

import numpy as np
import pytest

from repro.synth import random_macromodel
from repro.timedomain import STIMULUS_KINDS, Stimulus, worst_tone


def test_all_kinds_have_shape_and_zero_start():
    for kind in STIMULUS_KINDS:
        stim = Stimulus(kind=kind)
        u = stim.waveforms(64, 0.1, 3)
        assert u.shape == (64, 3)
        assert np.all(u[0] == 0.0), f"{kind} must start at zero"


def test_impulse_single_sample():
    u = Stimulus.impulse(amplitude=2.5, delay_steps=3).waveforms(32, 0.1, 2)
    assert np.count_nonzero(u) == 2  # both ports, one sample each
    assert u[3, 0] == 2.5 and u[3, 1] == 2.5
    assert np.all(u[:3] == 0.0) and np.all(u[4:] == 0.0)


def test_step_holds_level():
    u = Stimulus.step(amplitude=0.5, delay_steps=4).waveforms(16, 0.1, 1)
    assert np.all(u[:4] == 0.0)
    assert np.all(u[4:] == 0.5)


def test_pulse_trapezoid_shape():
    stim = Stimulus.pulse(rise_steps=2, hold_steps=3, fall_steps=2, delay_steps=1)
    u = stim.waveforms(16, 0.1, 1)[:, 0]
    assert u[0] == 0.0
    assert np.max(u) == 1.0
    # rise (2) + hold (3) + fall includes the final zero sample
    assert np.count_nonzero(u) == 2 + 3 + 1
    # monotone rise then flat hold
    assert u[1] == 0.5 and u[2] == 1.0 and u[5] == 1.0 and u[6] == 0.5


def test_prbs_is_seeded_and_bit_held():
    a = Stimulus.prbs(seed=5, bit_steps=4).waveforms(64, 0.1, 1)
    b = Stimulus.prbs(seed=5, bit_steps=4).waveforms(64, 0.1, 1)
    c = Stimulus.prbs(seed=6, bit_steps=4).waveforms(64, 0.1, 1)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)
    bits = a[1:, 0]
    assert set(np.unique(bits)) <= {-1.0, 1.0}
    # each bit is held for bit_steps samples
    assert np.all(bits[:4] == bits[0])


def test_tone_frequency():
    stim = Stimulus.tone(2.0, amplitude=1.0, delay_steps=1)
    dt = 0.01
    u = stim.waveforms(1000, dt, 1)[:, 0]
    t = (np.arange(1, 1000) - 1) * dt
    np.testing.assert_allclose(u[1:], np.sin(2.0 * t), atol=1e-12)


def test_tone_weights_drive_ports_with_phase():
    stim = Stimulus.tone(1.5, weights=(1.0, 1j))
    u = stim.waveforms(500, 0.02, 2)
    t = (np.arange(1, 500) - 1) * 0.02
    np.testing.assert_allclose(u[1:, 0], np.cos(1.5 * t), atol=1e-12)
    np.testing.assert_allclose(u[1:, 1], -np.sin(1.5 * t), atol=1e-12)


def test_tone_weights_count_must_match_ports():
    with pytest.raises(ValueError, match="port weights"):
        Stimulus.tone(1.0, weights=(1.0,)).waveforms(16, 0.1, 2)


def test_port_selection_and_range():
    u = Stimulus.step(port=1).waveforms(8, 0.1, 3)
    assert np.all(u[:, 0] == 0.0) and np.all(u[:, 2] == 0.0)
    assert np.any(u[:, 1] != 0.0)
    with pytest.raises(ValueError, match="port 5"):
        Stimulus.step(port=5).waveforms(8, 0.1, 2)


def test_delay_must_be_positive():
    with pytest.raises(ValueError, match="delay_steps"):
        Stimulus.step(delay_steps=0)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="stimulus kind"):
        Stimulus(kind="chirp")


def test_weights_only_for_tone():
    with pytest.raises(ValueError, match="tone"):
        Stimulus(kind="step", weights=(1.0,))


@pytest.mark.parametrize(
    "stim",
    [
        Stimulus.impulse(amplitude=0.25, delay_steps=2),
        Stimulus.step(port=1),
        Stimulus.pulse(rise_steps=3, hold_steps=7, fall_steps=5),
        Stimulus.prbs(seed=42, bit_steps=16, amplitude=0.1),
        Stimulus.tone(3.5, weights=(0.5 + 0.5j, -1.0)),
        Stimulus.tone(3.5),
    ],
)
def test_to_dict_round_trip_exact(stim):
    rebuilt = Stimulus.from_dict(stim.to_dict())
    assert rebuilt == stim
    assert rebuilt.to_dict() == stim.to_dict()
    u1 = stim.waveforms(128, 0.05, 2)
    u2 = rebuilt.waveforms(128, 0.05, 2)
    np.testing.assert_array_equal(u1, u2)


def test_worst_tone_aligns_with_singular_vector():
    model = random_macromodel(8, 2, seed=3, sigma_target=1.05)
    omega = 1.0
    stim = worst_tone(model, omega)
    assert stim.kind == "tone"
    assert stim.freq == omega
    h = model.transfer(1j * omega)
    _u, s, vh = np.linalg.svd(h)
    v = np.asarray(stim.weights)
    # the weights are the top right singular vector (unit norm, up to phase)
    np.testing.assert_allclose(np.linalg.norm(v), 1.0, atol=1e-12)
    np.testing.assert_allclose(
        np.linalg.norm(h @ v), s[0], atol=1e-10
    )
