"""Termination networks: reflection coefficients and serialization."""

import math

import numpy as np
import pytest

from repro.timedomain import Termination


def test_matched_default():
    term = Termination()
    assert term.is_matched
    np.testing.assert_array_equal(term.gamma(3), np.zeros(3))


def test_gamma_endpoints():
    term = Termination(resistances=(50.0, 0.0, math.inf, 150.0), z0=50.0)
    gamma = term.gamma(4)
    np.testing.assert_allclose(gamma, [0.0, -1.0, 1.0, 0.5])
    assert not term.is_matched


def test_scalar_broadcasts():
    term = Termination(resistances=100.0, z0=50.0)
    np.testing.assert_allclose(term.gamma(3), [1.0 / 3.0] * 3)


def test_matched_by_value():
    assert Termination(resistances=(50.0, 50.0), z0=50.0).is_matched


def test_port_count_mismatch():
    with pytest.raises(ValueError, match="2 resistances"):
        Termination(resistances=(50.0, 75.0)).gamma(3)


def test_negative_resistance_rejected():
    with pytest.raises(ValueError, match=">= 0"):
        Termination(resistances=(-1.0,))


def test_bad_z0_rejected():
    with pytest.raises(ValueError, match="z0"):
        Termination(z0=0.0)


@pytest.mark.parametrize(
    "term",
    [
        Termination(),
        Termination(resistances=75.0),
        Termination(resistances=(0.0, math.inf, 120.0), z0=42.0),
    ],
)
def test_round_trip_exact(term):
    rebuilt = Termination.from_dict(term.to_dict())
    assert rebuilt == term
    assert rebuilt.to_dict() == term.to_dict()
