"""Integrator correctness: chunked vs naive, discretizations, feedback."""

import numpy as np
import pytest

from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel
from repro.timedomain import (
    Stimulus,
    Termination,
    closed_loop_response,
    default_timestep,
    discretize_statespace,
    recursive_coefficients,
    recursive_convolution,
    recursive_convolution_reference,
    statespace_step,
)

from tests.conftest import make_pole_residue


def _model(seed=3, ports=2, poles=10, target=1.02):
    return random_macromodel(poles, ports, seed=seed, sigma_target=target)


def _prbs(model, steps, dt, seed=5):
    return Stimulus.prbs(seed=seed).waveforms(steps, dt, model.num_ports)


# ---------------------------------------------------------------------------
# Recursive convolution
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("chunk", [8, 100, 512, 5000])
def test_chunked_matches_reference(chunk):
    model = _model()
    dt = default_timestep(model)
    u = _prbs(model, 3001, dt)
    fast = recursive_convolution(model, u, dt, chunk_steps=chunk)
    slow = recursive_convolution_reference(model, u, dt)
    np.testing.assert_allclose(fast, slow, atol=1e-12)


def test_single_step_window():
    model = _model()
    u = np.ones((1, model.num_ports))
    out = recursive_convolution(model, u, 0.1)
    _alpha, _beta, gamma = recursive_coefficients(model.poles, 0.1)
    expected = (
        np.einsum(
            "mj,mij->i", gamma[:, None] * u[0][None, :], model.residues
        ).real
        + model.d @ u[0]
    )
    np.testing.assert_allclose(out[0], expected, atol=1e-14)


def test_step_response_reaches_dc_gain():
    model = _model()
    dt = default_timestep(model)
    steps = 200_000
    u = Stimulus.step(amplitude=0.3).waveforms(steps, dt, model.num_ports)
    out = recursive_convolution(model, u, dt)
    h0 = model.transfer(0.0 + 0.0j).real
    np.testing.assert_allclose(out[-1], 0.3 * h0.sum(axis=1), rtol=1e-6)


def test_recursive_coefficients_dc_identity():
    """(beta + gamma) / (1 - alpha) == -1/p — the exact DC gain."""
    poles = np.array([-0.5, -0.1 + 2.0j, -0.1 - 2.0j])
    alpha, beta, gamma = recursive_coefficients(poles, 0.07)
    np.testing.assert_allclose(
        (beta + gamma) / (1.0 - alpha), -1.0 / poles, atol=1e-13
    )


def _series_coefficients(x: complex, dt: float):
    """High-order reference series for beta/gamma (converges for |x| < 1)."""
    from math import factorial

    # gamma/dt = sum_{k>=0} x^k / (k+2)!,  (beta+gamma)/dt = (e^x-1)/x
    g = sum(x**k / factorial(k + 2) for k in range(25))
    i0 = sum(x**k / factorial(k + 1) for k in range(25))
    return dt * (i0 - g), dt * g


@pytest.mark.parametrize("mag", [1e-12, 1e-8, 1e-5, 1e-3, 5e-3, 0.1])
def test_recursive_coefficients_slow_pole_accuracy(mag):
    """No catastrophic cancellation when |p dt| is tiny.

    Broadband models span many pole decades while dt resolves the
    fastest pole, so the slow-pole weights must stay accurate across
    the whole range (the naive (i0 - dt)/p form loses all digits by
    |p dt| ~ 1e-8).
    """
    dt = 0.05
    for pole in (-mag / dt, (-0.3 - 1j) * mag / dt):
        alpha, beta, gamma = recursive_coefficients(np.array([pole]), dt)
        ref_beta, ref_gamma = _series_coefficients(pole * dt, dt)
        np.testing.assert_allclose(beta[0], ref_beta, rtol=1e-11)
        np.testing.assert_allclose(gamma[0], ref_gamma, rtol=1e-11)
        np.testing.assert_allclose(alpha[0], np.exp(pole * dt), rtol=1e-14)


def test_recursive_requires_pole_residue():
    ss = pole_residue_to_simo(_model()).to_statespace()
    with pytest.raises(TypeError, match="PoleResidueModel"):
        recursive_convolution(ss, np.zeros((4, 2)), 0.1)


def test_input_shape_validated():
    model = _model()
    with pytest.raises(ValueError, match="shape"):
        recursive_convolution(model, np.zeros((8, 5)), 0.1)
    with pytest.raises(ValueError, match="at least one"):
        recursive_convolution(model, np.zeros((0, 2)), 0.1)


# ---------------------------------------------------------------------------
# State-space stepping
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    # Tustin is second order against the PWL-exact reference; ZOH models
    # the input as piecewise *constant*, so it converges first order.
    ("method", "shrink"),
    [("tustin", 2.5), ("zoh", 1.6)],
)
def test_statespace_converges_to_recursive(method, shrink):
    """Halving dt shrinks the discretization error at the method's order."""
    model = make_pole_residue(seed=1, num_ports=2)
    ss = pole_residue_to_simo(model).to_statespace()
    errors = []
    for dt in (0.02, 0.01):
        steps = int(40.0 / dt)
        u = Stimulus.tone(1.3).waveforms(steps, dt, 2)
        exact = recursive_convolution(model, u, dt)
        approx = statespace_step(ss, u, dt, method=method)
        errors.append(float(np.max(np.abs(exact - approx))))
    assert errors[1] < errors[0] / shrink


def test_tustin_discretization_algebra():
    ss = pole_residue_to_simo(make_pole_residue(seed=2)).to_statespace()
    dt = 0.05
    ad, b0, b1 = discretize_statespace(ss, dt, method="tustin")
    n = ss.order
    m = np.eye(n) - 0.5 * dt * ss.a
    np.testing.assert_allclose(m @ ad, np.eye(n) + 0.5 * dt * ss.a, atol=1e-12)
    np.testing.assert_allclose(m @ b0, 0.5 * dt * ss.b, atol=1e-12)
    np.testing.assert_allclose(b0, b1, atol=0.0)


def test_zoh_matches_expm():
    scipy_linalg = pytest.importorskip("scipy.linalg")
    ss = pole_residue_to_simo(make_pole_residue(seed=4)).to_statespace()
    dt = 0.1
    ad, b0, b1 = discretize_statespace(ss, dt, method="zoh")
    np.testing.assert_allclose(ad, scipy_linalg.expm(ss.a * dt), atol=1e-12)
    # B0 = A^-1 (Ad - I) B for invertible (stable) A
    np.testing.assert_allclose(
        ss.a @ b0, (ad - np.eye(ss.order)) @ ss.b, atol=1e-12
    )
    assert np.all(b1 == 0.0)


def test_unknown_discretization_rejected():
    ss = pole_residue_to_simo(_model()).to_statespace()
    with pytest.raises(ValueError, match="discretization"):
        discretize_statespace(ss, 0.1, method="euler")


# ---------------------------------------------------------------------------
# Closed-loop (terminated) stepping
# ---------------------------------------------------------------------------


def test_matched_closed_loop_is_open_loop():
    model = _model()
    dt = default_timestep(model)
    u = _prbs(model, 1024, dt)
    incident, reflected = closed_loop_response(
        model, u, dt, Termination.matched()
    )
    np.testing.assert_array_equal(incident, u)
    np.testing.assert_allclose(
        reflected, recursive_convolution(model, u, dt), atol=0.0
    )


def test_reflective_termination_feedback_consistency():
    """The solved waves satisfy a = Gamma b + e at every step."""
    model = _model()
    dt = default_timestep(model)
    e = _prbs(model, 512, dt)
    term = Termination(resistances=(150.0, 20.0))
    incident, reflected = closed_loop_response(model, e, dt, term)
    gamma = term.gamma(model.num_ports)
    np.testing.assert_allclose(
        incident, gamma[None, :] * reflected + e, atol=1e-10
    )
    # and b is the model's response to the solved incident waves
    np.testing.assert_allclose(
        reflected, recursive_convolution(model, incident, dt), atol=1e-10
    )


def test_closed_loop_statespace_agrees_with_recursive():
    model = make_pole_residue(seed=6, num_ports=2)
    ss = pole_residue_to_simo(model).to_statespace()
    dt = 0.005
    e = Stimulus.pulse(rise_steps=20, hold_steps=200, fall_steps=20).waveforms(
        2000, dt, 2
    )
    term = Termination(resistances=(75.0, 30.0))
    a1, b1 = closed_loop_response(model, e, dt, term)
    a2, b2 = closed_loop_response(ss, e, dt, term, method="tustin")
    # Tustin is O(dt^2)-accurate against the exact recursive path.
    assert float(np.max(np.abs(b1 - b2))) < 0.05 * float(np.abs(b1).max())


def test_passive_model_contracts_under_any_termination():
    model = random_macromodel(8, 2, seed=9, sigma_target=0.9)
    dt = default_timestep(model)
    e = _prbs(model, 4096, dt)
    for term in (
        Termination.matched(),
        Termination(resistances=0.0),
        Termination(resistances=(float("inf"), 10.0)),
    ):
        incident, reflected = closed_loop_response(model, e, dt, term)
        e_in = np.sum(incident**2)
        e_out = np.sum(reflected**2)
        assert e_out <= e_in * (1.0 + 1e-10)
