"""FFT cross-check: the integrator vs the frequency-domain kernels."""

import numpy as np
import pytest

from repro.synth import random_macromodel
from repro.timedomain import (
    default_timestep,
    discrete_transfer_many,
    folded_transfer_many,
    impulse_fft_check,
)


def _well_damped(seed):
    """Models whose slowest resonance rings down inside a small window."""
    return random_macromodel(
        10, 2, seed=seed, sigma_target=1.02, q_range=(2.0, 10.0),
        band=(0.5, 4.0),
    )


def _window(model, dt):
    slowest = float(np.min(np.abs(model.poles.real)))
    return 1 << int(np.ceil(np.log2(14.0 / (slowest * dt))))


def test_discrete_transfer_dc_equals_continuous():
    model = _well_damped(0)
    hd = discrete_transfer_many(model, 0.05, [0.0])[0]
    np.testing.assert_allclose(hd, model.transfer(0.0 + 0.0j), atol=1e-12)


def test_folded_transfer_converges_cubically():
    model = _well_damped(1)
    thetas = np.linspace(-np.pi, np.pi, 41)
    hd = discrete_transfer_many(model, 0.08, thetas)
    errors = [
        float(np.max(np.abs(
            folded_transfer_many(model, 0.08, thetas, aliases=k) - hd
        )))
        for k in (4, 8, 16)
    ]
    assert errors[1] < errors[0] and errors[2] < errors[1]
    assert errors[2] < 1e-6


@pytest.mark.parametrize("seed", [0, 7, 23])
def test_impulse_fft_check_passes(seed):
    model = _well_damped(seed)
    dt = default_timestep(model)
    check = impulse_fft_check(
        model, dt=dt, num_steps=_window(model, dt), aliases=24
    )
    assert check.max_discrete_error < 1e-7, check.to_dict()
    assert check.max_folded_error < 1e-6, check.to_dict()
    assert check.tail_magnitude < 1e-6
    assert check.ok(1e-6)


def test_check_reports_underresolved_window():
    model = _well_damped(3)
    dt = default_timestep(model)
    short = impulse_fft_check(model, dt=dt, num_steps=128, aliases=8)
    assert short.tail_magnitude > 1e-6  # response clearly not rung down


def test_check_payload_is_jsonable():
    import json

    model = _well_damped(5)
    check = impulse_fft_check(model, dt=0.1, num_steps=256)
    payload = check.to_dict()
    json.dumps(payload)
    assert set(payload) >= {
        "dt",
        "num_steps",
        "aliases",
        "max_discrete_error",
        "max_folded_error",
        "tail_magnitude",
    }


def test_impulse_index_validated():
    model = _well_damped(2)
    with pytest.raises(ValueError, match="impulse_index"):
        impulse_fft_check(model, dt=0.1, num_steps=16, impulse_index=16)
    with pytest.raises(ValueError, match="impulse_index"):
        impulse_fft_check(model, dt=0.1, num_steps=16, impulse_index=0)
