"""Energy monitor: balances, verdicts, serialization."""

import numpy as np
import pytest

from repro.timedomain import EnergyReport, energy_report


def test_known_energies():
    a = np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 1.0]])
    b = 0.5 * a
    report = energy_report(a, b, 0.1)
    np.testing.assert_allclose(report.port_input, [0.2, 0.5])
    np.testing.assert_allclose(report.port_output, [0.05, 0.125])
    np.testing.assert_allclose(report.input_energy, 0.7)
    np.testing.assert_allclose(report.output_energy, 0.175)
    np.testing.assert_allclose(report.energy_gain, 0.25)
    assert report.passive
    assert report.num_steps == 3 and report.num_ports == 2
    np.testing.assert_allclose(report.peak_output, 1.0)  # row [0, 2]/2


def test_gain_above_tolerance_flags():
    a = np.ones((10, 1))
    b = 1.001 * np.ones((10, 1))
    assert not energy_report(a, b, 1.0).passive
    assert energy_report(a, b, 1.0, tol=0.01).passive


def test_zero_input_edge_cases():
    z = np.zeros((4, 2))
    silent = energy_report(z, z, 0.5)
    assert silent.energy_gain == 0.0 and silent.passive
    loud = energy_report(z, np.ones((4, 2)), 0.5)
    assert loud.energy_gain == float("inf") and not loud.passive


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError, match="shape"):
        energy_report(np.zeros((4, 2)), np.zeros((4, 3)), 0.1)


def test_negative_tol_rejected():
    with pytest.raises(ValueError, match="tol"):
        energy_report(np.zeros((2, 1)), np.zeros((2, 1)), 0.1, tol=-1e-3)


def test_round_trip_exact():
    rng = np.random.default_rng(0)
    report = energy_report(
        rng.standard_normal((32, 3)), rng.standard_normal((32, 3)), 0.02
    )
    rebuilt = EnergyReport.from_dict(report.to_dict())
    assert rebuilt == report
    assert rebuilt.to_dict() == report.to_dict()


def test_summary_mentions_gain():
    report = energy_report(np.ones((4, 1)), np.zeros((4, 1)), 0.1)
    assert "gain" in report.summary()
    assert "passive" in report.summary()
