"""The simulate() front door and SimulationResult serialization."""

import json

import numpy as np
import pytest

from repro.macromodel.realization import pole_residue_to_simo
from repro.synth import random_macromodel, random_simo_macromodel
from repro.timedomain import (
    SimulationResult,
    Stimulus,
    Termination,
    default_timestep,
    simulate,
)
from repro.utils.serialization import to_jsonable


def _model(seed=3):
    return random_macromodel(10, 2, seed=seed, sigma_target=1.02)


def test_simulate_defaults():
    result = simulate(_model(), num_steps=512)
    assert result.integrator == "recursive"
    assert result.discretization is None
    assert result.num_steps == 512
    assert result.incident.shape == (512, 2)
    assert result.reflected.shape == (512, 2)
    assert result.energy.num_steps == 512
    assert result.energy_gain == result.energy.energy_gain
    assert result.times.shape == (512,)
    assert "gain" in result.summary()


def test_default_timestep_resolves_fastest_pole():
    model = _model()
    dt = default_timestep(model, oversample=16.0)
    w_max = float(np.max(np.abs(model.poles)))
    np.testing.assert_allclose(dt, 2.0 * np.pi / (16.0 * w_max))
    # a faster tone tightens the step
    assert default_timestep(model, freq=10.0 * w_max) < dt


def test_stimulus_shorthands():
    model = _model()
    by_str = simulate(model, "impulse", num_steps=64, dt=0.05)
    by_obj = simulate(model, Stimulus.impulse(), num_steps=64, dt=0.05)
    by_dict = simulate(
        model, Stimulus.impulse().to_dict(), num_steps=64, dt=0.05
    )
    np.testing.assert_array_equal(by_str.reflected, by_obj.reflected)
    np.testing.assert_array_equal(by_str.reflected, by_dict.reflected)
    with pytest.raises(TypeError, match="stimulus"):
        simulate(model, 123, num_steps=16)


def test_statespace_integrator_accepts_all_model_kinds():
    model = _model()
    simo = pole_residue_to_simo(model)
    ss = simo.to_statespace()
    dt = 0.01
    runs = [
        simulate(kind, "pulse", num_steps=256, dt=dt, integrator="statespace")
        for kind in (model, simo, ss)
    ]
    for run in runs[1:]:
        np.testing.assert_allclose(
            runs[0].reflected, run.reflected, atol=1e-8
        )
        assert run.discretization == "tustin"


def test_recursive_rejects_realized_models():
    simo = random_simo_macromodel(8, 2, seed=1)
    with pytest.raises(TypeError, match="statespace"):
        simulate(simo, num_steps=16)


def test_unknown_integrator_rejected():
    with pytest.raises(ValueError, match="integrator"):
        simulate(_model(), num_steps=16, integrator="rk4")


def test_keep_waveforms_false_drops_arrays():
    result = simulate(_model(), num_steps=64, keep_waveforms=False)
    assert result.incident is None and result.reflected is None
    assert result.energy.num_steps == 64


def test_without_waveforms_copy():
    result = simulate(_model(), num_steps=64)
    compact = result.without_waveforms()
    assert compact.incident is None
    assert compact.energy == result.energy
    assert compact.without_waveforms() is compact


def test_round_trip_exact_compact():
    result = simulate(
        _model(),
        Stimulus.prbs(seed=9),
        num_steps=128,
        termination=Termination(resistances=80.0),
        keep_waveforms=False,
    )
    payload = result.to_dict()
    json.dumps(payload)  # strictly JSON-serializable
    rebuilt = SimulationResult.from_dict(payload)
    assert rebuilt.to_dict() == payload
    assert rebuilt.stimulus == result.stimulus
    assert rebuilt.termination == result.termination
    assert rebuilt.energy == result.energy


def test_round_trip_exact_with_waveforms():
    result = simulate(_model(), num_steps=96)
    payload = result.to_dict(include_waveforms=True)
    rebuilt = SimulationResult.from_dict(payload)
    np.testing.assert_array_equal(rebuilt.incident, result.incident)
    np.testing.assert_array_equal(rebuilt.reflected, result.reflected)
    assert to_jsonable(rebuilt.to_dict(include_waveforms=True)) == to_jsonable(
        payload
    )


def test_termination_changes_response():
    model = _model()
    matched = simulate(model, "step", num_steps=256, dt=0.02)
    shorted = simulate(
        model,
        "step",
        num_steps=256,
        dt=0.02,
        termination=Termination(resistances=0.0),
    )
    assert not np.allclose(matched.reflected, shorted.reflected)
    assert shorted.termination.to_dict()["resistances"] == [0.0]
