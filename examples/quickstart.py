"""Quickstart: characterize the passivity of an interconnect macromodel.

Builds a small synthetic scattering macromodel (the kind rational fitting
produces), runs the parallel Hamiltonian eigensolver to find all unit
singular-value crossings, and prints the resulting passivity report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import characterize_passivity, find_imaginary_eigenvalues
from repro.synth import random_macromodel


def main() -> None:
    # A 4-port model with 20 poles per column (order 80), mildly
    # non-passive: its peak singular value is pushed to ~1.05.
    model = random_macromodel(20, 4, seed=42, sigma_target=1.05)
    print(f"model: {model}")

    # --- Low-level API: just the imaginary Hamiltonian eigenvalues -------
    result = find_imaginary_eigenvalues(model, num_threads=4)
    print(f"\nsweep: {result.summary()}")
    print(f"crossing frequencies Omega = {np.round(result.omegas, 6)}")

    # --- High-level API: full passivity report ---------------------------
    report = characterize_passivity(model, num_threads=4)
    print(f"\n{report.summary()}")
    for band in report.bands:
        print(
            f"  violation band [{band.lo:.4f}, {band.hi:.4f}] rad/s,"
            f" peak sigma = {band.peak_sigma:.4f} at w = {band.peak_freq:.4f}"
        )

    # The crossings are exactly where a singular value touches 1:
    print("\nverification (singular values at each crossing):")
    for w in report.crossings:
        sv = np.linalg.svd(model.transfer(1j * w), compute_uv=False)
        closest = sv[np.argmin(np.abs(sv - 1.0))]
        print(f"  w = {w:9.5f}  ->  sigma = {closest:.9f}")


if __name__ == "__main__":
    main()
