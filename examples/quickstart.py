"""Quickstart: the Macromodel session facade end to end.

Builds a small synthetic scattering macromodel (the kind rational fitting
produces), then drives the paper's whole workflow through one fluent
session: characterize passivity with the parallel Hamiltonian
eigensolver, enforce passivity, and inspect the machine-readable result.

Run:  python examples/quickstart.py
"""

import json

import numpy as np

from repro import Macromodel, RunConfig
from repro.synth import random_macromodel


def main() -> None:
    # A 4-port model with 20 poles per column (order 80), mildly
    # non-passive: its peak singular value is pushed to ~1.05.
    model = random_macromodel(20, 4, seed=42, sigma_target=1.05)
    print(f"model: {model}")

    # One frozen config carries every cross-cutting knob (threads,
    # strategy, representation, band).  It can also come from dicts
    # (RunConfig.from_dict) or the environment (RunConfig.from_env).
    config = RunConfig(num_threads=4)

    # --- The pipeline: sweep, characterize, then enforce -----------------
    session = Macromodel.from_pole_residue(model, config=config)

    # Low-level access first: the raw crossing frequencies of the
    # (still non-passive) model, straight from the eigensolver.
    result = session.find_crossings().solve_result
    print(f"\nsweep: {result.summary()}")
    print(f"crossing frequencies Omega = {np.round(result.omegas, 6)}")

    session.check_passivity()
    report = session.passivity_report
    print(f"\n{report.summary()}")
    for band in report.bands:
        print(
            f"  violation band [{band.lo:.4f}, {band.hi:.4f}] rad/s,"
            f" peak sigma = {band.peak_sigma:.4f} at w = {band.peak_freq:.4f}"
        )

    if not session.is_passive:
        session.enforce()
        print(f"\nafter enforcement: passive = {session.is_passive}")

    print(f"\n{session.summary()}")

    # --- Machine consumption: everything is JSON-serializable ------------
    payload = session.to_dict()
    print("\nsession payload keys:", sorted(payload))
    print("passivity payload:", json.dumps(payload["passivity"])[:100], "...")

    # The crossings of the *original* model are exactly where a singular
    # value touches 1.  All crossings are evaluated in ONE batched call:
    # transfer_many returns the (K, p, p) stack, and the stacked SVD
    # factors every point at once.
    print("\nverification (singular values at each crossing):")
    if report.crossings.size:
        sv = np.linalg.svd(
            model.transfer_many(1j * report.crossings), compute_uv=False
        )
        for w, svals in zip(report.crossings, sv):
            closest = svals[np.argmin(np.abs(svals - 1.0))]
            print(f"  w = {w:9.5f}  ->  sigma = {closest:.9f}")


if __name__ == "__main__":
    main()
