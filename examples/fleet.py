"""Fleet quickstart: run a 10-model batch through fit → check → enforce.

Builds ten seeded synthetic macromodels (a mix of passive and violating
cases), runs the whole passivity pipeline over them on a bounded process
pool with a per-job timeout, and prints the aggregate FleetReport plus
the serial-vs-pool wall-clock comparison.

Run:  python examples/fleet.py [workers]
      (workers defaults to the CPU count, capped at 4)

The same fleet through the CLI:

    repro batch --synth 10 --seed 300 --workers 4 --timeout 120 --json

and through the facade: ``Macromodel.map(synth_fleet(10), workers=4)``.
"""

import os
import sys
import time

from repro.batch import BatchRunner, SynthJob


def build_fleet():
    """Ten seeded models: even seeds passive, odd seeds violating."""
    jobs = []
    for k in range(10):
        sigma = 0.92 if k % 2 == 0 else 1.06
        jobs.append(
            SynthJob(
                name=f"model-{k:02d}",
                order_per_column=10,
                num_ports=2,
                seed=300 + k,
                sigma_target=sigma,
            )
        )
    return jobs


def main() -> None:
    workers = (
        int(sys.argv[1]) if len(sys.argv) > 1 else min(os.cpu_count() or 1, 4)
    )
    fleet = build_fleet()

    t0 = time.perf_counter()
    serial = BatchRunner(backend="serial", enforce=True).run(fleet)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = BatchRunner(
        backend="process", workers=workers, timeout=300.0, enforce=True
    ).run(fleet)
    pooled_s = time.perf_counter() - t0

    print(pooled.summary())
    print()
    print(
        f"serial {serial_s:.2f}s  vs  {workers}-worker pool {pooled_s:.2f}s"
        f"  ({serial_s / pooled_s:.2f}x)"
    )

    # The pool must not change the science: compare the per-model
    # crossing fingerprints of the two runs.
    mismatches = [
        name
        for name, crossings in serial.crossings_by_name().items()
        if crossings != pooled.result(name).crossings
    ]
    print(
        "crossing sets identical across backends"
        if not mismatches
        else f"MISMATCH in {mismatches}"
    )


if __name__ == "__main__":
    main()
