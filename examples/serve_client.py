"""Drive the HTTP macromodel service with a stdlib-only client.

Submits a small fleet of synthetic characterization jobs over HTTP,
polls until every job finishes, fetches one result by its
content-addressed key, then resubmits the whole fleet to show the cached
fast path (every second submission answers synchronously with
``"cached": true``).

Run against an embedded throwaway server (started in-process on an
ephemeral port, with a temporary result store)::

    python examples/serve_client.py

or against a server you started yourself::

    repro serve --port 8080 --workers 4 --cache readwrite &
    python examples/serve_client.py --url http://127.0.0.1:8080

The client half of this file uses nothing beyond ``urllib`` and ``json``
— exactly what any non-Python consumer of the API would reimplement.
"""

import argparse
import json
import sys
import tempfile
import time
import urllib.error
import urllib.request

#: Retry budget for throttled (429) / temporarily unavailable (503)
#: responses — both carry Retry-After, the server's own backoff advice.
RETRYABLE_STATUSES = (429, 503)
MAX_RETRIES = 8


def _retry_delay(response_headers, attempt: int) -> float:
    """Honor the server's Retry-After; fall back to linear backoff."""
    try:
        delay = float(response_headers.get("Retry-After"))
    except (TypeError, ValueError):
        delay = 0.5 * (attempt + 1)
    return min(max(delay, 0.0), 30.0)


def api(base_url: str, path: str, doc=None):
    """One JSON round trip (GET when ``doc`` is None, else POST).

    Rate-limited (429) and degraded-service (503) responses are retried
    after the delay the server asks for in ``Retry-After`` — transient
    congestion is the service telling the client *when* to come back,
    not a failure.
    """
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    for attempt in range(MAX_RETRIES + 1):
        request = urllib.request.Request(
            base_url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method="GET" if doc is None else "POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            if exc.code not in RETRYABLE_STATUSES or attempt >= MAX_RETRIES:
                raise
            time.sleep(_retry_delay(exc.headers, attempt))


def wait_for(base_url: str, job_id: str, timeout: float = 300.0) -> dict:
    """Poll one job until it leaves the queue."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        record = api(base_url, f"/v1/jobs/{job_id}")
        if record["status"] in ("done", "error", "timeout"):
            return record
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} still running after {timeout}s")


def submit_fleet(base_url: str, count: int) -> None:
    specs = [
        {"kind": "synth", "order": 10, "ports": 2, "seed": seed, "task": "check"}
        for seed in range(count)
    ]

    health = api(base_url, "/healthz")
    print(f"server {base_url} is {health['status']} (v{health['version']})")

    # --- Cold pass: submit everything, then poll ------------------------
    t0 = time.perf_counter()
    submitted = [api(base_url, "/v1/jobs", spec) for spec in specs]
    for record in submitted:
        print(f"  submitted {record['id']}  status={record['status']}")
    finished = [wait_for(base_url, record["id"]) for record in submitted]
    cold_s = time.perf_counter() - t0
    for record in finished:
        result = record["result"] or {}
        if record["status"] != "done" or result.get("status") != "ok":
            reason = record.get("error") or result.get("error") or "unknown"
            print(f"  {record['id']:<12} [{record['status']}] {reason}")
            continue
        verdict = "passive" if result["is_passive"] else "NOT passive"
        print(
            f"  {result['name']:<12} [{record['status']}] {verdict},"
            f" {len(result['crossings'])} crossing(s)"
        )

    # --- Fetch one payload straight from the store ----------------------
    done = [record for record in finished if record["status"] == "done"]
    if done:
        key = done[0]["key"]
        stored = api(base_url, f"/v1/results/{key}")
        print(f"fetched /v1/results/{key[:12]}...  ->  {stored['payload']['name']}")

    # --- Warm pass: the same fleet, served from the store ---------------
    t0 = time.perf_counter()
    resubmitted = [api(base_url, "/v1/jobs", spec) for spec in specs]
    warm_s = time.perf_counter() - t0
    cached = sum(1 for record in resubmitted if record["cached"])
    print(
        f"resubmitted {len(specs)} jobs: {cached} answered from the store"
        f" in {warm_s * 1e3:.1f} ms (cold pass took {cold_s:.2f} s)"
    )

    stats = api(base_url, "/v1/stats")
    print(
        f"server stats: {stats['jobs']['total']} submissions,"
        f" {stats['cached_submissions']} cached,"
        f" store holds {stats['store']['entries']} entries"
        if stats["store"]
        else "server stats: store disabled"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running `repro serve` (default: embed one)",
    )
    parser.add_argument("--jobs", type=int, default=4, help="fleet size")
    args = parser.parse_args()

    if args.url is not None:
        submit_fleet(args.url.rstrip("/"), args.jobs)
        return 0

    # No server given: embed one on an ephemeral port with a throwaway
    # store, exactly as `repro serve` would run it.
    from repro.core.config import RunConfig
    from repro.service import ReproServer

    with tempfile.TemporaryDirectory() as tmp:
        server = ReproServer.create(
            port=0,
            config=RunConfig(cache="readwrite", cache_dir=tmp),
            workers=2,
            timeout=300.0,
        )
        server.start_background()
        print(f"embedded server on {server.url} (store: {tmp})")
        try:
            submit_fleet(server.url, args.jobs)
        finally:
            server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
