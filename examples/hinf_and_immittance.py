"""Beyond scattering: H-infinity norms and immittance passivity.

Two extensions built on the same parallel Hamiltonian eigensolver:

1. **H-infinity norm** via gamma-bisection (Boyd/Balakrishnan/Kabamba,
   ref. [7] of the paper — the ancestor of the Hamiltonian passivity
   test): ``||H||_inf < gamma`` iff the Hamiltonian of ``H/gamma`` has no
   imaginary eigenvalues.

2. **Immittance (positive-realness) characterization** (Sec. II: "the
   same derivations can be performed for the impedance, admittance, and
   hybrid cases"): violations are bands where ``H(jw) + H(jw)^H`` loses
   positive semidefiniteness.

Run:  python examples/hinf_and_immittance.py
"""

import numpy as np

from repro.passivity.hinf import hinf_norm
from repro.passivity.immittance import characterize_immittance_passivity
from repro.synth import random_macromodel


def main() -> None:
    # ------------------------------------------------------------------
    # H-infinity norm of a scattering model.
    # ------------------------------------------------------------------
    model = random_macromodel(14, 3, seed=21, sigma_target=1.08)
    print(f"scattering model: {model}")
    result = hinf_norm(model, rtol=1e-8, num_threads=2)
    print(
        f"||H||_inf = {result.norm:.9f}"
        f"  (certified bracket [{result.lower:.9f}, {result.upper:.9f}],"
        f" {result.bisections} Hamiltonian sweeps)"
    )
    print(f"norm attained near w = {result.peak_freq:.5f} rad/s")

    # Independent check on a dense grid around the reported peak.
    window = np.linspace(result.peak_freq * 0.99, result.peak_freq * 1.01, 2001)
    sv = np.linalg.svd(model.frequency_response(window), compute_uv=False)[:, 0]
    print(f"dense window check: max sigma = {sv.max():.9f}")

    # ------------------------------------------------------------------
    # Immittance passivity of an impedance-like model.
    # ------------------------------------------------------------------
    base = random_macromodel(12, 3, seed=22, sigma_target=None)
    impedance = base.with_d(base.d + 1.5 * np.eye(3))  # D + D^T > 0
    print(f"\nimmittance model: {impedance}")
    report = characterize_immittance_passivity(impedance, num_threads=2)
    print(report.summary())
    for band in report.bands:
        print(
            f"  indefinite band [{band.lo:.4f}, {band.hi:.4f}],"
            f" min eig {band.min_eig:.4f} at w = {band.trough_freq:.4f}"
        )


if __name__ == "__main__":
    main()
