"""Full macromodeling flow: tabulated data -> fit -> check -> enforce.

This is the workflow from the paper's introduction: scattering samples of
a device (here: synthesized, standing in for full-wave simulation or VNA
measurement) are fitted with Vector Fitting; the fitted macromodel is
characterized with the Hamiltonian eigensolver; if it is not passive, the
residue-perturbation enforcement loop repairs it; the repaired model is
re-verified both algebraically and on a dense frequency grid.

The whole flow is one fluent `Macromodel` session; each numbered step
below reads the corresponding stage result off the session.

Run:  python examples/fit_and_enforce.py
"""

import numpy as np

from repro import Macromodel, RunConfig
from repro.passivity.metrics import grid_passivity_margin
from repro.synth import random_macromodel


def main() -> None:
    # ------------------------------------------------------------------
    # 0. The "device": a mildly non-passive rational model we sample.
    # ------------------------------------------------------------------
    device = random_macromodel(14, 3, seed=7, sigma_target=1.04)
    freqs = np.linspace(0.01, 16.0, 350)  # rad/s
    samples = device.frequency_response(freqs)
    print(f"device: {device}, sampled at {freqs.size} frequencies")

    session = Macromodel.from_samples(
        freqs, samples, config=RunConfig(num_threads=4)
    )

    # ------------------------------------------------------------------
    # 1. Rational fitting (Vector Fitting, ref. [1] of the paper).
    # ------------------------------------------------------------------
    fit = session.fit(num_poles=14).fit_result
    print(
        f"\nvector fitting: rms error {fit.rms_error:.3e},"
        f" {fit.iterations} pole-relocation sweeps,"
        f" converged={fit.converged}"
    )

    # ------------------------------------------------------------------
    # 2. Passivity characterization (the paper's core algorithm).
    # ------------------------------------------------------------------
    report = session.check_passivity().passivity_report
    print(f"\ncharacterization: {report.summary()}")
    solve = report.solve
    print(
        f"  eigensolver work: {solve.shifts_processed} shifts,"
        f" {solve.work['operator_applies']} operator applies,"
        f" {solve.work['shifts_eliminated']} shifts eliminated"
    )

    # ------------------------------------------------------------------
    # 3. Enforcement (refs [8], [17]: iterative residue perturbation).
    # ------------------------------------------------------------------
    enforced = session.enforce().enforcement_result
    print(
        f"\nenforcement: passive={enforced.passive}"
        f" after {enforced.iterations} iteration(s);"
        f" residue perturbation norm {enforced.perturbation_norm:.3e}"
    )
    print(f"  violation history: {[f'{h:.2e}' for h in enforced.history]}")

    # ------------------------------------------------------------------
    # 4. Verification.
    # ------------------------------------------------------------------
    final_report = session.check_passivity().passivity_report
    grid = np.linspace(0.0, 25.0, 3000)
    margin = grid_passivity_margin(session.model, grid)
    print(f"\nre-check: {final_report.summary()}")
    print(f"dense-grid margin 1 - max sigma = {margin:.4e} (positive = passive)")

    # Accuracy preservation: compare against the original samples.
    fitted = session.model.frequency_response(freqs)
    rel_err = np.linalg.norm(fitted - samples) / np.linalg.norm(samples)
    print(f"relative deviation from measured data: {rel_err:.3e}")


if __name__ == "__main__":
    main()
