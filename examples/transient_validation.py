"""Transient validation: watch a non-passive macromodel manufacture energy.

The frequency-domain pipeline certifies passivity analytically; this
example demonstrates the *consequence* the paper's motivation section
describes — a macromodel whose singular values exceed one injects
energy into the surrounding circuit, and the enforcement loop removes
exactly that behavior:

1. synthesize a mildly non-passive model and characterize it;
2. drive it at its worst violation peak with a tone aligned to the top
   singular vector: the port-energy monitor witnesses gain > 1;
3. enforce passivity, re-run the *same* stimulus: gain drops below 1;
4. cross-check the integrator against the frequency-domain kernels
   (FFT of the simulated impulse response vs ``transfer_many``);
5. re-run the repaired model through a reflective (mismatched)
   termination network with a PRBS pattern — still contractive.

Run:  python examples/transient_validation.py
"""

import numpy as np

from repro import Macromodel, RunConfig
from repro.synth import random_macromodel
from repro.timedomain import Stimulus, Termination, impulse_fft_check, worst_tone


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A violating model, located precisely by the Hamiltonian test.
    # ------------------------------------------------------------------
    model = random_macromodel(10, 2, seed=7, sigma_target=1.05)
    session = Macromodel.from_pole_residue(
        model, config=RunConfig(num_threads=2)
    ).check_passivity()
    report = session.passivity_report
    band = max(report.bands, key=lambda b: b.severity)
    print(f"characterization: {report.summary()}")
    print(
        f"worst violation: sigma = {band.peak_sigma:.4f}"
        f" at w = {band.peak_freq:.4f} rad/s"
    )

    # ------------------------------------------------------------------
    # 2. The time-domain witness: a tone at the violation peak, aligned
    #    with the top right singular vector of H(j w*).
    # ------------------------------------------------------------------
    stimulus = worst_tone(model, band.peak_freq)
    # Window long enough for the slowest resonance to ring up.
    slowest = float(np.min(np.abs(model.poles.real)))
    steps = min(400_000, int(20.0 / slowest / 0.02))
    session.simulate(stimulus, num_steps=steps)
    before = session.energy_report
    print(f"\nnon-passive transient: {before.summary()}")
    assert before.energy_gain > 1.0, "expected an energy-gain witness"
    print(
        f"  -> the model returned {100.0 * (before.energy_gain - 1.0):.2f}%"
        f" more energy than it received (sigma^2 would give"
        f" {band.peak_sigma ** 2:.4f} at steady state)"
    )

    # ------------------------------------------------------------------
    # 3. Enforce, then replay the exact same stimulus.
    # ------------------------------------------------------------------
    session.enforce()
    session.simulate(stimulus, num_steps=steps)
    after = session.energy_report
    print(f"\nenforced transient:   {after.summary()}")
    assert after.energy_gain <= 1.0 + 1e-8, "enforced model must contract"

    # ------------------------------------------------------------------
    # 4. Internal consistency oracle: the FFT of the simulated impulse
    #    response must match transfer_many on the (alias-folded) DFT
    #    grid.
    # ------------------------------------------------------------------
    dt = 0.05
    decay = float(np.min(np.abs(session.model.poles.real)))
    fft_steps = 1 << int(np.ceil(np.log2(16.0 / (decay * dt))))
    check = impulse_fft_check(
        session.model, dt=dt, num_steps=fft_steps, aliases=24
    )
    print(
        f"\nFFT cross-check: discrete {check.max_discrete_error:.2e},"
        f" vs transfer_many {check.max_folded_error:.2e}"
        f" (tail {check.tail_magnitude:.1e})"
    )

    # ------------------------------------------------------------------
    # 5. A mismatched termination network: reflections re-excite the
    #    model, the repaired response still never gains energy.
    # ------------------------------------------------------------------
    session.simulate(
        Stimulus.prbs(seed=11, bit_steps=4),
        num_steps=20_000,
        termination=Termination(resistances=(100.0, 12.5)),
    )
    closed = session.energy_report
    print(f"\nmismatched termination: {closed.summary()}")
    assert closed.energy_gain <= 1.0 + 1e-8

    print("\ntransient validation complete: violation witnessed, repair held")


if __name__ == "__main__":
    main()
