"""Parallel scaling study on a Table-I-shaped macromodel (Fig. 6 style).

Sweeps the thread count on the Case 5 substitute model and reports, per
thread count:

* wall time (on CPython attenuated by the GIL — see EXPERIMENTS.md),
* total operator work,
* the projected T-core speedup from the makespan simulation (the
  platform-independent analogue of the paper's speedup factor),
* shifts processed and tentative shifts eliminated by the dynamic
  scheduler (the source of the paper's superlinear cases).

Run:  python examples/parallel_scaling.py [scale]
      (scale in (0, 1]; default 0.05 => order ~112; 1.0 = paper size 2240)
"""

import sys

from repro import SolverOptions
from repro.core.parallel import solve_parallel
from repro.core.serial import solve_serial
from repro.reporting.projection import project_speedup
from repro.synth.workloads import fig6_case


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    model = fig6_case(scale=scale)
    options = SolverOptions(seed=3)
    print(f"Case 5 substitute: order={model.order}, ports={model.num_ports}")

    serial = solve_serial(model, strategy="bisection", options=options)
    print(
        f"\nserial bisection reference: {serial.elapsed:.3f}s,"
        f" {serial.work['operator_applies']} applies,"
        f" {serial.num_crossings} crossings"
    )

    header = (
        f"{'threads':>8}{'wall[s]':>10}{'applies':>10}{'shifts':>8}"
        f"{'elim':>6}{'eta_proj':>10}"
    )
    print("\n" + header)
    print("-" * len(header))
    for threads in (1, 2, 4, 8, 16):
        if threads == 1:
            result = solve_serial(model, strategy="queue", options=options)
        else:
            result = solve_parallel(model, num_threads=threads, options=options)
        assert result.num_crossings == serial.num_crossings, "solvers disagree!"
        projection = project_speedup(serial, result, threads)
        print(
            f"{threads:>8}{result.elapsed:>10.3f}"
            f"{result.work['operator_applies']:>10}"
            f"{result.shifts_processed:>8}"
            f"{result.work['shifts_eliminated']:>6}"
            f"{projection.eta_makespan:>10.3f}"
        )

    print(
        "\nNote: eta_proj is the speedup a T-core machine would achieve"
        " (work-based makespan projection); wall times on a single-core"
        " CPython host do not overlap."
    )


if __name__ == "__main__":
    main()
