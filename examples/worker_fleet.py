"""Scale the macromodel service out: a front-end plus a worker fleet.

Boots a queue-backed HTTP front-end with **zero** embedded workers,
spawns N ``repro worker`` processes draining the shared queue, submits a
fleet of characterization jobs, follows each one over the long-poll
``/v1/jobs/<id>/events`` endpoint (no busy polling), fetches a result,
then drains the fleet with SIGTERM — every worker finishes its leased
job and exits 0.

Run it self-contained (embedded front-end, throwaway store and queue)::

    python examples/worker_fleet.py
    python examples/worker_fleet.py --workers 3 --jobs 8

or point the same submit/watch client at a deployment you started
yourself::

    repro serve --port 8080 --workers 0 --cache-dir /shared/store &
    repro worker --cache-dir /shared/store &
    repro worker --cache-dir /shared/store &
    python examples/worker_fleet.py --url http://127.0.0.1:8080

The client half uses nothing beyond ``urllib`` and ``json``.
"""

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

#: Retry budget for throttled (429) / temporarily unavailable (503)
#: responses — both carry Retry-After, the server's own backoff advice.
RETRYABLE_STATUSES = (429, 503)
MAX_RETRIES = 8


def _retry_delay(response_headers, attempt: int) -> float:
    """Honor the server's Retry-After; fall back to linear backoff."""
    try:
        delay = float(response_headers.get("Retry-After"))
    except (TypeError, ValueError):
        delay = 0.5 * (attempt + 1)
    return min(max(delay, 0.0), 30.0)


def api(base_url: str, path: str, doc=None, timeout: float = 90.0):
    """One JSON round trip (GET when ``doc`` is None, else POST).

    Rate-limited (429) and degraded-service (503) responses are retried
    after the delay the server asks for in ``Retry-After`` — transient
    congestion is the service telling the client *when* to come back,
    not a failure.
    """
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    for attempt in range(MAX_RETRIES + 1):
        request = urllib.request.Request(
            base_url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method="GET" if doc is None else "POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            if exc.code not in RETRYABLE_STATUSES or attempt >= MAX_RETRIES:
                raise
            time.sleep(_retry_delay(exc.headers, attempt))


def watch(base_url: str, record: dict, budget: float = 600.0) -> dict:
    """Follow one job over ``/events`` until it reaches a terminal state.

    Each request long-polls: the server answers the moment the job's
    row changes (queued -> running, running -> done/error/...), so the
    client sees every transition without hammering ``GET /v1/jobs``.
    """
    deadline = time.time() + budget
    since = record["version"]
    while record["status"] not in ("done", "error", "timeout", "failed"):
        if time.time() > deadline:
            raise TimeoutError(f"job {record['id']} still {record['status']}")
        record = api(
            base_url,
            f"/v1/jobs/{record['id']}/events?since={since}&timeout=30",
        )
        since = record["version"]
        worker = record.get("worker") or "-"
        print(f"    {record['id']}  ->  {record['status']:<8} (worker {worker})")
    return record


def spawn_workers(queue_path: str, count: int) -> list:
    """Start ``repro worker`` processes sharing one queue file."""
    fleet = []
    for index in range(count):
        fleet.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "--queue",
                    queue_path,
                    "--worker-id",
                    f"fleet-{index}",
                    "--backend",
                    "serial",
                ],
            )
        )
    return fleet


def drain_fleet(fleet: list) -> None:
    """SIGTERM every worker: finish the leased job, ack it, exit 0."""
    for proc in fleet:
        proc.send_signal(signal.SIGTERM)
    for proc in fleet:
        code = proc.wait(timeout=300)
        print(f"  worker pid {proc.pid} exited {code}")


def run_fleet(base_url: str, jobs: int) -> None:
    health = api(base_url, "/healthz")
    print(f"server {base_url} is {health['status']} (v{health['version']})")

    specs = [
        {"kind": "synth", "order": 10, "ports": 2, "seed": seed, "task": "check"}
        for seed in range(jobs)
    ]
    submitted = [api(base_url, "/v1/jobs", spec) for spec in specs]
    print(f"submitted {len(submitted)} jobs; watching /events:")
    finished = [watch(base_url, record) for record in submitted]

    for record in finished:
        result = record["result"] or {}
        if record["status"] != "done":
            print(f"  {record['id']:<12} [{record['status']}] {record['error']}")
            continue
        verdict = "passive" if result["is_passive"] else "NOT passive"
        print(
            f"  {result['name']:<18} [{record['status']}] {verdict},"
            f" attempts={record['attempts']}"
        )

    done = [record for record in finished if record["status"] == "done"]
    if done:
        stored = api(base_url, f"/v1/results/{done[0]['key']}")
        print(f"fetched /v1/results/...  ->  {stored['payload']['name']}")

    stats = api(base_url, "/v1/stats")
    print(
        f"queue depth: {stats['queue']['depth']};"
        f" completed per task: {stats['tasks_completed']}"
    )
    for worker in stats["queue_workers"]:
        print(
            f"  worker {worker['id']:<12} {worker['state']:<8}"
            f" jobs_done={worker['jobs_done']}"
            f" heartbeat_age={worker['heartbeat_age']:.1f}s"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running `repro serve` (default: embed one)",
    )
    parser.add_argument("--jobs", type=int, default=6, help="fleet size")
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes to spawn"
    )
    args = parser.parse_args()

    if args.url is not None:
        # Against an external deployment the workers are yours to run
        # (see the module docstring); this client only submits/watches.
        run_fleet(args.url.rstrip("/"), args.jobs)
        return 0

    from repro.core.config import RunConfig
    from repro.service import ReproServer

    with tempfile.TemporaryDirectory() as tmp:
        queue_path = f"{tmp}/queue.sqlite3"
        server = ReproServer.create(
            port=0,
            config=RunConfig(cache="readwrite", cache_dir=f"{tmp}/store"),
            workers=0,  # pure front-end: the fleet does the computing
            queue_path=queue_path,
        )
        server.start_background()
        print(f"front-end on {server.url} (queue: {queue_path})")
        fleet = spawn_workers(queue_path, args.workers)
        try:
            run_fleet(server.url, args.jobs)
        finally:
            print("draining the fleet (SIGTERM):")
            drain_fleet(fleet)
            server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
