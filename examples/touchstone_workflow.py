"""EDA file-format workflow: Touchstone in, passive Touchstone out.

Mirrors how the library slots into a real signal-integrity flow:

1. a measured/simulated ``.sNp`` file is read;
2. a rational macromodel is identified with Vector Fitting;
3. the macromodel is characterized and (if needed) made passive;
4. the passive model is resampled and written back to a new ``.sNp``.

Steps 1-4 are one fluent `Macromodel` session.  Since this repository is
self-contained, step 0 synthesizes the input file from a random device
model.

Run:  python examples/touchstone_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Macromodel, RunConfig, read_touchstone, write_touchstone
from repro.synth import random_macromodel


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_touchstone_"))

    # ------------------------------------------------------------------
    # 0. Synthesize the "measured" file (stand-in for a VNA export).
    # ------------------------------------------------------------------
    device = random_macromodel(12, 2, seed=19, sigma_target=1.03)
    freqs_rad = np.linspace(0.05, 14.0, 280)
    freqs_hz = freqs_rad / (2.0 * np.pi)
    raw_path = write_touchstone(
        workdir / "device_raw.s2p",
        freqs_hz,
        device.frequency_response(freqs_rad),
        fmt="RI",
        comment="synthetic device measurement (repro example)",
    )
    print(f"wrote raw measurement: {raw_path}")

    # ------------------------------------------------------------------
    # 1. Read it back (real flows start here).
    # ------------------------------------------------------------------
    session = Macromodel.from_touchstone(raw_path, config=RunConfig(num_threads=2))
    data = session.data
    print(
        f"read {data.num_ports}-port {data.parameter}-parameters,"
        f" {data.freqs_hz.size} points, z0={data.z0} ohm"
    )

    # ------------------------------------------------------------------
    # 2. Identify the macromodel.
    # ------------------------------------------------------------------
    session.fit(num_poles=12)
    print(f"fit: rms error {session.fit_result.rms_error:.2e} over the band")

    # ------------------------------------------------------------------
    # 3. Check and enforce passivity.
    # ------------------------------------------------------------------
    report = session.check_passivity().passivity_report
    print(f"characterization: {report.summary()}")
    if not session.is_passive:
        enforced = session.enforce().enforcement_result
        print(
            f"enforced in {enforced.iterations} iteration(s);"
            f" now passive={enforced.passive}"
        )

    # ------------------------------------------------------------------
    # 4. Export the passive model on a denser grid.
    # ------------------------------------------------------------------
    dense_rad = np.linspace(0.05, 20.0, 500)
    out_path = workdir / "device_passive.s2p"
    session.to_touchstone(
        out_path,
        freqs_hz=dense_rad / (2.0 * np.pi),
        fmt="RI",
        comment="passive macromodel resampled by repro",
    )
    print(f"wrote passive model: {out_path}")

    # Round-trip sanity check.
    back = read_touchstone(out_path)
    peak = np.linalg.svd(back.matrices, compute_uv=False).max()
    print(f"peak singular value in exported file: {peak:.6f} (< 1 expected)")


if __name__ == "__main__":
    main()
