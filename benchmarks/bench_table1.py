"""Benchmark regenerating **Table I** of the paper.

Per case: one serial (bisection) solve and one parallel (dynamic queue)
solve are benchmarked individually, and a final report benchmark runs the
full Table I driver, prints the measured table in the paper's layout, and
writes it to ``benchmarks/results/table1.txt``.

Scale/threads are controlled by ``REPRO_BENCH_SCALE`` /
``REPRO_BENCH_THREADS`` (see ``_config.py``); at scale 1.0 the model sizes
are exactly the paper's (n up to 4150, p up to 83).
"""

from __future__ import annotations

import pytest

from _config import BENCH_REPEATS, BENCH_SCALE, BENCH_THREADS, write_artifact
from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.core.serial import solve_serial
from repro.reporting.table1 import run_table1
from repro.reporting.tables import format_table1
from repro.synth.workloads import TABLE1_CASES, build_case

OPTIONS = SolverOptions()

_model_cache = {}


def get_model(spec):
    if spec.case_id not in _model_cache:
        _model_cache[spec.case_id] = build_case(spec, scale=BENCH_SCALE)
    return _model_cache[spec.case_id]


@pytest.mark.parametrize("spec", TABLE1_CASES, ids=lambda s: s.name.replace(" ", ""))
def test_serial_bisection(benchmark, spec):
    """tau_1 column: single-thread classical bisection sweep."""
    model = get_model(spec)
    result = benchmark.pedantic(
        lambda: solve_serial(model, strategy="bisection", options=OPTIONS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["crossings"] = result.num_crossings
    benchmark.extra_info["shifts"] = result.shifts_processed
    benchmark.extra_info["operator_applies"] = result.work["operator_applies"]


@pytest.mark.parametrize("spec", TABLE1_CASES, ids=lambda s: s.name.replace(" ", ""))
def test_parallel_queue(benchmark, spec):
    """tau_T column: dynamic work-queue sweep with T threads."""
    model = get_model(spec)
    result = benchmark.pedantic(
        lambda: solve_parallel(model, num_threads=BENCH_THREADS, options=OPTIONS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["crossings"] = result.num_crossings
    benchmark.extra_info["shifts"] = result.shifts_processed
    benchmark.extra_info["eliminated"] = result.work["shifts_eliminated"]
    benchmark.extra_info["operator_applies"] = result.work["operator_applies"]


def test_table1_report(benchmark):
    """Full Table I: all 12 cases, serial vs parallel, paper layout."""

    def run():
        rows = run_table1(
            cases=TABLE1_CASES,
            scale=BENCH_SCALE,
            num_threads=BENCH_THREADS,
            repeats=BENCH_REPEATS,
            options=OPTIONS,
        )
        return format_table1(rows, BENCH_THREADS)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    path = write_artifact("table1.txt", table)
    print(f"\n[Table I reproduction, scale={BENCH_SCALE}, T={BENCH_THREADS}]")
    print(table)
    print(f"(written to {path})")
