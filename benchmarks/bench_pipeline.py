"""Supporting-pipeline benchmarks: fitting, characterization, enforcement.

Not a paper table, but the "few seconds, almost real-time" claim of the
conclusions covers the whole characterization flow; these benchmarks keep
every pipeline stage's cost visible so regressions are caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from _config import BENCH_SCALE
from repro.core.options import SolverOptions
from repro.passivity.characterization import characterize_passivity
from repro.passivity.enforcement import enforce_passivity
from repro.synth.generator import random_macromodel
from repro.vectfit.vector_fitting import vector_fit

OPTIONS = SolverOptions()

NUM_POLES = max(8, int(40 * BENCH_SCALE * 10))


@pytest.fixture(scope="module")
def source_model():
    return random_macromodel(NUM_POLES, 4, seed=777, sigma_target=1.05)


@pytest.fixture(scope="module")
def samples(source_model):
    freqs = np.linspace(0.01, 16.0, 300)
    return freqs, source_model.frequency_response(freqs)


def test_vector_fitting(benchmark, source_model, samples):
    freqs, responses = samples
    fit = benchmark.pedantic(
        lambda: vector_fit(freqs, responses, num_poles=source_model.num_poles),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["rms_error"] = fit.rms_error
    assert fit.rms_error < 1e-6


def test_characterization(benchmark, source_model):
    report = benchmark.pedantic(
        lambda: characterize_passivity(source_model, num_threads=2, options=OPTIONS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["bands"] = len(report.bands)
    assert not report.passive


def test_enforcement(benchmark, source_model):
    result = benchmark.pedantic(
        lambda: enforce_passivity(source_model, num_threads=2, options=OPTIONS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["iterations"] = result.iterations
    assert result.passive
