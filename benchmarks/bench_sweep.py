"""Dense frequency-sweep benchmark: looped scalar kernels vs batched.

The paper's "few seconds, almost real-time" claim hinges on sweep-style
workloads (sigma sampling, violation-band classification, Fig. 6 style
validation) running at BLAS speed.  This suite pins the cost of a dense
sigma sweep through both code paths so the batched layer's advantage is
tracked — and a regression that silently falls back to per-point Python
loops shows up as a benchmark cliff, not just a vibe.
"""

from __future__ import annotations

import numpy as np
import pytest

from _config import BENCH_SCALE
from repro.macromodel.realization import pole_residue_to_simo
from repro.synth.generator import random_macromodel

NUM_POLES = max(8, int(100 * BENCH_SCALE * 20))
POINTS = max(50, int(1000 * BENCH_SCALE * 20))
PORTS = 4


@pytest.fixture(scope="module")
def simo():
    model = random_macromodel(NUM_POLES, PORTS, seed=777, sigma_target=1.05)
    return pole_residue_to_simo(model)


@pytest.fixture(scope="module")
def s_points():
    return 1j * np.linspace(0.01, 16.0, POINTS)


def _sigma_looped(simo, s_points):
    sig = np.empty(s_points.size)
    for i, s in enumerate(s_points):
        h = simo.transfer(s)
        sig[i] = np.linalg.svd(h, compute_uv=False)[0]
    return sig


def _sigma_batched(simo, s_points):
    h = simo.transfer_many(s_points)
    return np.linalg.svd(h, compute_uv=False)[:, 0]


def test_sweep_looped(benchmark, simo, s_points):
    sig = benchmark(_sigma_looped, simo, s_points)
    benchmark.extra_info["points"] = int(s_points.size)
    benchmark.extra_info["order"] = int(simo.order)
    assert sig.size == s_points.size


def test_sweep_batched(benchmark, simo, s_points):
    sig = benchmark(_sigma_batched, simo, s_points)
    benchmark.extra_info["points"] = int(s_points.size)
    benchmark.extra_info["order"] = int(simo.order)
    # The batched path must agree with the scalar loop to machine precision.
    np.testing.assert_allclose(
        sig, _sigma_looped(simo, s_points), atol=1e-12, rtol=0.0
    )
