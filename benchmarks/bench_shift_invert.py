"""Ablation B: complexity of the SMW shift-invert vs. dense alternatives.

Sec. III of the paper motivates the structured approach: the dense
Hamiltonian is full, so a full eigensolution costs O(n^3) and even one
dense shifted solve costs O(n^3) (O(n^2) per extra right-hand side after
factorization), while the Sherman-Morrison-Woodbury operator of eq. (6)
applies ``(M - theta I)^{-1}`` in O(n p).

The benchmark sweeps the dynamic order at a fixed port count and measures:

* SMW operator construction + apply (the fast path);
* a dense LU solve of ``(M - theta I) x = b`` (the naive alternative);
* the full dense eigensolution (the baseline the paper calls
  "unacceptable for large-size macromodels").
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg

from _config import BENCH_SCALE, write_artifact
from repro.hamiltonian.operator import HamiltonianOperator
from repro.synth.generator import random_simo_macromodel

PORTS = 8
BASE = max(64, int(1000 * BENCH_SCALE))
ORDERS = [BASE, 2 * BASE, 4 * BASE]

_cache = {}


def get_setup(order):
    if order not in _cache:
        simo = random_simo_macromodel(
            order, PORTS, seed=order, sigma_target=None
        )
        op = HamiltonianOperator(simo)
        rng = np.random.default_rng(order)
        x = rng.standard_normal(op.dimension) + 1j * rng.standard_normal(op.dimension)
        _cache[order] = (simo, op, x)
    return _cache[order]


@pytest.mark.parametrize("order", ORDERS)
def test_smw_apply(benchmark, order):
    """O(n p): one SMW shift-invert application (operator pre-built)."""
    _, op, x = get_setup(order)
    si = op.shift_invert(1.0j)
    benchmark(si.matvec, x)


@pytest.mark.parametrize("order", ORDERS)
def test_smw_build_and_apply(benchmark, order):
    """O(n p + p^3): per-shift setup plus one application."""
    _, op, x = get_setup(order)

    def run():
        si = op.shift_invert(1.0j)
        return si.matvec(x)

    benchmark(run)


@pytest.mark.parametrize("order", ORDERS)
def test_dense_lu_solve(benchmark, order):
    """O(n^3): dense factor-and-solve of the shifted Hamiltonian."""
    _, op, x = get_setup(order)
    m = op.dense().astype(complex)
    shifted = m - 1.0j * np.eye(m.shape[0])

    def run():
        lu = scipy.linalg.lu_factor(shifted)
        return scipy.linalg.lu_solve(lu, x)

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("order", ORDERS[:2])
def test_dense_full_eig(benchmark, order):
    """O(n^3): the full dense eigensolution of Sec. III."""
    _, op, _ = get_setup(order)
    m = op.dense()
    benchmark.pedantic(lambda: scipy.linalg.eigvals(m), rounds=1, iterations=1)


def test_scaling_report(benchmark):
    """Empirical scaling exponents: SMW ~ n, dense >= n^2."""
    import time

    def measure(fn, repeats=3):
        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def run():
        rows = [f"{'n':>8}{'smw apply':>14}{'dense solve':>14}{'dense eig':>14}"]
        rows.append("-" * len(rows[0]))
        timings = []
        for order in ORDERS:
            _, op, x = get_setup(order)
            si = op.shift_invert(1.0j)
            t_smw = measure(lambda: si.matvec(x))
            m = op.dense().astype(complex)
            shifted = m - 1.0j * np.eye(m.shape[0])
            t_dense = measure(
                lambda: scipy.linalg.lu_factor(shifted), repeats=1
            )
            t_eig = measure(lambda: scipy.linalg.eigvals(m), repeats=1)
            timings.append((order, t_smw, t_dense, t_eig))
            rows.append(
                f"{order:>8}{t_smw:>14.6f}{t_dense:>14.6f}{t_eig:>14.6f}"
            )
        # Growth factors across the 4x order sweep.
        growth_smw = timings[-1][1] / max(timings[0][1], 1e-12)
        growth_eig = timings[-1][3] / max(timings[0][3], 1e-12)
        rows.append("")
        rows.append(
            f"order grew {ORDERS[-1] // ORDERS[0]}x:"
            f" SMW apply grew {growth_smw:.1f}x,"
            f" dense eig grew {growth_eig:.1f}x"
        )
        # Shape assertion: the dense eigensolution must scale strictly
        # worse than the structured apply.
        assert growth_eig > growth_smw
        return "\n".join(rows)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    path = write_artifact("shift_invert_scaling.txt", table)
    print("\n[Shift-invert complexity ablation]")
    print(table)
    print(f"(written to {path})")
