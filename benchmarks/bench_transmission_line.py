"""Scheduler stress benchmark: transmission-line resonance combs.

The paper's industrial cases are electrically long packaging
interconnects; their rational models carry regularly spaced resonance
combs, which produce *many evenly distributed* imaginary eigenvalues —
the stress case for band-coverage scheduling (every interval contains
work; elimination is rare; splits are common).

This benchmark sweeps comb models of growing resonance counts and checks
that the solver's work grows roughly linearly with the number of
crossings — the scalability property that lets the paper handle cases
with N_lambda up to 125.
"""

from __future__ import annotations

import pytest

from _config import BENCH_SCALE, BENCH_THREADS, write_artifact
from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.core.serial import solve_serial
from repro.synth.transmission_line import transmission_line_model

OPTIONS = SolverOptions()

_BASE_RESONANCES = max(4, int(80 * BENCH_SCALE))
RESONANCES = [_BASE_RESONANCES * k for k in (1, 2, 4)]

_models = {}


def get_model(num_resonances):
    if num_resonances not in _models:
        _models[num_resonances] = transmission_line_model(
            num_resonances,
            4,
            seed=num_resonances,
            sigma_target=1.12,
            delay=float(num_resonances) / 4.0,  # keep the band roughly fixed
        )
    return _models[num_resonances]


@pytest.mark.parametrize("num_resonances", RESONANCES)
def test_comb_serial(benchmark, num_resonances):
    model = get_model(num_resonances)
    result = benchmark.pedantic(
        lambda: solve_serial(model, strategy="bisection", options=OPTIONS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["crossings"] = result.num_crossings
    benchmark.extra_info["shifts"] = result.shifts_processed


@pytest.mark.parametrize("num_resonances", RESONANCES)
def test_comb_parallel(benchmark, num_resonances):
    model = get_model(num_resonances)
    result = benchmark.pedantic(
        lambda: solve_parallel(
            model, num_threads=BENCH_THREADS, options=OPTIONS
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["crossings"] = result.num_crossings
    benchmark.extra_info["shifts"] = result.shifts_processed


def test_comb_report(benchmark):
    """Crossings scale with the comb; work per crossing stays bounded."""

    def run():
        lines = [
            f"{'resonances':>11}{'order':>7}{'crossings':>10}{'shifts':>8}"
            f"{'applies':>9}{'applies/crossing':>18}"
        ]
        lines.append("-" * len(lines[0]))
        rows = []
        for num_resonances in RESONANCES:
            model = get_model(num_resonances)
            result = solve_serial(model, strategy="bisection", options=OPTIONS)
            applies = result.work["operator_applies"]
            per = applies / max(result.num_crossings, 1)
            rows.append((result.num_crossings, per))
            lines.append(
                f"{num_resonances:>11}{model.order:>7}{result.num_crossings:>10}"
                f"{result.shifts_processed:>8}{applies:>9}{per:>18.1f}"
            )
        # More resonances must produce more crossings (comb grows)...
        assert rows[-1][0] > rows[0][0]
        # ...with sub-quadratic growth of work per crossing.
        assert rows[-1][1] < 10.0 * rows[0][1]
        return "\n".join(lines)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    path = write_artifact("transmission_line_scaling.txt", table)
    print("\n[Transmission-line comb scaling]")
    print(table)
    print(f"(written to {path})")
