"""Ablation C: Hamiltonian characterization vs. adaptive sampling (ref. [17]).

The paper's Sec. I motivates the Hamiltonian test as "a very reliable
technique" compared to sampling-based checks.  This benchmark quantifies
the claim on high-Q synthetic models:

* the **blind** adaptive scan (no model structure) misses narrow
  violations entirely;
* the **seeded** scan (resonance-aware, the practical variant) finds them
  but costs many transfer evaluations;
* the **Hamiltonian** eigensolver finds the exact crossing frequencies,
  certifies the whole band, and reports violations the sampling variants
  can only bracket.
"""

from __future__ import annotations

import pytest

from _config import BENCH_SCALE, write_artifact
from repro.core.options import SolverOptions
from repro.passivity.characterization import characterize_passivity
from repro.passivity.sampling import sampled_violations
from repro.synth.generator import random_macromodel

OPTIONS = SolverOptions()

NUM_POLES = max(10, int(200 * BENCH_SCALE))
SEEDS = (5, 15, 25)

_models = {}


def get_model(seed):
    if seed not in _models:
        # Sharp resonances: the regime where sampling struggles.
        _models[seed] = random_macromodel(
            NUM_POLES, 3, seed=seed, sigma_target=1.05, q_range=(40.0, 120.0)
        )
    return _models[seed]


@pytest.mark.parametrize("seed", SEEDS)
def test_hamiltonian_characterization(benchmark, seed):
    model = get_model(seed)
    report = benchmark.pedantic(
        lambda: characterize_passivity(model, num_threads=2, options=OPTIONS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["bands"] = len(report.bands)
    assert not report.passive


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_sampling(benchmark, seed):
    model = get_model(seed)
    report = benchmark.pedantic(
        lambda: sampled_violations(model, 15.0, seed_resonances=True),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["violations"] = len(report.violations)
    benchmark.extra_info["evaluations"] = report.evaluations


@pytest.mark.parametrize("seed", SEEDS)
def test_blind_sampling(benchmark, seed):
    model = get_model(seed)
    report = benchmark.pedantic(
        lambda: sampled_violations(model, 15.0, seed_resonances=False),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["violations"] = len(report.violations)
    benchmark.extra_info["evaluations"] = report.evaluations


def test_sampling_ablation_report(benchmark):
    """Blind sampling must miss at least one violation the exact test finds."""

    def run():
        lines = [
            f"{'seed':>6}{'exact bands':>12}{'seeded found':>13}"
            f"{'blind found':>12}{'seeded evals':>13}{'blind evals':>12}"
        ]
        lines.append("-" * len(lines[0]))
        blind_missed_any = False
        for seed in SEEDS:
            model = get_model(seed)
            exact = characterize_passivity(model, num_threads=2, options=OPTIONS)
            seeded = sampled_violations(model, 15.0, seed_resonances=True)
            blind = sampled_violations(model, 15.0, seed_resonances=False)
            if len(blind.violations) < len(exact.bands):
                blind_missed_any = True
            lines.append(
                f"{seed:>6}{len(exact.bands):>12}{len(seeded.violations):>13}"
                f"{len(blind.violations):>12}{seeded.evaluations:>13}"
                f"{blind.evaluations:>12}"
            )
        lines.append("")
        lines.append(
            "blind sampling missed violations on at least one model:"
            f" {blind_missed_any}"
        )
        assert blind_missed_any, (
            "expected the blind scan to miss a high-Q violation; tighten"
            " q_range if the generator produced only wide violations"
        )
        return "\n".join(lines)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    path = write_artifact("sampling_ablation.txt", table)
    print("\n[Characterization ablation: Hamiltonian vs sampling]")
    print(table)
    print(f"(written to {path})")
