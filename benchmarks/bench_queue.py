"""Queue throughput benchmark: one worker vs a two-worker fleet.

The durable queue's scaling story: a fleet of independent
characterization jobs drained by N workers should approach N-way
speedup, because workers only rendezvous at the (cheap) SQLite claim.
This suite times the same seeded fleet drained by one and by two
workers, asserts every job completed exactly once either way, and — on
a multi-core host — asserts the two-worker drain lands at or under
0.6x the single-worker wall time (claim contention and the final
straggler job cost the rest).  On a single core the ratio is recorded
in the artifact but not asserted: two GIL-sharing workers cannot beat
one.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from pathlib import Path

from _config import BENCH_SCALE, write_artifact
from repro.core.config import RunConfig
from repro.queue import JobQueue, QueueConfig, QueueWorker, parse_spec

JOBS = max(4, int(16 * BENCH_SCALE * 20))
ORDER = max(6, int(10 * BENCH_SCALE * 20))


def drain(num_workers: int, jobs: int = JOBS) -> float:
    """Enqueue a fresh fleet and drain it; returns the drain seconds.

    Every call builds its own queue in a throwaway directory with the
    cache off, so repeated rounds measure real eigensweeps — never
    store hits from a previous round.
    """
    tmp = tempfile.mkdtemp(prefix="bench-queue-")
    try:
        queue_path = Path(tmp) / "queue.sqlite3"
        base = RunConfig(cache="off")
        queue = JobQueue(queue_path)
        try:
            for index in range(jobs):
                spec = {
                    "kind": "synth",
                    "order": ORDER,
                    "ports": 2,
                    "seed": index,
                    "task": "check",
                }
                parsed = parse_spec(spec, base_config=base, job_id=f"b{index}")
                queue.enqueue(
                    job_id=f"b{index}",
                    task=parsed.task,
                    name=parsed.name,
                    kind=parsed.kind,
                    spec=parsed.resolved_spec(),
                    key=parsed.key,
                )
            workers = [
                QueueWorker(
                    queue_path,
                    worker_id=f"bench-{index}",
                    backend="serial",
                    queue_config=QueueConfig(
                        poll_seconds=0.01,
                        lease_seconds=600.0,
                        heartbeat_seconds=5.0,
                    ),
                )
                for index in range(num_workers)
            ]
            threads = [
                threading.Thread(target=worker.run, name=worker.worker_id)
                for worker in workers
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            while queue.depth()["done"] < jobs:
                time.sleep(0.005)
            elapsed = time.perf_counter() - started
            for worker in workers:
                worker.request_stop()
            for thread in threads:
                thread.join(timeout=60.0)
            rows = queue.list(limit=jobs)
            assert len(rows) == jobs
            assert all(row.state == "done" for row in rows)
            # Exactly-once under concurrency: nobody ever re-ran a job.
            assert all(row.attempts == 1 for row in rows)
        finally:
            queue.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return elapsed


def test_queue_one_worker(benchmark):
    elapsed = benchmark.pedantic(drain, args=(1,), rounds=3, iterations=1)
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["order"] = ORDER
    assert elapsed > 0.0


def test_queue_two_workers_scale(benchmark):
    one = min(drain(1) for _ in range(2))
    two = benchmark.pedantic(drain, args=(2,), rounds=3, iterations=1)
    cores = os.cpu_count() or 1
    ratio = two / one
    benchmark.extra_info.update(
        {"jobs": JOBS, "one_worker_s": one, "ratio": ratio, "cores": cores}
    )
    write_artifact(
        "queue_scaling.txt",
        f"jobs={JOBS} order={ORDER} cores={cores}\n"
        f"one_worker_s={one:.3f}\n"
        f"two_worker_s={two:.3f}\n"
        f"ratio={ratio:.3f}",
    )
    if cores >= 2:
        # The acceptance bar: two workers at or under 0.6x one worker.
        assert ratio <= 0.6, (
            f"two-worker drain only reached {ratio:.2f}x of one worker"
        )
