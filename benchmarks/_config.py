"""Shared benchmark configuration.

All benchmarks honour three environment variables so the same files serve
both quick CI runs and full paper-scale measurements:

* ``REPRO_BENCH_SCALE``   — model-order scale factor (default 0.05; the
  paper's full sizes are scale 1.0);
* ``REPRO_BENCH_THREADS`` — parallel thread count (default 8; paper: 16);
* ``REPRO_BENCH_REPEATS`` — randomized repetitions for the statistical
  experiments (default 3; paper Fig. 6: 20).

Formatted result tables are also written under ``benchmarks/results/`` so
the reproduction artifacts survive the pytest run.
"""

from __future__ import annotations

import os
from pathlib import Path

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_THREADS = int(os.environ.get("REPRO_BENCH_THREADS", "8"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_artifact(name: str, content: str) -> Path:
    """Persist a formatted result table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    header = (
        f"# scale={BENCH_SCALE} threads={BENCH_THREADS}"
        f" repeats={BENCH_REPEATS}\n"
    )
    path.write_text(header + content + "\n")
    return path
