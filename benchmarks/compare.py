#!/usr/bin/env python
"""Benchmark regression gate: diff a fresh run against the tracked baseline.

Compares the per-stage wall-clock timings of a fresh ``run.py`` output
against the repo-tracked ``BENCH_pipeline.json`` and exits non-zero when
any stage slowed down by more than the threshold (default 25%).  Stages
faster than the noise floor (default 50 ms) in *both* runs are reported
but never fail the gate — interpreter jitter dominates below that.

The gate is **tier-aware** (schema ``repro-bench-pipeline/2``; payloads
without a ``tier`` field — including every schema/1 baseline — are
treated as the ``serial`` tier):

* Timing diffs only run between payloads of the *same* tier.  A
  multicore run is never timed against the serial baseline (or vice
  versa) — cross-tier wall clocks measure different stages on different
  hardware assumptions.
* Stages whose ``extra`` carries a ``min_speedup`` floor (the multicore
  tier's parallel-scaling stages) are self-gating: the *current*
  payload's measured ``speedup`` must exceed the floor, no baseline
  needed.  Floors are skipped — with the reason printed — when the run
  or the host has fewer than 2 cores, where parallel speedups are
  physically unreachable.
* When neither a timing diff nor a floor applies (e.g. comparing a
  multicore run with no gated stages against a serial baseline), the
  gate fails **loudly** with exit 2 instead of green-lighting a run it
  never actually inspected.

Usage::

    python benchmarks/run.py --output fresh.json
    python benchmarks/compare.py --baseline BENCH_pipeline.json --current fresh.json

CI wires this into the ``bench-smoke`` (serial tier) and
``bench-multicore`` jobs; commits whose message contains
``[bench-skip]`` bypass the gate (escape hatch for runs on known-noisy
runners or intentional trade-offs — say why in the commit).

Exit codes: 0 — no regression; 1 — at least one stage regressed or
missed its speedup floor; 2 — the payloads could not be compared
(missing file/stage, or zero comparable stages for the current tier).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Fail when current > baseline * (1 + THRESHOLD) for an eligible stage.
DEFAULT_THRESHOLD = 0.25

#: Stages faster than this in both runs never fail the gate (seconds).
DEFAULT_MIN_SECONDS = 0.05


@dataclass(frozen=True)
class StageDiff:
    """Comparison of one named timing between baseline and current."""

    name: str
    baseline_seconds: float
    current_seconds: float
    threshold: float
    min_seconds: float

    @property
    def ratio(self) -> float:
        """Current over baseline (>1 means slower)."""
        if self.baseline_seconds <= 0.0:
            return float("inf") if self.current_seconds > 0.0 else 1.0
        return self.current_seconds / self.baseline_seconds

    @property
    def eligible(self) -> bool:
        """True when the stage is above the noise floor in either run."""
        return (
            self.baseline_seconds >= self.min_seconds
            or self.current_seconds >= self.min_seconds
        )

    @property
    def regressed(self) -> bool:
        """True when this stage fails the gate."""
        return self.eligible and self.ratio > 1.0 + self.threshold

    def format_row(self) -> str:
        flag = "FAIL" if self.regressed else ("  ok" if self.eligible else "dust")
        return (
            f"{flag}  {self.name:<24} {self.baseline_seconds:10.4f}s"
            f" -> {self.current_seconds:10.4f}s   x{self.ratio:.3f}"
        )


def payload_tier(payload: dict) -> str:
    """Bench tier of a payload; schema/1 payloads predate the multicore
    tier, so a missing ``tier`` field always means ``serial``."""
    tier = payload.get("tier")
    return str(tier) if tier else "serial"


def payload_cpu_count(payload: dict) -> Optional[int]:
    """Core count stamped by ``run.py`` (schema/2), or None."""
    value = payload.get("cpu_count")
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        return None


@dataclass(frozen=True)
class FloorCheck:
    """A self-gating stage: its measured speedup vs its declared floor."""

    name: str
    speedup: float
    min_speedup: float

    @property
    def failed(self) -> bool:
        """True when the stage missed its floor (strict: the floor
        itself is not enough — ``min_speedup`` 1.0 demands a real
        parallel win, not a tie with serial)."""
        return not self.speedup > self.min_speedup

    def format_row(self) -> str:
        flag = "FAIL" if self.failed else "  ok"
        return (
            f"{flag}  {self.name:<24} speedup x{self.speedup:.3f}"
            f"   (floor x{self.min_speedup:.3f})"
        )


def speedup_floors(payload: dict) -> List[FloorCheck]:
    """Extract the ``min_speedup``-floored stages of a payload."""
    checks: List[FloorCheck] = []
    for stage in payload.get("stages", []):
        extra = stage.get("extra") or {}
        floor = extra.get("min_speedup")
        speedup = extra.get("speedup")
        if floor is None or speedup is None:
            continue
        checks.append(
            FloorCheck(
                name=str(stage.get("name")),
                speedup=float(speedup),
                min_speedup=float(floor),
            )
        )
    return checks


def floor_skip_reason(
    current: dict, cpu_count: Optional[int] = None
) -> Optional[str]:
    """Why the speedup floors should not be enforced on this run.

    Floors assert parallel wins, which need >= 2 cores.  An explicit
    ``cpu_count`` wins (tests); otherwise the count the run itself
    stamped (the run may have executed on a different host than the
    comparison); otherwise this host's.
    """
    if cpu_count is not None:
        cores: Optional[int] = cpu_count
    else:
        cores = payload_cpu_count(current)
        if cores is None:
            cores = os.cpu_count()
    if cores is not None and cores < 2:
        return (
            f"run executed on {cores} CPU core(s); parallel speedup"
            " floors are unreachable there"
        )
    return None


def _timings(payload: dict) -> Dict[str, float]:
    """Extract the named wall-clock timings compared by the gate.

    Covers the dense-sweep micro-benchmark (batched path only — the
    looped reference exists for the speedup story, not the gate) and
    every pipeline stage, including the batch-fleet stage added by
    ``run.py --batch-models``.
    """
    timings: Dict[str, float] = {}
    sweep = payload.get("sweep")
    if isinstance(sweep, dict) and "batched_seconds" in sweep:
        timings["sweep.batched"] = float(sweep["batched_seconds"])
    for stage in payload.get("stages", []):
        name = stage.get("name")
        seconds = stage.get("seconds")
        if name is None or seconds is None:
            continue
        timings[str(name)] = float(seconds)
    return timings


def fleet_gate_skip_reason(
    current: dict, cpu_count: Optional[int] = None
) -> Optional[str]:
    """Why the ``batch_fleet`` stage should not be gated on this host.

    The fleet stage measures process-pool speedup, which is meaningless
    on a single-core runner (or when the run recorded a one-worker
    pool): the "parallel" timing degenerates to serial-plus-overhead and
    the gate would flag infrastructure, not code.  Returns a
    human-readable reason to skip, or ``None`` to gate normally.
    """
    cores = os.cpu_count() if cpu_count is None else cpu_count
    if cores is not None and cores < 2:
        return (
            f"host has {cores} CPU core(s); the process-pool timing is"
            " serial-plus-overhead here, not a regression signal"
        )
    for stage in current.get("stages", []):
        if stage.get("name") != "batch_fleet":
            continue
        workers = (stage.get("extra") or {}).get("workers")
        if workers == 1:
            return (
                "the current run recorded workers: 1; a one-worker pool"
                " measures overhead, not parallel speed"
            )
    return None


def compare_payloads(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Tuple[List[StageDiff], List[str]]:
    """Diff two ``run.py`` payloads.

    Returns
    -------
    (diffs, missing)
        Per-stage comparisons for the stages present in both payloads,
        and the names of baseline stages absent from the current run
        (a silently dropped stage must not pass the gate).
    """
    base_timings = _timings(baseline)
    cur_timings = _timings(current)
    if not base_timings:
        raise ValueError("baseline payload contains no comparable timings")
    diffs = [
        StageDiff(
            name=name,
            baseline_seconds=base_timings[name],
            current_seconds=cur_timings[name],
            threshold=threshold,
            min_seconds=min_seconds,
        )
        for name in base_timings
        if name in cur_timings
    ]
    missing = sorted(set(base_timings) - set(cur_timings))
    return diffs, missing


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_pipeline.json",
        help="tracked baseline JSON (default: repo-root BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--current", type=Path, required=True, help="fresh run.py output JSON"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed per-stage slowdown fraction (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="noise floor: stages faster than this in both runs never fail",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load benchmark payloads: {exc}", file=sys.stderr)
        return 2

    base_tier = payload_tier(baseline)
    cur_tier = payload_tier(current)
    same_tier = base_tier == cur_tier
    diffs: List[StageDiff] = []
    missing: List[str] = []
    if same_tier:
        try:
            diffs, missing = compare_payloads(
                baseline,
                current,
                threshold=args.threshold,
                min_seconds=args.min_seconds,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    print(
        f"benchmark gate: threshold +{args.threshold:.0%},"
        f" noise floor {args.min_seconds:g}s, tier {cur_tier}"
    )
    if not same_tier:
        print(
            f"NOTE  baseline is tier '{base_tier}', current is tier"
            f" '{cur_tier}': timings are not comparable across tiers,"
            " only speedup floors gate this run"
        )
    skipped: Dict[str, str] = {}
    fleet_reason = fleet_gate_skip_reason(current)
    if fleet_reason is not None:
        skipped["batch_fleet"] = fleet_reason
    for diff in diffs:
        if diff.name in skipped:
            print(f"SKIP  {diff.name:<24} {skipped[diff.name]}")
        else:
            print(diff.format_row())
    for name in missing:
        print(f"GONE  {name:<24} present in baseline, absent from current run")

    floors = speedup_floors(current)
    floors_reason = floor_skip_reason(current) if floors else None
    gated_floors: List[FloorCheck] = []
    for check in floors:
        if floors_reason is not None:
            print(f"SKIP  {check.name:<24} {floors_reason}")
        else:
            print(check.format_row())
            gated_floors.append(check)

    regressions = [
        diff for diff in diffs if diff.regressed and diff.name not in skipped
    ]
    floor_failures = [check for check in gated_floors if check.failed]
    gated_anything = (
        any(diff.name not in skipped for diff in diffs) or gated_floors
    )
    if missing:
        print(
            f"{len(missing)} baseline stage(s) missing from the current run",
            file=sys.stderr,
        )
        return 2
    if not gated_anything:
        # A gate that inspected nothing must not report success — a CI
        # job green on zero comparable stages is a silent skip.
        print(
            f"error: zero comparable stages for tier '{cur_tier}'"
            f" (baseline tier '{base_tier}', no applicable speedup"
            " floors); refusing to pass a gate that checked nothing",
            file=sys.stderr,
        )
        return 2
    if regressions or floor_failures:
        if regressions:
            print(
                f"{len(regressions)} stage(s) regressed beyond"
                f" {args.threshold:.0%}: "
                + ", ".join(diff.name for diff in regressions),
                file=sys.stderr,
            )
        if floor_failures:
            print(
                f"{len(floor_failures)} stage(s) missed their speedup"
                " floor: "
                + ", ".join(check.name for check in floor_failures),
                file=sys.stderr,
            )
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
