"""Batch fleet benchmark: serial vs process-pool execution.

The fleet layer is the system's multi-model workload story: a batch of
macromodels run through fit → check on a bounded process pool should
approach linear speedup over the serial loop on a multi-core host.  This
suite tracks both paths on the same seeded fleet so a scheduling or
serialization regression (e.g. the pool silently degrading to one
in-flight job) shows up as a wall-clock cliff — and asserts the two
execution orders produce identical per-model crossing sets.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from _config import BENCH_SCALE
from repro.batch import BatchRunner, synth_fleet

MODELS = max(4, int(8 * BENCH_SCALE * 20))
ORDER = max(6, int(12 * BENCH_SCALE * 20))
WORKERS = min(os.cpu_count() or 1, 4)


@pytest.fixture(scope="module")
def fleet():
    return synth_fleet(MODELS, order_per_column=ORDER, base_seed=777)


def test_fleet_serial(benchmark, fleet):
    report = benchmark(BatchRunner(backend="serial").run, fleet)
    benchmark.extra_info["models"] = MODELS
    benchmark.extra_info["order_per_column"] = ORDER
    assert report.all_ok, report.summary()


def test_fleet_process(benchmark, fleet):
    runner = BatchRunner(backend="process", workers=WORKERS)
    report = benchmark(runner.run, fleet)
    benchmark.extra_info["models"] = MODELS
    benchmark.extra_info["workers"] = WORKERS
    assert report.all_ok, report.summary()
    # Same fleet, same seeds: the pool must not change the science.
    serial = BatchRunner(backend="serial").run(fleet).crossings_by_name()
    for name, crossings in report.crossings_by_name().items():
        np.testing.assert_allclose(
            crossings, serial[name], atol=1e-12, rtol=0.0
        )
