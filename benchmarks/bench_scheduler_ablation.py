"""Ablation A: dynamic scheduling vs. the static pre-distributed grid.

Sec. IV of the paper rejects pre-distributing shifts on a regular grid
because "it is very likely that the work performed on some preallocated
shifts will be useless, since they could be included in the convergence
disks associated to nearby disks... This poor scalability was indeed
verified experimentally."

This benchmark verifies the same claim on the synthetic Table I cases:
the static grid must process at least as many shifts (and spend at least
as much operator work) as the dynamic queue, with the gap reported per
case.
"""

from __future__ import annotations

import pytest

from _config import BENCH_SCALE, BENCH_THREADS, write_artifact
from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.synth.workloads import TABLE1_CASES, build_case

OPTIONS = SolverOptions()

CASES = TABLE1_CASES[:6]

_model_cache = {}


def get_model(spec):
    if spec.case_id not in _model_cache:
        _model_cache[spec.case_id] = build_case(spec, scale=BENCH_SCALE)
    return _model_cache[spec.case_id]


@pytest.mark.parametrize("spec", CASES, ids=lambda s: s.name.replace(" ", ""))
def test_dynamic_queue(benchmark, spec):
    model = get_model(spec)
    result = benchmark.pedantic(
        lambda: solve_parallel(
            model, num_threads=BENCH_THREADS, options=OPTIONS, dynamic=True
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["shifts"] = result.shifts_processed
    benchmark.extra_info["eliminated"] = result.work["shifts_eliminated"]


@pytest.mark.parametrize("spec", CASES, ids=lambda s: s.name.replace(" ", ""))
def test_static_grid(benchmark, spec):
    model = get_model(spec)
    result = benchmark.pedantic(
        lambda: solve_parallel(
            model, num_threads=BENCH_THREADS, options=OPTIONS, dynamic=False
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["shifts"] = result.shifts_processed


def test_ablation_report(benchmark):
    """Dynamic never does more shift work than static; report the ratios."""

    def run():
        lines = [
            f"{'case':<8}{'dyn shifts':>11}{'stat shifts':>12}"
            f"{'dyn applies':>12}{'stat applies':>13}{'work ratio':>12}"
        ]
        lines.append("-" * len(lines[0]))
        for spec in CASES:
            model = get_model(spec)
            dyn = solve_parallel(
                model, num_threads=BENCH_THREADS, options=OPTIONS, dynamic=True
            )
            stat = solve_parallel(
                model, num_threads=BENCH_THREADS, options=OPTIONS, dynamic=False
            )
            assert stat.shifts_processed >= dyn.shifts_processed, spec.name
            assert stat.num_crossings == dyn.num_crossings, spec.name
            ratio = stat.work["operator_applies"] / max(
                dyn.work["operator_applies"], 1
            )
            lines.append(
                f"{spec.name:<8}{dyn.shifts_processed:>11}"
                f"{stat.shifts_processed:>12}"
                f"{dyn.work['operator_applies']:>12}"
                f"{stat.work['operator_applies']:>13}{ratio:>12.3f}"
            )
        return "\n".join(lines)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    path = write_artifact("scheduler_ablation.txt", table)
    print("\n[Scheduler ablation: dynamic vs static grid]")
    print(table)
    print(f"(written to {path})")
