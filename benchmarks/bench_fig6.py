"""Benchmark regenerating **Fig. 6** of the paper.

Speedup vs. thread count for the Case 5 model, averaged over randomized
repetitions (random Arnoldi start vectors — the statistical variation the
paper plots as error bars).  Individual thread counts are benchmarked, and
the report benchmark runs the full driver and writes
``benchmarks/results/fig6.txt``.
"""

from __future__ import annotations

import pytest

from _config import BENCH_REPEATS, BENCH_SCALE, BENCH_THREADS, write_artifact
from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.core.serial import solve_serial
from repro.reporting.fig6 import run_fig6
from repro.reporting.tables import format_fig6
from repro.synth.workloads import fig6_case

OPTIONS = SolverOptions()

THREAD_POINTS = sorted({1, 2, 4, max(1, BENCH_THREADS // 2), BENCH_THREADS})

_model = None


def get_model():
    global _model
    if _model is None:
        _model = fig6_case(scale=BENCH_SCALE)
    return _model


@pytest.mark.parametrize("threads", THREAD_POINTS)
def test_case5_sweep(benchmark, threads):
    """One Fig. 6 sample point: Case 5 swept with ``threads`` workers."""
    model = get_model()

    def run():
        if threads == 1:
            return solve_serial(model, strategy="queue", options=OPTIONS)
        return solve_parallel(model, num_threads=threads, options=OPTIONS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["crossings"] = result.num_crossings
    benchmark.extra_info["operator_applies"] = result.work["operator_applies"]
    benchmark.extra_info["eliminated"] = result.work["shifts_eliminated"]


def test_fig6_report(benchmark):
    """Full Fig. 6 series with mean +/- std over randomized repeats."""

    def run():
        points = run_fig6(
            scale=BENCH_SCALE,
            threads=tuple(range(1, BENCH_THREADS + 1)),
            repeats=BENCH_REPEATS,
            options=OPTIONS,
        )
        return format_fig6(points)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    path = write_artifact("fig6.txt", figure)
    print(f"\n[Fig. 6 reproduction, scale={BENCH_SCALE}, {BENCH_REPEATS} repeats]")
    print(figure)
    print(f"(written to {path})")
