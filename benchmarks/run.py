#!/usr/bin/env python
"""Benchmark runner: tracked perf baseline for the characterization flow.

Produces ``BENCH_pipeline.json`` (repo root by default) holding

* the **sweep** micro-benchmark — a dense frequency sweep (default 1000
  points, p = 4, n ~ 400) timed twice: once through the historical
  per-point scalar path (``transfer`` + one SVD per point in a Python
  loop) and once through the batched multi-shift path (``transfer_many``
  + one stacked SVD), with the measured speedup and the max elementwise
  deviation between the two;
* per-stage **pipeline** timings (vector fitting, Hamiltonian
  characterization, enforcement, adaptive-sampling baseline) with the
  stages' abstract :class:`~repro.utils.timing.WorkCounter` units;
* the **batch fleet** stage — the same seeded synthetic fleet run
  through ``repro.batch.BatchRunner`` once serially and once on the
  process pool, with the measured wall-clock speedup and a check that
  the per-model crossing sets agree exactly;
* the **cache hit** stage — the reference model characterized cold
  (store miss, eigensweep runs) and warm (content-addressed store hit)
  through ``RunConfig(cache="readwrite")``, recording the warm latency
  and the warm-vs-cold speedup (the serving story of the result store);
* the **timedomain** stage — recursive-convolution transient of a
  p = 4, 30-pole model over 1e5 steps, timed through the chunked path
  (vectorized forcing + per-chunk GEMM contraction) and the naive
  per-step loop, with the measured speedup and the max elementwise
  deviation;
* optionally the pytest-benchmark suites of this directory, executed at
  the same ``BENCH_SCALE`` with their JSON report folded in.

The runner is **tiered** (``--tier``, default ``serial``) because half
of the interesting numbers only mean anything on a multi-core host:

* ``serial`` — the single-core-safe stages above (sweep, pipeline,
  cache, timedomain).  This is the tier of the tracked baseline and the
  every-commit ``bench-smoke`` CI job.
* ``multicore`` — the parallel-scaling stages: the batch fleet run
  serial-vs-process-pool, the eigensweep run serial-vs-process backend,
  and the durable queue drained by one vs two workers.  Each stage
  records its measured ``speedup`` and (where gated) a ``min_speedup``
  floor that ``compare.py`` enforces on >= 2-core hosts — so the tier
  is self-gating and never needs a multicore timing baseline.

Both tiers stamp the detected ``cpu_count``, the ``tier`` itself, and
the installed pytest version into the payload (schema
``repro-bench-pipeline/2``).

Examples::

    python benchmarks/run.py                      # serial tier
    python benchmarks/run.py --tier multicore --output fresh.json
    python benchmarks/run.py --scale 0.02 --sweep-points 100 --sweep-poles 16
    python benchmarks/run.py --suites bench_pipeline.py bench_shift_invert.py
    python benchmarks/run.py --suites all         # every bench_*.py file

The scale knob mirrors ``REPRO_BENCH_SCALE`` (see ``_config.py``); the
flag wins when both are given.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent
for entry in (str(ROOT / "src"), str(BENCH_DIR)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np  # noqa: E402

from repro.api import Macromodel  # noqa: E402
from repro.batch import BatchRunner, synth_fleet  # noqa: E402
from repro.core.config import RunConfig  # noqa: E402
from repro.core.options import SolverOptions  # noqa: E402
from repro.macromodel.realization import pole_residue_to_simo  # noqa: E402
from repro.passivity.characterization import characterize_passivity  # noqa: E402
from repro.passivity.enforcement import enforce_passivity  # noqa: E402
from repro.passivity.sampling import sampled_violations  # noqa: E402
from repro.synth.generator import random_macromodel  # noqa: E402
from repro.vectfit.vector_fitting import vector_fit  # noqa: E402


def _best_of(repeats: int, fn) -> float:
    """Best-of-N wall time of ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sweep_benchmark(
    *, points: int = 1000, num_poles: int = 100, ports: int = 4, repeats: int = 3
) -> Dict:
    """Dense-sweep micro-benchmark: looped scalar path vs batched path.

    The looped reference reproduces the pre-batching implementation
    exactly — one O(n p) structured ``transfer`` plus one small SVD per
    frequency point, all driven from Python — so the recorded speedup is
    an honest before/after of this PR's kernel layer.
    """
    model = random_macromodel(num_poles, ports, seed=777, sigma_target=1.05)
    simo = pole_residue_to_simo(model)
    omegas = np.linspace(0.01, 16.0, points)
    s_pts = 1j * omegas

    def looped() -> np.ndarray:
        sig = np.empty(points)
        for i, s in enumerate(s_pts):
            h = simo.transfer(s)
            sig[i] = np.linalg.svd(h, compute_uv=False)[0]
        return sig

    def batched() -> np.ndarray:
        h = simo.transfer_many(s_pts)
        return np.linalg.svd(h, compute_uv=False)[:, 0]

    sig_loop = looped()
    sig_batch = batched()
    max_diff = float(np.max(np.abs(sig_loop - sig_batch))) if points else 0.0

    looped_s = _best_of(repeats, looped)
    batched_s = _best_of(repeats, batched)
    return {
        "points": int(points),
        "ports": int(ports),
        "order": int(simo.order),
        "repeats": int(repeats),
        "looped_seconds": looped_s,
        "batched_seconds": batched_s,
        "speedup": looped_s / batched_s if batched_s > 0 else float("inf"),
        "max_abs_diff": max_diff,
    }


def run_pipeline_stages(*, scale: float, threads: int = 2) -> List[Dict]:
    """Time each pipeline stage once, harvesting its work counters."""
    num_poles = max(8, int(40 * scale * 10))
    source = random_macromodel(num_poles, 4, seed=777, sigma_target=1.05)
    freqs = np.linspace(0.01, 16.0, 300)
    options = SolverOptions()
    stages: List[Dict] = []

    t0 = time.perf_counter()
    samples = source.frequency_response(freqs)
    stages.append(
        {
            "name": "frequency_response",
            "seconds": time.perf_counter() - t0,
            "work": None,
            "extra": {"points": int(freqs.size), "ports": 4},
        }
    )

    t0 = time.perf_counter()
    fit = vector_fit(freqs, samples, num_poles=source.num_poles)
    stages.append(
        {
            "name": "vector_fit",
            "seconds": time.perf_counter() - t0,
            "work": None,
            "extra": {
                "num_poles": int(source.num_poles),
                "rms_error": float(fit.rms_error),
                "iterations": int(fit.iterations),
            },
        }
    )

    t0 = time.perf_counter()
    report = characterize_passivity(source, num_threads=threads, options=options)
    stages.append(
        {
            "name": "characterization",
            "seconds": time.perf_counter() - t0,
            "work": dict(report.solve.work) if report.solve is not None else None,
            "extra": {"passive": bool(report.passive), "bands": len(report.bands)},
        }
    )

    t0 = time.perf_counter()
    enforcement = enforce_passivity(source, num_threads=threads, options=options)
    enforcement_work: Dict[str, int] = {}
    for rep in enforcement.reports:
        if rep.solve is not None:
            for key, value in rep.solve.work.items():
                enforcement_work[key] = enforcement_work.get(key, 0) + int(value)
    stages.append(
        {
            "name": "enforcement",
            "seconds": time.perf_counter() - t0,
            "work": enforcement_work or None,
            "extra": {
                "passive": bool(enforcement.passive),
                "iterations": int(enforcement.iterations),
            },
        }
    )

    t0 = time.perf_counter()
    sampling = sampled_violations(source, 16.0)
    stages.append(
        {
            "name": "sampling_baseline",
            "seconds": time.perf_counter() - t0,
            "work": {"transfer_evaluations": int(sampling.evaluations)},
            "extra": {
                "passive": bool(sampling.passive),
                "violations": len(sampling.violations),
            },
        }
    )
    return stages


def run_batch_benchmark(
    *, models: int = 8, workers: Optional[int] = None, order: int = 12
) -> Dict:
    """Batch-fleet stage: serial vs process-pool execution of one fleet.

    Both runs share the same seeded synthetic fleet (so results are
    comparable bit-for-bit); the recorded ``speedup`` is the wall-clock
    ratio, which approaches the worker count on a multi-core host and
    ~1.0 on a single core.
    """
    if workers is None:
        workers = min(os.cpu_count() or 1, 4)
    fleet = synth_fleet(models, order_per_column=order, base_seed=777)

    t0 = time.perf_counter()
    serial_report = BatchRunner(backend="serial").run(fleet)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    process_report = BatchRunner(backend="process", workers=workers).run(fleet)
    process_s = time.perf_counter() - t0

    serial_crossings = serial_report.crossings_by_name()
    process_crossings = process_report.crossings_by_name()
    max_diff = 0.0
    for name, expected in serial_crossings.items():
        got = process_crossings.get(name)
        if got is None or len(got) != len(expected):
            max_diff = float("inf")
            break
        if expected:
            max_diff = max(
                max_diff,
                float(np.max(np.abs(np.asarray(got) - np.asarray(expected)))),
            )
    return {
        "models": int(models),
        "order_per_column": int(order),
        "workers": int(workers),
        "serial_seconds": serial_s,
        "process_seconds": process_s,
        "speedup": serial_s / process_s if process_s > 0 else float("inf"),
        "serial_ok": int(serial_report.num_ok),
        "process_ok": int(process_report.num_ok),
        "process_backend": process_report.backend,
        "max_crossing_diff": max_diff,
    }


def run_eigensweep_backend_benchmark(*, scale: float, workers: int = 2) -> Dict:
    """Eigensweep stage, serial vs process backend, on one seeded model.

    Both runs characterize the same model; the check that their crossing
    sets agree exactly doubles as a cross-backend determinism probe.
    The recorded speedup is informational (``min_speedup`` is left
    unset): at bench scale the process pool's spawn cost can dominate
    the per-segment solves, so a floor here would gate infrastructure
    noise, not code.
    """
    num_poles = max(8, int(40 * scale * 10))
    model = random_macromodel(num_poles, 4, seed=777, sigma_target=1.05)

    t0 = time.perf_counter()
    serial_report = characterize_passivity(
        model, config=RunConfig(num_threads=1, backend="serial")
    )
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    process_report = characterize_passivity(
        model, config=RunConfig(num_threads=workers, backend="process")
    )
    process_s = time.perf_counter() - t0

    serial_x = np.asarray(serial_report.crossings, dtype=float)
    process_x = np.asarray(process_report.crossings, dtype=float)
    if serial_x.shape != process_x.shape:
        max_diff = float("inf")
    elif serial_x.size:
        max_diff = float(np.max(np.abs(serial_x - process_x)))
    else:
        max_diff = 0.0
    return {
        "order": int(num_poles * 4),
        "workers": int(workers),
        "serial_seconds": serial_s,
        "process_seconds": process_s,
        "speedup": serial_s / process_s if process_s > 0 else float("inf"),
        "serial_passive": bool(serial_report.passive),
        "process_passive": bool(process_report.passive),
        "max_crossing_diff": max_diff,
    }


def run_queue_drain_benchmark(*, scale: float, workers: int = 2) -> Dict:
    """Queue stage: one worker vs an N-worker fleet draining one fleet.

    Reuses :func:`bench_queue.drain` (the pytest-benchmark suite's
    helper) so both entry points measure exactly the same enqueue +
    claim + execute + ack path.  On a multi-core host the N-worker
    drain should beat the single worker (workers rendezvous only at the
    cheap SQLite claim); on one core it cannot, which is why
    ``compare.py`` only enforces the floor on >= 2-core hosts.
    """
    from bench_queue import drain

    jobs = max(4, int(16 * scale * 20))
    one_s = drain(1, jobs=jobs)
    multi_s = drain(workers, jobs=jobs)
    return {
        "jobs": int(jobs),
        "workers": int(workers),
        "one_worker_seconds": one_s,
        "multi_worker_seconds": multi_s,
        "speedup": one_s / multi_s if multi_s > 0 else float("inf"),
    }


def run_cache_benchmark(*, scale: float, threads: int = 2, repeats: int = 3) -> Dict:
    """Cache-hit stage: warm vs cold ``check`` latency on the reference model.

    The cold pass runs the full Hamiltonian characterization and writes
    the result into a throwaway content-addressed store; the warm passes
    answer from the store without touching the eigensolver (asserted via
    the session's hit counters).  The recorded ``seconds`` is the *warm*
    latency — the number the serving layer quotes — and ``speedup`` the
    cold/warm ratio the acceptance gate watches (>= 100x expected).
    """
    num_poles = max(8, int(40 * scale * 10))
    model = random_macromodel(num_poles, 4, seed=777, sigma_target=1.05)
    with tempfile.TemporaryDirectory() as tmp:
        config = RunConfig(num_threads=threads, cache="readwrite", cache_dir=tmp)

        t0 = time.perf_counter()
        cold = Macromodel.from_pole_residue(model, config=config)
        cold.check_passivity()
        cold_s = time.perf_counter() - t0
        if cold.cache_stats["writes"] != 1:
            raise RuntimeError(
                f"cold pass did not populate the store: {cold.cache_stats}"
            )

        def warm() -> None:
            session = Macromodel.from_pole_residue(model, config=config)
            session.check_passivity()
            if session.cache_stats["hits"] != 1:
                raise RuntimeError(
                    f"warm pass missed the store: {session.cache_stats}"
                )

        warm_s = _best_of(repeats, warm)
    return {
        "order": int(model.order),
        "threads": int(threads),
        "repeats": int(repeats),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def run_timedomain_benchmark(
    *, poles: int = 30, ports: int = 4, steps: int = 100_000, repeats: int = 3
) -> Dict:
    """Time-domain stage: chunked recursive convolution vs per-step loop.

    Both paths integrate the same seeded PRBS excitation through the
    same exact-exponential recurrence; the chunked path batches the
    state scan (FFT over pole lanes) and the residue contraction (one
    einsum per chunk) where the naive reference pays ~6 numpy calls per
    timestep.  The recorded ``seconds`` is the *chunked* wall time (the
    number the gate watches); ``speedup`` is the naive/chunked ratio.
    """
    from repro.timedomain import (
        Stimulus,
        default_timestep,
        recursive_convolution,
        recursive_convolution_reference,
    )

    model = random_macromodel(poles, ports, seed=777, sigma_target=0.95)
    dt = default_timestep(model)
    inputs = Stimulus.prbs(seed=777).waveforms(steps, dt, ports)

    chunked_out = recursive_convolution(model, inputs, dt)

    # The ~1s naive pass runs exactly once: its timing and its output
    # (for the equivalence check) come from the same call.
    t0 = time.perf_counter()
    naive_out = recursive_convolution_reference(model, inputs, dt)
    naive_s = time.perf_counter() - t0
    max_diff = float(np.max(np.abs(chunked_out - naive_out)))

    chunked_s = _best_of(repeats, lambda: recursive_convolution(model, inputs, dt))
    return {
        "poles": int(poles),
        "ports": int(ports),
        "steps": int(steps),
        "dt": float(dt),
        "chunked_repeats": int(repeats),
        "chunked_seconds": chunked_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / chunked_s if chunked_s > 0 else float("inf"),
        "max_abs_diff": max_diff,
    }


def _pytest_version() -> Optional[str]:
    """Installed pytest version, or None when pytest is absent.

    Stamped into the payload unconditionally — the pre-v2 schema only
    carried pytest metadata when the ``--suites`` were actually run,
    which left a misleading ``"pytest": null`` in the tracked baseline.
    """
    try:
        import pytest
    except ImportError:
        return None
    return str(pytest.__version__)


def _resolve_suites(tokens: Sequence[str]) -> List[str]:
    if not tokens or list(tokens) == ["none"]:
        return []
    if list(tokens) == ["all"]:
        return sorted(p.name for p in BENCH_DIR.glob("bench_*.py"))
    return list(tokens)


def run_pytest_suites(suites: Sequence[str], *, scale: float) -> Optional[Dict]:
    """Execute the named pytest-benchmark suites; return their JSON report."""
    if not suites:
        return None
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        print("pytest-benchmark not installed; skipping suites", file=sys.stderr)
        return {"skipped": "pytest-benchmark not installed", "suites": list(suites)}
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "pytest_bench.json"
        env = dict(os.environ)
        env["REPRO_BENCH_SCALE"] = str(scale)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(ROOT / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *[str(BENCH_DIR / name) for name in suites],
            "-q",
            f"--benchmark-json={json_path}",
        ]
        proc = subprocess.run(cmd, cwd=str(ROOT), env=env)
        payload: Dict = {"suites": list(suites), "exit_code": proc.returncode}
        if json_path.exists():
            report = json.loads(json_path.read_text())
            payload["benchmarks"] = [
                {
                    "name": entry.get("name"),
                    "mean_seconds": entry.get("stats", {}).get("mean"),
                    "stddev_seconds": entry.get("stats", {}).get("stddev"),
                    "rounds": entry.get("stats", {}).get("rounds"),
                    "extra_info": entry.get("extra_info", {}),
                }
                for entry in report.get("benchmarks", [])
            ]
        return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.05")),
        help="model-order scale factor (default: REPRO_BENCH_SCALE or 0.05)",
    )
    parser.add_argument(
        "--tier",
        choices=("serial", "multicore"),
        default=os.environ.get("REPRO_BENCH_TIER", "serial"),
        help="stage tier: 'serial' (sweep/pipeline/cache/timedomain;"
        " the tracked-baseline tier) or 'multicore' (batch fleet,"
        " process eigensweep, queue drain — self-gated by min_speedup"
        " floors on >= 2-core hosts)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=ROOT / "BENCH_pipeline.json",
        help="output JSON path (default: repo-root BENCH_pipeline.json)",
    )
    parser.add_argument("--sweep-points", type=int, default=1000)
    parser.add_argument("--sweep-poles", type=int, default=100)
    parser.add_argument("--sweep-ports", type=int, default=4)
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument(
        "--batch-models",
        type=int,
        default=None,
        help="fleet size of the batch stage (default: 8 on the multicore"
        " tier, disabled on the serial tier; 0 disables it)",
    )
    parser.add_argument(
        "--batch-workers",
        type=int,
        default=None,
        help="process-pool size of the batch stage (default: cpus, max 4)",
    )
    parser.add_argument(
        "--timedomain-steps",
        type=int,
        default=100_000,
        help="timestep count of the timedomain stage (0 disables it)",
    )
    parser.add_argument(
        "--suites",
        nargs="*",
        default=["none"],
        help="pytest-benchmark suites to run ('all', 'none', or file names;"
        " default none — the sweep and pipeline stages always run)",
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    print(
        f"tier: {args.tier} ({cpu_count} CPU core(s) detected)",
        file=sys.stderr,
    )
    batch_models = args.batch_models
    if batch_models is None:
        # The fleet stage measures process-pool scaling, so it lives on
        # the multicore tier; `--batch-models N` still opts it into a
        # serial-tier run explicitly.
        batch_models = 8 if args.tier == "multicore" else 0

    stages: List[Dict] = []
    sweep = batch = timedomain = cache = multicore = None

    def _run_batch_stage(*, gated: bool) -> Dict:
        print(f"batch fleet ({batch_models} models)...", file=sys.stderr)
        result = run_batch_benchmark(
            models=batch_models, workers=args.batch_workers
        )
        print(
            f"  serial {result['serial_seconds']:.4f}s  process"
            f" {result['process_seconds']:.4f}s  speedup"
            f" {result['speedup']:.2f}x  ({result['workers']} workers,"
            f" max |crossing diff| {result['max_crossing_diff']:.2e})",
            file=sys.stderr,
        )
        # Gate the fleet wall-clock like any other pipeline stage; on
        # the multicore tier the stage additionally carries the
        # min_speedup floor compare.py enforces on >= 2-core hosts.
        extra = {
            "models": result["models"],
            "workers": result["workers"],
            "speedup": result["speedup"],
        }
        if gated:
            extra["min_speedup"] = 1.0
        stages.append(
            {
                "name": "batch_fleet",
                "seconds": result["process_seconds"],
                "work": None,
                "extra": extra,
            }
        )
        return result

    if args.tier == "serial":
        print(
            f"sweep benchmark: {args.sweep_points} points,"
            f" p={args.sweep_ports},"
            f" n={args.sweep_poles * args.sweep_ports}...",
            file=sys.stderr,
        )
        sweep = run_sweep_benchmark(
            points=args.sweep_points,
            num_poles=args.sweep_poles,
            ports=args.sweep_ports,
        )
        print(
            f"  looped {sweep['looped_seconds']:.4f}s  batched"
            f" {sweep['batched_seconds']:.4f}s  speedup"
            f" {sweep['speedup']:.1f}x"
            f"  (max |diff| {sweep['max_abs_diff']:.2e})",
            file=sys.stderr,
        )

        print(f"pipeline stages (scale={args.scale})...", file=sys.stderr)
        stages.extend(run_pipeline_stages(scale=args.scale, threads=args.threads))
        for stage in stages:
            print(
                f"  {stage['name']:<20} {stage['seconds']:.4f}s", file=sys.stderr
            )

        if batch_models > 0:
            batch = _run_batch_stage(gated=False)

        if args.timedomain_steps > 0:
            print(
                f"timedomain stage ({args.timedomain_steps} steps)...",
                file=sys.stderr,
            )
            timedomain = run_timedomain_benchmark(steps=args.timedomain_steps)
            print(
                f"  chunked {timedomain['chunked_seconds']:.4f}s  naive"
                f" {timedomain['naive_seconds']:.4f}s  speedup"
                f" {timedomain['speedup']:.1f}x  (max |diff|"
                f" {timedomain['max_abs_diff']:.2e})",
                file=sys.stderr,
            )
            stages.append(
                {
                    "name": "timedomain",
                    "seconds": timedomain["chunked_seconds"],
                    "work": {"timesteps": timedomain["steps"]},
                    "extra": {
                        "poles": timedomain["poles"],
                        "ports": timedomain["ports"],
                        "speedup": timedomain["speedup"],
                    },
                }
            )

        print("cache-hit stage...", file=sys.stderr)
        cache = run_cache_benchmark(scale=args.scale, threads=args.threads)
        print(
            f"  cold {cache['cold_seconds']:.4f}s  warm"
            f" {cache['warm_seconds']:.6f}s  speedup {cache['speedup']:.0f}x",
            file=sys.stderr,
        )
        stages.append(
            {
                "name": "cache_hit",
                "seconds": cache["warm_seconds"],
                "work": None,
                "extra": {
                    "cold_seconds": cache["cold_seconds"],
                    "speedup": cache["speedup"],
                    "order": cache["order"],
                },
            }
        )
    else:
        if batch_models > 0:
            batch = _run_batch_stage(gated=True)

        print(f"process-eigensweep stage (scale={args.scale})...", file=sys.stderr)
        eigensweep = run_eigensweep_backend_benchmark(scale=args.scale)
        print(
            f"  serial {eigensweep['serial_seconds']:.4f}s  process"
            f" {eigensweep['process_seconds']:.4f}s  speedup"
            f" {eigensweep['speedup']:.2f}x  (max |crossing diff|"
            f" {eigensweep['max_crossing_diff']:.2e})",
            file=sys.stderr,
        )
        stages.append(
            {
                "name": "eigensweep_process",
                "seconds": eigensweep["process_seconds"],
                "work": None,
                "extra": {
                    "workers": eigensweep["workers"],
                    "speedup": eigensweep["speedup"],
                    # Informational: spawn cost can dominate at bench
                    # scale, so no floor is enforced on this stage.
                    "min_speedup": None,
                },
            }
        )

        print("queue-drain stage (1 vs 2 workers)...", file=sys.stderr)
        queue = run_queue_drain_benchmark(scale=args.scale)
        print(
            f"  one worker {queue['one_worker_seconds']:.4f}s "
            f" {queue['workers']} workers"
            f" {queue['multi_worker_seconds']:.4f}s  speedup"
            f" {queue['speedup']:.2f}x  ({queue['jobs']} jobs)",
            file=sys.stderr,
        )
        stages.append(
            {
                "name": "queue_drain",
                "seconds": queue["multi_worker_seconds"],
                "work": {"jobs": queue["jobs"]},
                "extra": {
                    "workers": queue["workers"],
                    "speedup": queue["speedup"],
                    "min_speedup": 1.0,
                },
            }
        )
        multicore = {"eigensweep": eigensweep, "queue": queue}

    pytest_payload = run_pytest_suites(_resolve_suites(args.suites), scale=args.scale)

    payload = {
        "schema": "repro-bench-pipeline/2",
        "created_unix": time.time(),
        "tier": args.tier,
        "cpu_count": cpu_count,
        "bench_scale": args.scale,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "pytest": {
            "version": _pytest_version(),
            "suites": pytest_payload,
        },
        "sweep": sweep,
        "stages": stages,
        "batch": batch,
        "multicore": multicore,
        "timedomain": timedomain,
        "cache": cache,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
