"""Legacy setup shim: lets `pip install -e . --no-use-pep517` work offline.

The offline environment lacks the `wheel` package needed by PEP 660
editable installs; the legacy `setup.py develop` path needs only
setuptools.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
