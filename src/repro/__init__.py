"""repro — parallel Hamiltonian eigensolver for passivity characterization
and enforcement of large interconnect macromodels.

Reproduction of L. Gobbato, A. Chinea, S. Grivet-Talocia, DATE 2011
(DOI 10.1109/DATE.2011.5763011).  See DESIGN.md for the system inventory
and EXPERIMENTS.md for the paper-vs-measured results.

Typical flow::

    from repro import (
        vector_fit, characterize_passivity, enforce_passivity,
        find_imaginary_eigenvalues,
    )

    fit = vector_fit(freqs_rad, samples, num_poles=40)   # identify model
    report = characterize_passivity(fit.model, num_threads=8)
    if not report.passive:
        result = enforce_passivity(fit.model, num_threads=8)
"""

from repro.core.options import SolverOptions
from repro.core.results import SolveResult
from repro.core.solver import find_imaginary_eigenvalues
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import pole_residue_to_simo
from repro.macromodel.simo import SimoRealization
from repro.macromodel.statespace import StateSpace
from repro.passivity.characterization import (
    PassivityReport,
    characterize_passivity,
)
from repro.passivity.enforcement import EnforcementResult, enforce_passivity
from repro.passivity.hinf import HinfResult, hinf_norm
from repro.passivity.immittance import (
    ImmittancePassivityReport,
    characterize_immittance_passivity,
)
from repro.touchstone.reader import read_touchstone
from repro.touchstone.writer import write_touchstone
from repro.vectfit.vector_fitting import vector_fit

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SolverOptions",
    "SolveResult",
    "find_imaginary_eigenvalues",
    "PoleResidueModel",
    "SimoRealization",
    "StateSpace",
    "pole_residue_to_simo",
    "PassivityReport",
    "characterize_passivity",
    "EnforcementResult",
    "enforce_passivity",
    "HinfResult",
    "hinf_norm",
    "ImmittancePassivityReport",
    "characterize_immittance_passivity",
    "read_touchstone",
    "write_touchstone",
    "vector_fit",
]
