"""repro — parallel Hamiltonian eigensolver for passivity characterization
and enforcement of large interconnect macromodels.

Reproduction of L. Gobbato, A. Chinea, S. Grivet-Talocia, DATE 2011
(DOI 10.1109/DATE.2011.5763011).

The recommended entry point is the :class:`Macromodel` session facade,
which drives the paper's whole workflow — fit, characterize, enforce,
export — as one fluent pipeline over a single :class:`RunConfig`::

    from repro import Macromodel, RunConfig

    session = (
        Macromodel.from_touchstone("device.s4p")
        .configure(num_threads=8)
        .fit(num_poles=40)
        .check_passivity()
    )
    if not session.is_passive:
        session.enforce().to_touchstone("device_passive.s4p")
    print(session.summary())
    payload = session.to_dict()          # JSON-serializable

Configuration can come from code, dictionaries, or the environment::

    config = RunConfig.from_env()        # REPRO_NUM_THREADS=8 repro check ...
    config = RunConfig.from_dict({"num_threads": 8, "strategy": "queue"})
    config = config.merged(representation="immittance")

Scheduling strategies are pluggable: ``bisection`` / ``queue`` /
``static`` ship registered in :mod:`repro.core.registry`, and new
backends join via :func:`register_strategy` without touching the solver.

The historical free functions (``vector_fit``, ``characterize_passivity``,
``enforce_passivity``, ``find_imaginary_eigenvalues``) remain importable
from this package as deprecated shims; new code should use the facade.
"""

import warnings as _warnings

from repro.api import (
    ConfigError,
    Macromodel,
    RunConfig,
    StrategySpec,
    available_strategies,
    register_strategy,
    resolve_strategy,
)
from repro.batch import BatchRunner, FleetReport, synth_fleet
from repro.core.options import SolverOptions
from repro.core.results import SolveResult
from repro.core.solver import find_imaginary_eigenvalues as _find_imaginary_eigenvalues
from repro.core.solver import solve
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import pole_residue_to_simo
from repro.macromodel.simo import SimoRealization
from repro.macromodel.statespace import StateSpace
from repro.passivity.characterization import PassivityReport
from repro.passivity.characterization import (
    characterize_passivity as _characterize_passivity,
)
from repro.passivity.enforcement import EnforcementResult
from repro.passivity.enforcement import enforce_passivity as _enforce_passivity
from repro.passivity.hinf import HinfResult, hinf_norm
from repro.passivity.immittance import (
    ImmittancePassivityReport,
    characterize_immittance_passivity,
)
from repro.store import ResultStore
from repro.touchstone.reader import read_touchstone
from repro.touchstone.writer import write_touchstone
from repro.utils.logging import init_from_env as _logging_init_from_env
from repro.vectfit.vector_fitting import vector_fit as _vector_fit

__version__ = "1.2.0"

# Honor REPRO_LOG_LEVEL / REPRO_LOG_FORMAT at import so every consumer
# — CLI, service, workers, plain scripts — gets the structured handler
# without calling enable_debug_logging() themselves.  Malformed values
# raise ConfigError naming the variable, like every other REPRO_* knob.
_logging_init_from_env()


def _deprecated_shim(name, impl, replacement):
    """Wrap a legacy free function in a DeprecationWarning-emitting shim."""

    def shim(*args, **kwargs):
        _warnings.warn(
            f"repro.{name} is deprecated; use {replacement} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return impl(*args, **kwargs)

    shim.__name__ = name
    shim.__qualname__ = name
    shim.__doc__ = (
        f"Deprecated alias of :func:`{impl.__module__}.{impl.__name__}`;"
        f" use {replacement} instead.\n\n{impl.__doc__ or ''}"
    )
    shim.__wrapped__ = impl
    return shim


#: Deprecated: use ``Macromodel.from_samples(...).fit(...)`` instead.
vector_fit = _deprecated_shim(
    "vector_fit", _vector_fit, "Macromodel.from_samples(...).fit(...)"
)
#: Deprecated: use ``Macromodel.from_pole_residue(...).check_passivity()``.
characterize_passivity = _deprecated_shim(
    "characterize_passivity",
    _characterize_passivity,
    "Macromodel.from_pole_residue(...).check_passivity()",
)
#: Deprecated: use ``Macromodel.from_pole_residue(...).enforce()``.
enforce_passivity = _deprecated_shim(
    "enforce_passivity",
    _enforce_passivity,
    "Macromodel.from_pole_residue(...).enforce()",
)
#: Deprecated: use ``Macromodel.find_crossings()`` or ``repro.solve``.
find_imaginary_eigenvalues = _deprecated_shim(
    "find_imaginary_eigenvalues",
    _find_imaginary_eigenvalues,
    "Macromodel.from_pole_residue(...).find_crossings() or repro.solve(model, config)",
)

__all__ = [
    "__version__",
    # Facade + configuration (the recommended API).
    "Macromodel",
    "RunConfig",
    "ConfigError",
    "SolverOptions",
    "solve",
    # Batch fleet execution.
    "BatchRunner",
    "FleetReport",
    "synth_fleet",
    # Content-addressed result store.
    "ResultStore",
    # Strategy registry.
    "StrategySpec",
    "available_strategies",
    "register_strategy",
    "resolve_strategy",
    # Model and result types.
    "SolveResult",
    "PoleResidueModel",
    "SimoRealization",
    "StateSpace",
    "pole_residue_to_simo",
    "PassivityReport",
    "EnforcementResult",
    "HinfResult",
    "hinf_norm",
    "ImmittancePassivityReport",
    "characterize_immittance_passivity",
    # File I/O.
    "read_touchstone",
    "write_touchstone",
    # Deprecated free functions (shims).
    "vector_fit",
    "characterize_passivity",
    "enforce_passivity",
    "find_imaginary_eigenvalues",
]
