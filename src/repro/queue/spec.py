"""Job specifications over the wire: parse, validate, key, resolve.

One parser serves both tiers of the service: the HTTP front-end calls
:func:`parse_spec` at submission time (turning malformed specs into
clean 400s and computing the content-addressed job key), and every
:mod:`repro.queue.worker` re-parses the stored spec at execution time.
:meth:`ParsedSpec.resolved_spec` is the bridge — the spec as enqueued
carries the *resolved* configuration (effective :class:`RunConfig`,
``num_poles``, ``margin``, ``name``), so a worker booted with any base
configuration executes exactly the computation the submitter keyed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.batch.jobs import (
    VALID_TASKS,
    BatchJob,
    ModelJob,
    SynthJob,
    TouchstoneJob,
    task_settings,
)
from repro.core.config import RunConfig
from repro.macromodel.rational import PoleResidueModel
from repro.store import content_key, file_digest, result_key
from repro.utils.validation import ensure_choice, ensure_positive_int

__all__ = [
    "JobError",
    "ParsedSpec",
    "SIMULATE_SPEC_KEYS",
    "VALID_KINDS",
    "VALID_TASKS",
    "job_from_spec",
    "input_digest",
    "parse_spec",
]

#: Keys a job spec's "simulate" object may carry (the kwargs of
#: Macromodel.simulate that make sense over the wire; waveform-keeping
#: is deliberately excluded — responses stay compact witnesses).
SIMULATE_SPEC_KEYS = (
    "stimulus",
    "dt",
    "num_steps",
    "integrator",
    "discretization",
    "termination",
    "tol",
)

#: Model sources a job may name.
VALID_KINDS = ("synth", "touchstone", "model")


class JobError(ValueError):
    """A job specification could not be parsed or validated (HTTP 400)."""


def job_from_spec(spec: Mapping[str, Any], name: str) -> BatchJob:
    """Build the :mod:`repro.batch.jobs` object a spec names."""
    kind = str(spec.get("kind", "synth")).lower()
    ensure_choice(kind, "job kind", VALID_KINDS)
    if kind == "synth":
        sigma_target = spec.get("sigma_target", 1.05)
        return SynthJob(
            name=name,
            order_per_column=ensure_positive_int(
                spec.get("order", 10), "order"
            ),
            num_ports=ensure_positive_int(spec.get("ports", 2), "ports"),
            seed=int(spec.get("seed", 0)),
            sigma_target=None if sigma_target is None else float(sigma_target),
        )
    if kind == "touchstone":
        path = spec.get("path")
        if not path or not isinstance(path, str):
            raise JobError("touchstone jobs require a 'path' string")
        if not Path(path).is_file():
            raise JobError(f"touchstone path not found: {path!r}")
        return TouchstoneJob(name=name, path=path)
    model_doc = spec.get("model")
    if not isinstance(model_doc, Mapping):
        raise JobError(
            "model jobs require a 'model' object"
            " (PoleResidueModel.to_dict() payload)"
        )
    try:
        model = PoleResidueModel.from_dict(dict(model_doc))
    except (KeyError, TypeError, ValueError) as exc:
        raise JobError(f"malformed model payload: {exc}") from exc
    return ModelJob(name=name, model=model)


def input_digest(job: BatchJob, spec: Mapping[str, Any]) -> str:
    """Content digest of the job's model source for the job-level key.

    Deliberately excludes the job *name*: it is a display label (and
    defaults to a fresh per-submission id), so two submissions of the
    same source under different names must share one cache entry.
    """
    if isinstance(job, TouchstoneJob):
        # Hash the file *content*, not the path: moving or editing the
        # file must change the key, renaming the same bytes must not.
        return file_digest(job.path)
    if isinstance(job, ModelJob) and job.model is not None:
        return content_key(job.model.to_dict())
    source = {k: v for k, v in job.describe().items() if k != "name"}
    return content_key(source)


def _simulate_params(spec: Mapping[str, Any], task: str) -> Optional[dict]:
    """Validate the optional ``"simulate"`` object of a job spec."""
    sim = spec.get("simulate")
    if sim is None:
        return None
    if task != "simulate":
        raise JobError("the 'simulate' object only applies to task 'simulate'")
    if not isinstance(sim, Mapping):
        raise JobError(
            "'simulate' must be an object of Macromodel.simulate parameters"
        )
    unknown = sorted(set(sim) - set(SIMULATE_SPEC_KEYS))
    if unknown:
        raise JobError(
            f"unknown simulate parameter(s) {', '.join(unknown)};"
            f" allowed: {', '.join(SIMULATE_SPEC_KEYS)}"
        )
    return dict(sim)


@dataclass(frozen=True)
class ParsedSpec:
    """A validated job specification, ready to enqueue or execute.

    Attributes
    ----------
    task, name, kind:
        The pipeline task, display label, and model-source kind.
    job:
        The concrete :class:`~repro.batch.jobs.BatchJob`.
    config:
        The *effective* :class:`RunConfig` (base merged with the spec's
        ``"config"`` object).
    task_overrides:
        The :class:`~repro.batch.BatchRunner` keyword overrides of the
        task (from :func:`~repro.batch.jobs.task_settings`).
    sim_params:
        Validated ``"simulate"`` object, or ``None``.
    num_poles, margin:
        Resolved pipeline parameters.
    key:
        Content-addressed job key, or ``None`` for unhashable sources.
    spec:
        The original mapping as submitted (never mutated).
    """

    task: str
    name: str
    kind: str
    job: BatchJob
    config: RunConfig
    task_overrides: dict
    sim_params: Optional[dict]
    num_poles: int
    margin: float
    key: Optional[str]
    spec: dict

    def resolved_spec(self) -> dict:
        """The spec to persist in the queue: resolution baked in.

        Embeds the effective config, ``num_poles``, ``margin``, and
        ``name`` so any worker — whatever its own base configuration —
        re-parses this document into the identical computation (and the
        identical cache key) the submitter saw.
        """
        doc = dict(self.spec)
        doc["name"] = self.name
        doc["config"] = self.config.to_dict()
        doc["num_poles"] = self.num_poles
        doc["margin"] = self.margin
        return doc

    def runner_kwargs(self) -> dict:
        """Keyword arguments of the ``BatchRunner`` executing this job."""
        return dict(
            config=self.config,
            num_poles=self.num_poles,
            margin=self.margin,
            simulate_params=self.sim_params,
            **self.task_overrides,
        )


def parse_spec(
    spec: Mapping[str, Any],
    *,
    base_config: Optional[RunConfig] = None,
    num_poles: int = 30,
    margin: float = 0.002,
    job_id: str = "",
) -> ParsedSpec:
    """Validate one job spec against a base configuration.

    Raises
    ------
    JobError
        On any malformed field — the message is safe to surface verbatim
        in an HTTP 400 body.
    """
    if not isinstance(spec, Mapping):
        raise JobError("job spec must be a JSON object")
    base_config = base_config if base_config is not None else RunConfig()
    task = str(spec.get("task", "check")).lower()
    try:
        # One registry (repro.batch.jobs) validates the task AND names
        # the runner settings it maps to; unknown tasks become a clean
        # 400 carrying the full allowed list.
        task_overrides = task_settings(task)
    except ValueError as exc:
        raise JobError(str(exc)) from None
    sim_params = _simulate_params(spec, task)
    kind = str(spec.get("kind", "synth")).lower()
    default_name = f"{task}-{job_id}" if job_id else task
    name = str(spec.get("name") or default_name)
    job = job_from_spec(spec, name)

    overrides = spec.get("config")
    if overrides is None:
        config = base_config
    else:
        if not isinstance(overrides, Mapping):
            raise JobError("'config' must be an object of RunConfig fields")
        try:
            config = base_config.merged(**dict(overrides))
        except (TypeError, ValueError) as exc:
            raise JobError(f"invalid config override: {exc}") from exc

    resolved_poles = ensure_positive_int(
        spec.get("num_poles", num_poles), "num_poles"
    )
    resolved_margin = float(spec.get("margin", margin))
    key: Optional[str] = None
    key_params = {
        "task": task,
        "num_poles": resolved_poles,
        "margin": resolved_margin,
    }
    if task == "simulate":
        # Folded into the key only for simulate jobs, so the keys of
        # every pre-existing task stay byte-identical.
        key_params["simulate"] = sim_params or {}
    try:
        key = result_key(
            stage="service-job",
            input_digest=input_digest(job, spec),
            config=config,
            params=key_params,
        )
    except (OSError, TypeError, ValueError):
        # Unhashable source (e.g. the file vanished between checks):
        # the job still runs, it just cannot short-circuit.
        key = None

    return ParsedSpec(
        task=task,
        name=name,
        kind=kind,
        job=job,
        config=config,
        task_overrides=task_overrides,
        sim_params=sim_params,
        num_poles=resolved_poles,
        margin=resolved_margin,
        key=key,
        spec=dict(spec),
    )
