"""The durable job queue: one SQLite file, many processes.

Design
------
* **One WAL-mode SQLite file** next to the result store is the only
  coordination point: the HTTP front-end enqueues, N independent worker
  processes (or machines sharing a filesystem) claim and execute, admin
  tools inspect — no broker, no sockets between tiers, and a restart of
  any process loses nothing.
* **Atomic claim**: a single guarded ``UPDATE ... RETURNING`` flips the
  oldest ``queued`` row to ``running`` under the writer lock, so two
  workers can never claim the same job (a pre-3.35 SQLite falls back to
  an equivalent ``BEGIN IMMEDIATE`` transaction).
* **Leases + heartbeats**: a claimed job carries a lease deadline the
  executing worker keeps extending; when a worker dies (``kill -9``,
  OOM, power loss) its lease expires and the job is requeued — at most
  ``max_attempts`` times, after which it is marked ``failed`` with the
  reason recorded.
* **Guarded acks**: completion updates are conditioned on *both* the
  job still being ``running`` and still being owned by the acking
  worker, so a zombie worker whose lease was reclaimed cannot overwrite
  the rightful owner's result — every job completes exactly once.
* **Versioned rows**: every state transition bumps ``version``;
  :meth:`JobQueue.wait_for_version` turns that into the long-poll
  primitive behind ``GET /v1/jobs/<id>/events``.

States: ``queued`` → ``running`` → one of the terminal states ``done``
(pipeline completed), ``error`` (pipeline raised), ``timeout`` (per-job
budget expired), or ``failed`` (queue-level: lease attempts exhausted).
``retry`` moves a terminal row back to ``queued``.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.faults import init_from_env as _faults_init_from_env
from repro.faults import inject as _inject
from repro.obs.metrics import get_registry as _obs_metrics
from repro.obs.trace import ring_from_env as _trace_ring_from_env
from repro.utils.logging import get_logger
from repro.utils.retry import RetryPolicy, retry_call

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRow",
    "JobQueue",
]

_LOG = get_logger("queue")

#: Backoff absorbing SQLITE_BUSY / SQLITE_LOCKED storms on the write
#: operations.  Bounded: a genuinely wedged database surfaces as the
#: original OperationalError after well under two seconds, and the
#: service's degraded-mode path takes over from there.
_DB_RETRY = RetryPolicy(max_attempts=6, base_seconds=0.01, cap_seconds=0.25)


def _retriable_sqlite(exc: BaseException) -> bool:
    """True for the transient lock-contention flavors of OperationalError."""
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc).lower()
    return "locked" in message or "busy" in message

#: Every state a job row can be in.
JOB_STATES = ("queued", "running", "done", "error", "timeout", "failed")

#: States a job never leaves on its own (``retry`` can requeue them).
TERMINAL_STATES = ("done", "error", "timeout", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id           TEXT PRIMARY KEY,
    task         TEXT NOT NULL,
    name         TEXT NOT NULL,
    kind         TEXT NOT NULL,
    spec         TEXT NOT NULL,
    key          TEXT,
    state        TEXT NOT NULL DEFAULT 'queued',
    cached       INTEGER NOT NULL DEFAULT 0,
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    worker       TEXT,
    lease_expires REAL,
    submitted    REAL NOT NULL,
    started      REAL,
    finished     REAL,
    error        TEXT,
    result       TEXT,
    version      INTEGER NOT NULL DEFAULT 1,
    trace_id     TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, submitted, id);
CREATE TABLE IF NOT EXISTS traces (
    trace_id   TEXT NOT NULL,
    span_id    TEXT NOT NULL,
    parent_id  TEXT,
    job_id     TEXT,
    name       TEXT NOT NULL,
    start      REAL NOT NULL,
    duration   REAL NOT NULL,
    status     TEXT NOT NULL DEFAULT 'ok',
    attributes TEXT,
    PRIMARY KEY (trace_id, span_id)
);
CREATE INDEX IF NOT EXISTS traces_by_job ON traces (job_id);
CREATE TABLE IF NOT EXISTS workers (
    id        TEXT PRIMARY KEY,
    pid       INTEGER,
    host      TEXT,
    started   REAL NOT NULL,
    heartbeat REAL NOT NULL,
    state     TEXT NOT NULL DEFAULT 'idle',
    job_id    TEXT,
    jobs_done INTEGER NOT NULL DEFAULT 0
);
"""

_CLAIM_RETURNING = """
UPDATE jobs
SET state = 'running',
    worker = :worker,
    lease_expires = :lease,
    started = COALESCE(started, :now),
    attempts = attempts + 1,
    version = version + 1
WHERE id = (
    SELECT id FROM jobs WHERE state = 'queued'
    ORDER BY submitted, id LIMIT 1
) AND state = 'queued'
RETURNING *
"""


@dataclass(frozen=True)
class JobRow:
    """One queue row, decoded (a snapshot — rows change underneath)."""

    id: str
    task: str
    name: str
    kind: str
    spec: dict
    key: Optional[str]
    state: str
    cached: bool
    attempts: int
    max_attempts: int
    worker: Optional[str]
    lease_expires: Optional[float]
    submitted: float
    started: Optional[float]
    finished: Optional[float]
    error: Optional[str]
    result: Optional[dict]
    version: int
    trace_id: Optional[str] = None

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change on its own."""
        return self.state in TERMINAL_STATES

    @property
    def status(self) -> str:
        """Alias of :attr:`state` (the HTTP API's field name)."""
        return self.state

    def to_dict(self) -> dict:
        """JSON payload of this row (what ``GET /v1/jobs/<id>`` serves).

        The full spec — which may embed a multi-MB inline model — stays
        in the database; responses carry only the source ``kind``.
        """
        return {
            "id": self.id,
            "task": self.task,
            "name": self.name,
            "kind": self.kind,
            "key": self.key,
            "status": self.state,
            "cached": bool(self.cached),
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "worker": self.worker,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "result": self.result,
            "error": self.error,
            "version": self.version,
            "trace_id": self.trace_id,
        }


def _decode(row: sqlite3.Row) -> JobRow:
    def loads(text: Optional[str]) -> Optional[dict]:
        if text is None:
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            return None
        return doc if isinstance(doc, dict) else None

    return JobRow(
        id=row["id"],
        task=row["task"],
        name=row["name"],
        kind=row["kind"],
        spec=loads(row["spec"]) or {},
        key=row["key"],
        state=row["state"],
        cached=bool(row["cached"]),
        attempts=int(row["attempts"]),
        max_attempts=int(row["max_attempts"]),
        worker=row["worker"],
        lease_expires=row["lease_expires"],
        submitted=float(row["submitted"]),
        started=row["started"],
        finished=row["finished"],
        error=row["error"],
        result=loads(row["result"]),
        version=int(row["version"]),
        trace_id=row["trace_id"] if "trace_id" in row.keys() else None,
    )


class JobQueue:
    """Persistent, crash-safe job queue over one SQLite file.

    Instances are cheap and thread-safe (one connection guarded by a
    lock); open as many as you like — in threads, in processes, on other
    machines sharing the filesystem — against the same ``path``.  WAL
    mode keeps readers (pollers, stats) unblocked by the writers.

    Parameters
    ----------
    path:
        Database file (parent directories are created).
    max_attempts:
        Default claim-attempt bound for newly enqueued jobs.
    """

    def __init__(
        self, path: Union[str, Path], *, max_attempts: int = 3
    ) -> None:
        self.path = Path(path)
        self.max_attempts = int(max_attempts)
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Surface a malformed REPRO_FAULTS plan at construction time.
        _faults_init_from_env()
        #: Reliability traffic of this connection: how many write
        #: operations needed a backoff retry, and how many busy/locked
        #: errors were seen at all (absorbed or not).
        self.counters: Dict[str, int] = {"retries": 0, "busy_errors": 0}
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path),
            timeout=30.0,
            isolation_level=None,  # autocommit; explicit BEGIN where needed
            check_same_thread=False,
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        # Databases created before the tracing PR lack the trace_id
        # column; CREATE TABLE IF NOT EXISTS won't add it, so migrate
        # in place (idempotent — guarded by the live column list).
        columns = {
            r["name"]
            for r in self._conn.execute("PRAGMA table_info(jobs)")
        }
        if "trace_id" not in columns:
            self._conn.execute("ALTER TABLE jobs ADD COLUMN trace_id TEXT")
        self._trace_ring = _trace_ring_from_env()
        self._returning = sqlite3.sqlite_version_info >= (3, 35, 0)

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- reliability plumbing -----------------------------------------------

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        self.counters["retries"] += 1
        self.counters["busy_errors"] += 1

    def _retrying(self, point: str, fn):
        """Run one write operation under the shared backoff policy.

        The fault-injection roll happens *inside* the retried callable,
        before any SQL: an injected (or real) busy/locked error is
        absorbed by the backoff exactly like production contention, and
        a retried attempt never re-runs partially applied SQL.
        """

        def _op():
            _inject(point)
            return fn()

        started = time.perf_counter()
        try:
            result = retry_call(
                _op,
                policy=_DB_RETRY,
                retry_on=_retriable_sqlite,
                on_retry=self._count_retry,
            )
        except sqlite3.OperationalError as exc:
            if _retriable_sqlite(exc):
                self.counters["busy_errors"] += 1
            _obs_metrics().count(f"{point}.errors")
            raise
        # Latency per operation (queue.claim, queue.ack, ...), recorded
        # only on success so error storms do not skew the quantiles.
        _obs_metrics().observe(point, time.perf_counter() - started)
        return result

    def probe(self) -> None:
        """One trivial read proving the connection works (health checks).

        Raises the underlying :class:`sqlite3.Error` when it does not —
        a closed connection, a deleted/corrupted database file, a dead
        filesystem — which the service maps to ``degraded``.
        """
        with self._lock:
            self._conn.execute("SELECT 1").fetchone()

    # -- submission ---------------------------------------------------------

    def enqueue(
        self,
        *,
        job_id: str,
        task: str,
        name: str,
        kind: str,
        spec: dict,
        key: Optional[str] = None,
        max_attempts: Optional[int] = None,
        cached_result: Optional[dict] = None,
        trace_id: Optional[str] = None,
    ) -> JobRow:
        """Insert one job; returns the stored row.

        ``cached_result`` short-circuits the job: the row is inserted
        already ``done`` with ``cached`` set (the store answered at
        submission time and no worker ever needs to run).  ``trace_id``
        is the distributed-tracing correlation ID the service stamped at
        submission; workers restore it as their root context.
        """
        now = time.time()
        cached = cached_result is not None

        def _insert() -> None:
            with self._lock:
                self._conn.execute(
                    """
                    INSERT INTO jobs (id, task, name, kind, spec, key, state,
                                      cached, max_attempts, submitted, started,
                                      finished, result, trace_id)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        job_id,
                        task,
                        name,
                        kind,
                        json.dumps(spec, sort_keys=True),
                        key,
                        "done" if cached else "queued",
                        1 if cached else 0,
                        max_attempts
                        if max_attempts is not None
                        else self.max_attempts,
                        now,
                        now if cached else None,
                        now if cached else None,
                        json.dumps(cached_result, sort_keys=True)
                        if cached
                        else None,
                        trace_id,
                    ),
                )

        self._retrying("queue.enqueue", _insert)
        row = self.get(job_id)
        assert row is not None
        return row

    # -- claim / lease ------------------------------------------------------

    def reclaim_expired(self, *, now: Optional[float] = None) -> int:
        """Requeue (or fail) every running job whose lease expired.

        A job that exhausted its attempt bound is marked ``failed`` with
        the reason recorded; otherwise it goes back to ``queued`` for the
        next healthy worker.  Returns the number of rows touched.
        """
        now = time.time() if now is None else now
        with self._lock:
            failed = self._conn.execute(
                """
                UPDATE jobs
                SET state = 'failed',
                    error = 'lease expired after ' || attempts ||
                            ' attempt(s); last worker ' ||
                            COALESCE(worker, '?') || ' presumed dead',
                    worker = NULL,
                    lease_expires = NULL,
                    finished = ?,
                    version = version + 1
                WHERE state = 'running' AND lease_expires < ?
                      AND attempts >= max_attempts
                """,
                (now, now),
            ).rowcount
            requeued = self._conn.execute(
                """
                UPDATE jobs
                SET state = 'queued',
                    worker = NULL,
                    lease_expires = NULL,
                    version = version + 1
                WHERE state = 'running' AND lease_expires < ?
                """,
                (now,),
            ).rowcount
        if failed or requeued:
            _LOG.debug(
                "reclaimed %d expired lease(s) (%d failed terminally)",
                failed + requeued,
                failed,
            )
        return failed + requeued

    def claim(
        self, worker_id: str, *, lease_seconds: float = 60.0
    ) -> Optional[JobRow]:
        """Atomically claim the oldest queued job for ``worker_id``.

        Expired leases are reclaimed first, so a fleet of claiming
        workers is also the recovery mechanism.  Busy/locked contention
        (real or injected) is absorbed by bounded backoff — the claim
        itself stays atomic either way.  Returns ``None`` when the
        queue has no runnable work.
        """

        def _claim() -> Optional[JobRow]:
            now = time.time()
            self.reclaim_expired(now=now)
            params = {
                "worker": worker_id,
                "lease": now + float(lease_seconds),
                "now": now,
            }
            with self._lock:
                if self._returning:
                    cursor = self._conn.execute(_CLAIM_RETURNING, params)
                    row = cursor.fetchone()
                    return _decode(row) if row is not None else None
                # Pre-3.35 SQLite: the same guarded flip inside one
                # immediate (write-locked) transaction.
                try:
                    self._conn.execute("BEGIN IMMEDIATE")
                    picked = self._conn.execute(
                        "SELECT id FROM jobs WHERE state = 'queued'"
                        " ORDER BY submitted, id LIMIT 1"
                    ).fetchone()
                    if picked is None:
                        self._conn.execute("COMMIT")
                        return None
                    self._conn.execute(
                        """
                        UPDATE jobs
                        SET state = 'running', worker = :worker,
                            lease_expires = :lease,
                            started = COALESCE(started, :now),
                            attempts = attempts + 1, version = version + 1
                        WHERE id = :id AND state = 'queued'
                        """,
                        dict(params, id=picked["id"]),
                    )
                    self._conn.execute("COMMIT")
                except sqlite3.Error:
                    try:
                        self._conn.execute("ROLLBACK")
                    except sqlite3.Error:
                        pass
                    raise
            return self.get(picked["id"])

        row = self._retrying("queue.claim", _claim)
        if row is not None:
            _obs_metrics().count("queue.jobs_claimed")
        return row

    def heartbeat(
        self, job_id: str, worker_id: str, *, lease_seconds: float = 60.0
    ) -> bool:
        """Extend the lease of a job this worker still owns.

        Returns ``False`` when ownership was lost (the lease expired and
        the job was reclaimed) — the caller's result will be discarded.
        Raises only when contention outlasts the bounded backoff; the
        worker's heartbeat loop treats that as a restorable failure.
        """

        def _beat() -> bool:
            now = time.time()
            with self._lock:
                owned = self._conn.execute(
                    """
                    UPDATE jobs SET lease_expires = ?
                    WHERE id = ? AND worker = ? AND state = 'running'
                    """,
                    (now + float(lease_seconds), job_id, worker_id),
                ).rowcount
                self._conn.execute(
                    "UPDATE workers SET heartbeat = ?, job_id = ?"
                    " WHERE id = ?",
                    (now, job_id if owned else None, worker_id),
                )
            return bool(owned)

        return self._retrying("queue.heartbeat", _beat)

    def owns(self, job_id: str, worker_id: str) -> bool:
        """True while ``worker_id`` still holds the running lease."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM jobs WHERE id = ? AND worker = ?"
                " AND state = 'running'",
                (job_id, worker_id),
            ).fetchone()
        return row is not None

    # -- completion ---------------------------------------------------------

    def ack(
        self,
        job_id: str,
        worker_id: str,
        *,
        state: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        cached: bool = False,
    ) -> bool:
        """Record a terminal outcome — guarded by ownership.

        Returns ``False`` when this worker no longer owned the job (its
        lease expired and the job was requeued or re-acked elsewhere);
        the caller must discard its result, preserving exactly-once
        completion.
        """
        if state not in TERMINAL_STATES:
            raise ValueError(
                f"ack state must be one of {TERMINAL_STATES}, got {state!r}"
            )

        def _ack() -> bool:
            now = time.time()
            with self._lock:
                owned = self._conn.execute(
                    """
                    UPDATE jobs
                    SET state = ?, result = ?, error = ?, finished = ?,
                        cached = ?, worker = NULL, lease_expires = NULL,
                        version = version + 1
                    WHERE id = ? AND worker = ? AND state = 'running'
                    """,
                    (
                        state,
                        json.dumps(result, sort_keys=True)
                        if result is not None
                        else None,
                        error,
                        now,
                        1 if cached else 0,
                        job_id,
                        worker_id,
                    ),
                ).rowcount
            return bool(owned)

        acked = self._retrying("queue.ack", _ack)
        if acked:
            _obs_metrics().count("queue.jobs_acked")
        return acked

    def release(self, job_id: str, worker_id: str) -> bool:
        """Put a claimed-but-unfinished job back without an outcome.

        The graceful-drain path for work a stopping worker never
        started; the attempt already counted stays counted.
        """
        with self._lock:
            released = self._conn.execute(
                """
                UPDATE jobs
                SET state = 'queued', worker = NULL, lease_expires = NULL,
                    version = version + 1
                WHERE id = ? AND worker = ? AND state = 'running'
                """,
                (job_id, worker_id),
            ).rowcount
        return bool(released)

    # -- admin --------------------------------------------------------------

    def retry(self, job_id: str) -> bool:
        """Requeue a terminal job (resets attempts/outcome); False if not terminal."""
        with self._lock:
            touched = self._conn.execute(
                """
                UPDATE jobs
                SET state = 'queued', attempts = 0, worker = NULL,
                    lease_expires = NULL, finished = NULL, error = NULL,
                    result = NULL, cached = 0, version = version + 1
                WHERE id = ? AND state IN ('done', 'error', 'timeout', 'failed')
                """,
                (job_id,),
            ).rowcount
        return bool(touched)

    def purge(self, state: str) -> int:
        """Delete every row in one terminal state; returns the count.

        Only terminal states may be purged — queued and running rows are
        live work.
        """
        if state not in TERMINAL_STATES:
            raise ValueError(
                f"only terminal states {TERMINAL_STATES} can be purged,"
                f" got {state!r}"
            )
        with self._lock:
            self._conn.execute(
                "DELETE FROM traces WHERE job_id IN"
                " (SELECT id FROM jobs WHERE state = ?)",
                (state,),
            )
            return self._conn.execute(
                "DELETE FROM jobs WHERE state = ?", (state,)
            ).rowcount

    # -- traces -------------------------------------------------------------

    def record_spans(
        self, spans: List[dict], *, job_id: Optional[str] = None
    ) -> int:
        """Durably persist finished spans; returns the count stored.

        The traces table is a bounded ring: after every write, only the
        newest ``REPRO_TRACE_RING`` distinct trace IDs are retained, so
        a long-lived queue file never grows without bound.  Span IDs are
        upsert keys — a retried attempt re-recording its synthesized
        ``job``/``queue.wait`` spans overwrites rather than duplicates.
        """
        rows = [
            (
                str(span["trace_id"]),
                str(span["span_id"]),
                span.get("parent_id"),
                job_id,
                str(span["name"]),
                float(span["start"]),
                float(span["duration"]),
                str(span.get("status", "ok")),
                json.dumps(span.get("attributes") or {}, sort_keys=True),
            )
            for span in spans
        ]
        if not rows:
            return 0
        with self._lock:
            self._conn.executemany(
                """
                INSERT OR REPLACE INTO traces
                    (trace_id, span_id, parent_id, job_id, name, start,
                     duration, status, attributes)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                rows,
            )
            self._conn.execute(
                """
                DELETE FROM traces WHERE trace_id IN (
                    SELECT trace_id FROM (
                        SELECT trace_id, MAX(rowid) AS latest FROM traces
                        GROUP BY trace_id ORDER BY latest DESC
                        LIMIT -1 OFFSET ?
                    )
                )
                """,
                (self._trace_ring,),
            )
        return len(rows)

    def trace_spans(
        self,
        *,
        job_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> List[dict]:
        """Flat span dicts of one job and/or trace, ordered by start.

        A trace spanning several jobs (a client reusing one
        ``X-Repro-Trace-Id``) is fetched whole via ``trace_id``; the
        per-job view filters on the job column.  Both filters combine
        with OR so a job's spans are found through either key.
        """
        clauses, params = [], []
        if job_id is not None:
            clauses.append("job_id = ?")
            params.append(job_id)
        if trace_id is not None:
            clauses.append("trace_id = ?")
            params.append(trace_id)
        if not clauses:
            raise ValueError("trace_spans needs a job_id or a trace_id")
        with self._lock:
            rows = self._conn.execute(
                "SELECT trace_id, span_id, parent_id, job_id, name, start,"
                f" duration, status, attributes FROM traces"
                f" WHERE {' OR '.join(clauses)} ORDER BY start, span_id",
                params,
            ).fetchall()
        spans = []
        for row in rows:
            try:
                attributes = json.loads(row["attributes"] or "{}")
            except ValueError:
                attributes = {}
            spans.append(
                {
                    "trace_id": row["trace_id"],
                    "span_id": row["span_id"],
                    "parent_id": row["parent_id"],
                    "job_id": row["job_id"],
                    "name": row["name"],
                    "start": row["start"],
                    "duration": row["duration"],
                    "status": row["status"],
                    "attributes": attributes
                    if isinstance(attributes, dict)
                    else {},
                }
            )
        return spans

    # -- inspection ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRow]:
        """Fetch one row by id."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return _decode(row) if row is not None else None

    def list(
        self,
        *,
        state: Optional[str] = None,
        task: Optional[str] = None,
        limit: int = 100,
    ) -> List[JobRow]:
        """Newest-first listing, optionally filtered by state/task."""
        clauses, params = [], []
        if state is not None:
            if state not in JOB_STATES:
                raise ValueError(
                    f"unknown state {state!r}; valid states:"
                    f" {', '.join(JOB_STATES)}"
                )
            clauses.append("state = ?")
            params.append(state)
        if task is not None:
            clauses.append("task = ?")
            params.append(task)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(
                f"SELECT * FROM jobs {where}"
                " ORDER BY submitted DESC, id DESC LIMIT ?",
                params,
            ).fetchall()
        return [_decode(row) for row in rows]

    def wait_for_version(
        self,
        job_id: str,
        *,
        since: int = 0,
        timeout: float = 30.0,
        poll: float = 0.1,
    ) -> Optional[JobRow]:
        """Block until the job's version exceeds ``since`` (long-poll).

        Returns the fresh row immediately on any recorded transition, a
        terminal row immediately (nothing further will change), or the
        current row at timeout.  ``None`` means the id is unknown.
        """
        deadline = time.time() + max(0.0, float(timeout))
        while True:
            row = self.get(job_id)
            if row is None:
                return None
            if row.version > since or row.terminal:
                return row
            if time.time() >= deadline:
                return row
            time.sleep(poll)

    # -- worker registry ----------------------------------------------------

    def register_worker(
        self, worker_id: str, *, pid: Optional[int] = None
    ) -> None:
        """Insert (or refresh) one worker's liveness row."""
        now = time.time()
        with self._lock:
            self._conn.execute(
                """
                INSERT INTO workers (id, pid, host, started, heartbeat, state)
                VALUES (?, ?, ?, ?, ?, 'idle')
                ON CONFLICT(id) DO UPDATE SET
                    pid = excluded.pid, host = excluded.host,
                    heartbeat = excluded.heartbeat, state = 'idle'
                """,
                (
                    worker_id,
                    pid if pid is not None else os.getpid(),
                    socket.gethostname(),
                    now,
                    now,
                ),
            )

    def worker_update(
        self,
        worker_id: str,
        *,
        state: str,
        job_id: Optional[str] = None,
        bump_done: bool = False,
    ) -> None:
        """Refresh one worker's heartbeat/state/current-job row."""
        with self._lock:
            self._conn.execute(
                """
                UPDATE workers
                SET heartbeat = ?, state = ?, job_id = ?,
                    jobs_done = jobs_done + ?
                WHERE id = ?
                """,
                (time.time(), state, job_id, 1 if bump_done else 0, worker_id),
            )

    def workers(self) -> List[dict]:
        """Every known worker with its last-heartbeat age in seconds."""
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM workers ORDER BY started"
            ).fetchall()
        return [
            {
                "id": row["id"],
                "pid": row["pid"],
                "host": row["host"],
                "state": row["state"],
                "job_id": row["job_id"],
                "jobs_done": int(row["jobs_done"]),
                "started": float(row["started"]),
                "heartbeat_age": max(0.0, now - float(row["heartbeat"])),
            }
            for row in rows
        ]

    # -- statistics ---------------------------------------------------------

    def depth(self) -> Dict[str, int]:
        """Job count per state (every state present, zeros included)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = int(row["n"])
        return counts

    def latency_samples(self, *, limit: int = 1000) -> List[Dict[str, Any]]:
        """Per-job latency raw material of the most recent finished jobs.

        Each row carries ``task``, ``queue_wait`` (claim minus submit)
        and ``execution`` (finish minus claim) in seconds, plus the
        ``cached`` flag — cached submissions are inserted already done,
        so their zero-ish waits are reported separately, not mixed into
        the execution quantiles.  Computed from the durable timestamps,
        so jobs executed by *external* worker processes are covered.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT task, submitted, started, finished, cached"
                " FROM jobs WHERE finished IS NOT NULL"
                " ORDER BY finished DESC, id DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        samples: List[Dict[str, Any]] = []
        for row in rows:
            started = row["started"]
            finished = row["finished"]
            submitted = row["submitted"]
            samples.append(
                {
                    "task": row["task"],
                    "cached": bool(row["cached"]),
                    "queue_wait": (
                        max(0.0, float(started) - float(submitted))
                        if started is not None
                        else None
                    ),
                    "execution": (
                        max(0.0, float(finished) - float(started))
                        if started is not None
                        else None
                    ),
                }
            )
        return samples

    def stats(self) -> dict:
        """Aggregate queue statistics (feeds ``GET /v1/stats``)."""
        depth = self.depth()
        with self._lock:
            total, cached = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(cached), 0) FROM jobs"
            ).fetchone()
            per_task = {
                row["task"]: int(row["n"])
                for row in self._conn.execute(
                    "SELECT task, COUNT(*) AS n FROM jobs"
                    " WHERE state = 'done' GROUP BY task"
                ).fetchall()
            }
        return {
            "path": str(self.path),
            "depth": depth,
            "total": int(total),
            "cached": int(cached),
            "completed": sum(depth[state] for state in TERMINAL_STATES),
            "tasks_completed": per_task,
            "workers": self.workers(),
            "counters": dict(self.counters),
        }
