"""The queue worker: claim → execute → store → ack, forever.

:class:`QueueWorker` is the execution tier of the durable service.  Each
instance opens its own connection to the shared queue database and loops:
claim the oldest queued job under a lease, re-parse its resolved spec
(see :meth:`~repro.queue.spec.ParsedSpec.resolved_spec` — the stored
document carries the effective configuration, so every worker computes
exactly what the submitter keyed), execute it through the existing
:class:`~repro.batch.BatchRunner`, write the result to the
content-addressed store, and ack by job id guarded by ownership.

A background heartbeat keeps the lease alive while the job runs; if the
heartbeat discovers the lease was lost (this process stalled long enough
to be presumed dead and the job was reclaimed), the result is discarded
— the rightful owner's ack wins and every job completes exactly once.

Deployment shapes, same class either way:

* ``repro worker`` runs one instance as a whole process (N processes —
  or machines sharing the filesystem — drain one queue), stopping
  gracefully on SIGTERM: finish the leased job, ack it, exit 0.
* ``repro serve`` embeds instances on daemon threads, so the single-
  process developer experience still works out of the box.
"""

from __future__ import annotations

import os
import socket
import sqlite3
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Optional, Union

from repro.batch.runner import BATCH_BACKENDS, BatchRunner
from repro.faults import counters as _fault_counters
from repro.faults import init_from_env as _faults_init_from_env
from repro.faults import inject as _inject
from repro.obs import trace as _trace
from repro.obs.metrics import get_registry as _obs_metrics
from repro.queue.config import QueueConfig
from repro.queue.db import JobQueue, JobRow
from repro.queue.spec import JobError, parse_spec
from repro.store import ResultStore
from repro.utils.logging import get_logger
from repro.utils.validation import ensure_choice

__all__ = ["QueueWorker", "default_worker_id"]

_LOG = get_logger("queue.worker")


def default_worker_id() -> str:
    """A queue-unique worker identity: host, pid, and a random suffix.

    The random suffix keeps embedded workers (several per process)
    distinct; host and pid keep fleet logs attributable.
    """
    return (
        f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    )


class QueueWorker:
    """One queue-draining worker (run it on a thread or as a process).

    Parameters
    ----------
    queue_path:
        The shared queue database file.
    queue_config:
        Lease/heartbeat/poll knobs (:class:`QueueConfig`); defaults
        apply when omitted.  The worker opens its *own* connection —
        instances never share a :class:`JobQueue`.
    worker_id:
        Stable identity for leases and the liveness table; generated
        when omitted.
    backend:
        :class:`BatchRunner` backend executing each job (``"process"``
        gives real timeout kills and crash isolation).
    timeout:
        Per-job wall-clock budget in seconds (``None`` — no limit).
    max_jobs:
        Exit after completing this many jobs (testing/bounded drains).
    idle_seconds:
        Exit after the queue has been empty this long (``None`` — wait
        forever).  Lets batch-style fleets drain and disband.
    """

    def __init__(
        self,
        queue_path: Union[str, Path],
        *,
        queue_config: Optional[QueueConfig] = None,
        worker_id: Optional[str] = None,
        backend: str = "process",
        timeout: Optional[float] = None,
        max_jobs: Optional[int] = None,
        idle_seconds: Optional[float] = None,
    ) -> None:
        ensure_choice(backend, "worker backend", BATCH_BACKENDS)
        if timeout is not None and timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        # A malformed REPRO_FAULTS plan must fail the worker boot, not
        # surface mid-job (no-op when the variable is unset).
        _faults_init_from_env()
        self.queue_config = (
            queue_config if queue_config is not None else QueueConfig()
        )
        self.worker_id = worker_id or default_worker_id()
        self.backend = backend
        self.timeout = timeout
        self.max_jobs = max_jobs
        self.idle_seconds = idle_seconds
        self.jobs_done = 0
        self.queue = JobQueue(
            queue_path, max_attempts=self.queue_config.max_attempts
        )
        self._stop = threading.Event()
        # One store per distinct cache directory: jobs may override
        # cache_dir per submission, but same-dir jobs share the handle.
        self._stores: Dict[Optional[str], ResultStore] = {}
        # Tracing state of the job currently executing (one job at a
        # time per instance): the sink finished spans accumulate in and
        # the attempt span's context (None while tracing is off).
        self._trace_sink = None
        self._attempt_context: Optional[_trace.TraceContext] = None

    # -- lifecycle ----------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the worker to drain: finish the current job, then exit.

        Safe from any thread and from signal handlers — this is what
        ``repro worker`` wires SIGTERM/SIGINT to.
        """
        self._stop.set()

    @property
    def stopping(self) -> bool:
        """True once a stop has been requested."""
        return self._stop.is_set()

    def run(self) -> int:
        """Drain the queue until stopped; returns the jobs completed.

        The graceful-drain contract: after :meth:`request_stop` (or
        SIGTERM via the CLI) the job currently executing is finished and
        acked — never abandoned mid-lease — and the loop exits cleanly.
        """
        self.queue.register_worker(self.worker_id)
        _LOG.info(
            "worker %s draining %s (%s backend)",
            self.worker_id,
            self.queue.path,
            self.backend,
        )
        idle_since = time.time()
        try:
            while not self._stop.is_set():
                if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                    break
                claim_wall = time.time()
                claim_t0 = time.perf_counter()
                try:
                    row = self.queue.claim(
                        self.worker_id,
                        lease_seconds=self.queue_config.lease_seconds,
                    )
                except sqlite3.OperationalError as exc:
                    # Contention outlasted the DB layer's own bounded
                    # retries.  The worker must outlive the storm: treat
                    # it as an empty poll and try again next cycle.
                    _LOG.warning(
                        "worker %s: claim failed (%s); backing off",
                        self.worker_id,
                        exc,
                    )
                    self._stop.wait(self.queue_config.poll_seconds)
                    continue
                if row is None:
                    if (
                        self.idle_seconds is not None
                        and time.time() - idle_since >= self.idle_seconds
                    ):
                        break
                    self.queue.worker_update(self.worker_id, state="idle")
                    self._stop.wait(self.queue_config.poll_seconds)
                    continue
                with _obs_metrics().timer("worker.job"):
                    self._execute_traced(
                        row,
                        claim_wall=claim_wall,
                        claim_elapsed=time.perf_counter() - claim_t0,
                    )
                idle_since = time.time()
        finally:
            self.queue.worker_update(self.worker_id, state="stopped")
            self.queue.close()
        _LOG.info(
            "worker %s stopped after %d job(s)", self.worker_id, self.jobs_done
        )
        return self.jobs_done

    # -- execution ----------------------------------------------------------

    def _store_for(self, config) -> Optional[ResultStore]:
        if config.cache == "off":
            return None
        if config.cache_dir not in self._stores:
            self._stores[config.cache_dir] = ResultStore.from_config(config)
        return self._stores[config.cache_dir]

    def _execute_traced(
        self, row: JobRow, *, claim_wall: float, claim_elapsed: float
    ) -> None:
        """Run one claimed job under an attempt-scoped trace root.

        The job row's ``trace_id`` (stamped at submission) is restored
        as the root context; every attempt — including a retry after a
        crashed worker — opens its own ``worker.attempt`` span under the
        shared trace, so the per-job timeline survives failures.  The
        attempt span is backdated to the claim so the measured
        ``queue.claim`` child nests inside it.  Finished spans are
        persisted best-effort after the attempt: tracing must never
        fail a job.
        """
        trace_id = row.trace_id or _trace.new_trace_id()
        context = _trace.TraceContext(
            trace_id=trace_id, span_id=row.id, job_id=row.id
        )
        sink: list = []
        self._trace_sink = sink
        try:
            with _trace.activate(context, sink):
                with _trace.span(
                    "worker.attempt",
                    start=claim_wall,
                    worker=self.worker_id,
                    attempt=row.attempts,
                ) as attempt:
                    self._attempt_context = (
                        _trace.TraceContext(
                            trace_id=trace_id,
                            span_id=attempt.context.span_id,
                            job_id=row.id,
                        )
                        if attempt.context is not None
                        else None
                    )
                    _trace.record_span(
                        "queue.claim",
                        start=claim_wall,
                        duration=claim_elapsed,
                    )
                    self._execute(row)
        finally:
            self._attempt_context = None
            self._trace_sink = None
            if sink:
                try:
                    self.queue.record_spans(sink, job_id=row.id)
                except sqlite3.Error as exc:
                    _LOG.warning(
                        "worker %s: could not persist trace for job %s"
                        " (%s)",
                        self.worker_id,
                        row.id,
                        exc,
                    )

    def _execute(self, row: JobRow) -> None:
        self.queue.worker_update(
            self.worker_id, state="busy", job_id=row.id
        )
        try:
            parsed = parse_spec(row.spec, job_id=row.id)
        except (JobError, TypeError, ValueError) as exc:
            # The front-end validates at submission, so this only fires
            # on specs enqueued through other paths (or future-version
            # specs) — record it, don't retry what cannot parse.
            self._finish(
                row, state="error", error=f"unparseable spec: {exc}"
            )
            return

        store = self._store_for(parsed.config)
        key = row.key
        warnings = []

        # Graceful degradation: a store that has been failing gets one
        # probe to prove it recovered; if it is still failing, the job
        # runs with the cache off — slower, never wrong, and recorded
        # as a warning on the result instead of failing the job.
        if store is not None and store.health()["status"] == "failing":
            probed = store.probe()
            if probed["status"] == "failing":
                warnings.append(
                    "result store is failing"
                    f" ({probed['last_error']}); job degraded to"
                    " cache='off'"
                )
                _LOG.warning(
                    "worker %s: store failing for job %s; degrading to"
                    " cache='off' (%s)",
                    self.worker_id,
                    row.id,
                    probed["last_error"],
                )
                store = None

        # Same short-circuit the front-end applies, re-checked here:
        # another worker may have stored this exact key since enqueue.
        if (
            key is not None
            and store is not None
            and parsed.config.cache in ("read", "readwrite")
        ):
            try:
                payload = store.get(key)
            except ValueError:
                payload = None
            if payload is not None:
                self._finish(row, state="done", result=payload, cached=True)
                return

        lost = threading.Event()
        hb_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(row.id, hb_stop, lost),
            name=f"hb-{row.id}",
            daemon=True,
        )
        heartbeat.start()
        fired_before = {
            point: c["fired"] for point, c in _fault_counters().items()
        }
        try:
            _inject("worker.run")
            runner = BatchRunner(
                workers=1,
                timeout=self.timeout,
                backend=self.backend,
                trace=(
                    self._attempt_context.to_dict()
                    if self._attempt_context is not None
                    else None
                ),
                **parsed.runner_kwargs(),
            )
            result = runner.run([parsed.job]).results[0]
            if result.spans and self._trace_sink is not None:
                # Pipeline spans recorded in the child process (or the
                # in-process backends' own capture) join this attempt's
                # sink for durable persistence.
                self._trace_sink.extend(result.spans)
            payload = result.to_dict()
            state = "done" if result.ok else result.status
            error = result.error
        except Exception as exc:  # a broken job must not kill the worker
            payload, state = None, "error"
            error = f"{type(exc).__name__}: {exc}"
        finally:
            hb_stop.set()
            heartbeat.join()
            attempt = _trace.current()
            if attempt is not None:
                # Chaos runs: which fault plans fired during this
                # attempt, attached to the attempt span.
                fired = {
                    point: c["fired"] - fired_before.get(point, 0)
                    for point, c in _fault_counters().items()
                    if c["fired"] - fired_before.get(point, 0) > 0
                }
                if fired:
                    attempt.annotate("faults_fired", fired)

        if lost.is_set() or not self.queue.owns(row.id, self.worker_id):
            # The lease was reclaimed while we ran (we were presumed
            # dead).  The job belongs to someone else now: no store
            # write, no ack — exactly-once means our late result loses.
            _LOG.warning(
                "worker %s lost the lease on job %s; discarding its result",
                self.worker_id,
                row.id,
            )
            return

        if (
            state == "done"
            and key is not None
            and store is not None
            and parsed.config.cache == "readwrite"
        ):
            # Persist BEFORE the ack flips the job visible as done: a
            # client resubmitting the instant it polls "done" must find
            # the store entry already in place.
            if not store.put(key, payload, stage="service-job"):
                health = store.health()
                warnings.append(
                    "result could not be stored"
                    f" ({health['last_error']}); future identical"
                    " submissions will recompute"
                )
        if warnings and payload is not None:
            payload = dict(payload)
            payload["warnings"] = warnings
        self._finish(row, state=state, result=payload, error=error)

    def _finish(
        self,
        row: JobRow,
        *,
        state: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        cached: bool = False,
    ) -> None:
        with _trace.span("queue.ack", state=state):
            acked = self.queue.ack(
                row.id,
                self.worker_id,
                state=state,
                result=result,
                error=error,
                cached=cached,
            )
        if acked:
            self._record_outcome_spans(row, state=state, cached=cached)
        if not acked:
            _LOG.warning(
                "worker %s could not ack job %s (lease reclaimed)",
                self.worker_id,
                row.id,
            )
            return
        self.jobs_done += 1
        _obs_metrics().count(f"worker.jobs.{state}")
        if cached:
            _obs_metrics().count("worker.jobs.cached")
        self.queue.worker_update(
            self.worker_id, state="idle", bump_done=True
        )
        _LOG.info(
            "worker %s finished job %s (%s%s)",
            self.worker_id,
            row.id,
            state,
            ", cached" if cached else "",
        )

    def _record_outcome_spans(
        self, row: JobRow, *, state: str, cached: bool
    ) -> None:
        """Synthesize the timeline spans only the acking worker can see.

        The ``job`` root (span ID = job ID, so every attempt's spans
        hang off the same node) covers submission → ack; ``queue.wait``
        covers submission → first claim.  Both are reconstructed from
        the persisted row timestamps, keeping the tree connected even
        though no single process observed the whole lifetime.
        """
        sink = self._trace_sink
        if sink is None or self._attempt_context is None:
            return
        trace_id = self._attempt_context.trace_id
        finished = time.time()
        sink.append(
            _trace.synthetic_span(
                trace_id=trace_id,
                span_id=row.id,
                parent_id=None,
                name="job",
                start=row.submitted,
                duration=finished - row.submitted,
                status="ok" if state == "done" else "error",
                attributes={
                    "job_id": row.id,
                    "task": row.task,
                    "state": state,
                    "cached": cached,
                    "attempts": row.attempts,
                },
            )
        )
        started = row.started if row.started is not None else finished
        sink.append(
            _trace.synthetic_span(
                trace_id=trace_id,
                span_id=f"{row.id}-wait",
                parent_id=row.id,
                name="queue.wait",
                start=row.submitted,
                duration=max(0.0, started - row.submitted),
            )
        )

    def _heartbeat_loop(
        self, job_id: str, stop: threading.Event, lost: threading.Event
    ) -> None:
        """Renew the lease until told to stop, surviving transient errors.

        :meth:`JobQueue.heartbeat` raises only after its own bounded
        retries are exhausted (sustained lock contention, injected
        faults).  A silently dying heartbeat thread would let the lease
        lapse mid-job and the job run twice — so failures here are
        caught and retried with backoff, and only when the lease budget
        itself is exhausted (we can no longer prove ownership) does the
        loop escalate by setting ``lost``, which makes the worker
        discard its result exactly as if the lease had been reclaimed.
        """
        beat = self.queue_config.heartbeat_seconds
        lease = self.queue_config.lease_seconds
        failures = 0
        last_ok = time.time()
        wait = beat
        while not stop.wait(wait):
            try:
                owned = self.queue.heartbeat(
                    job_id, self.worker_id, lease_seconds=lease
                )
            except Exception as exc:
                failures += 1
                if time.time() - last_ok >= lease:
                    _LOG.error(
                        "worker %s: heartbeat for job %s unrestorable"
                        " after %d failure(s) (%s); aborting the job"
                        " cleanly",
                        self.worker_id,
                        job_id,
                        failures,
                        exc,
                    )
                    lost.set()
                    return
                # Retry faster than the normal cadence at first, backing
                # off exponentially — the lease clock is ticking.
                wait = min(beat, 0.05 * (2 ** min(failures, 6)))
                continue
            if not owned:
                lost.set()
                return
            failures = 0
            last_ok = time.time()
            wait = beat
