"""Per-client token-bucket rate limiting for job submission.

Each client (keyed by address) owns one bucket of ``burst`` tokens that
refills continuously at ``rate`` tokens per second; a submission costs
one token and an empty bucket means HTTP 429.  ``rate=0`` disables the
limiter entirely (the default — a private deployment should not pay for
bookkeeping it never uses).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

from repro.utils.validation import (
    ensure_nonnegative_float,
    ensure_positive_int,
)

__all__ = ["TokenBucketLimiter"]

#: Client-table bound: beyond this many tracked clients, fully refilled
#: (i.e. long-idle) buckets are pruned.
_MAX_CLIENTS = 4096


class TokenBucketLimiter:
    """Thread-safe token-bucket limiter keyed by client identifier.

    Parameters
    ----------
    rate:
        Steady-state tokens (submissions) per second per client;
        ``0.0`` disables limiting — every call is allowed.
    burst:
        Bucket capacity: how many submissions a client may make
        instantly from a full bucket.
    """

    def __init__(self, rate: float = 0.0, burst: int = 20) -> None:
        self.rate = ensure_nonnegative_float(rate, "rate")
        self.burst = ensure_positive_int(burst, "burst")
        self._lock = threading.Lock()
        # client -> (tokens, last refill timestamp)
        self._buckets: Dict[str, Tuple[float, float]] = {}

    @property
    def enabled(self) -> bool:
        """True when a non-zero rate is configured."""
        return self.rate > 0.0

    def allow(
        self, client: str, *, now: Optional[float] = None
    ) -> Tuple[bool, float]:
        """Spend one token for ``client``.

        Returns ``(allowed, retry_after)``: ``retry_after`` is 0 when
        allowed, else the seconds until one token will be available
        (what the 429 response's ``Retry-After`` header should say).
        """
        if not self.enabled:
            return True, 0.0
        now = time.time() if now is None else now
        with self._lock:
            tokens, last = self._buckets.get(client, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                self._buckets[client] = (tokens - 1.0, now)
                return True, 0.0
            self._buckets[client] = (tokens, now)
            retry_after = (1.0 - tokens) / self.rate
            if len(self._buckets) > _MAX_CLIENTS:
                self._prune(now)
            return False, retry_after

    def _prune(self, now: float) -> None:
        """Drop clients whose buckets have fully refilled (idle clients).

        Caller holds the lock.  A full bucket is indistinguishable from
        an untracked client, so forgetting it loses nothing.
        """
        full_after = self.burst / self.rate
        for client in [
            client
            for client, (_, last) in self._buckets.items()
            if now - last >= full_after
        ]:
            del self._buckets[client]
