"""Durable job queue + worker fleet (`PR 6`).

The persistence and horizontal-scaling tier of the macromodel service:
one WAL-mode SQLite file holds the job queue, the HTTP front-end
enqueues into it, and any number of :class:`QueueWorker` processes (or
embedded threads) drain it with leases, heartbeats, crash recovery, and
exactly-once completion.

Public surface:

* :class:`QueueConfig` — the ``REPRO_QUEUE_*`` knobs;
* :class:`JobQueue` / :class:`JobRow` — the durable queue itself;
* :class:`QueueWorker` — the claim → execute → store → ack loop;
* :func:`parse_spec` / :class:`ParsedSpec` — job-spec validation shared
  by the front-end and the workers;
* :class:`TokenBucketLimiter` — per-client submission rate limiting.
"""

from repro.queue.config import QUEUE_ENV_PREFIX, QUEUE_FILENAME, QueueConfig
from repro.queue.db import (
    JOB_STATES,
    TERMINAL_STATES,
    JobQueue,
    JobRow,
)
from repro.queue.ratelimit import TokenBucketLimiter
from repro.queue.spec import (
    SIMULATE_SPEC_KEYS,
    VALID_KINDS,
    VALID_TASKS,
    JobError,
    ParsedSpec,
    input_digest,
    job_from_spec,
    parse_spec,
)
from repro.queue.worker import QueueWorker, default_worker_id

__all__ = [
    "JOB_STATES",
    "QUEUE_ENV_PREFIX",
    "QUEUE_FILENAME",
    "SIMULATE_SPEC_KEYS",
    "TERMINAL_STATES",
    "VALID_KINDS",
    "VALID_TASKS",
    "JobError",
    "JobQueue",
    "JobRow",
    "ParsedSpec",
    "QueueConfig",
    "QueueWorker",
    "TokenBucketLimiter",
    "default_worker_id",
    "input_digest",
    "job_from_spec",
    "parse_spec",
]
