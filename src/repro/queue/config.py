"""Queue configuration: the ``REPRO_QUEUE_*`` knobs.

Mirrors the :class:`~repro.core.config.RunConfig` pattern — one frozen,
validated value object constructed from code, dictionaries, or the
environment, flowing unchanged from the CLI (``repro serve`` /
``repro worker`` / ``repro jobs``) down to the queue and worker layers::

    qc = QueueConfig()                       # defaults
    qc = QueueConfig.from_env()              # REPRO_QUEUE_* overrides
    qc = qc.merged(lease_seconds=5.0)        # functional per-call override

Recognized environment variables (all optional):

* ``REPRO_QUEUE_PATH``          — queue database file (default: one file
  named ``queue.sqlite3`` next to the result store);
* ``REPRO_QUEUE_LEASE``         — job lease in seconds; a worker that
  stops heartbeating loses its job after this long;
* ``REPRO_QUEUE_HEARTBEAT``     — heartbeat interval (must stay below
  the lease or a healthy worker would lose its own job);
* ``REPRO_QUEUE_POLL``          — idle worker poll interval in seconds;
* ``REPRO_QUEUE_MAX_ATTEMPTS``  — claim attempts before a job is marked
  ``failed`` (bounds requeue loops from crashing workers);
* ``REPRO_QUEUE_RATE``          — per-client job submissions per second
  accepted by the HTTP front-end (0 disables rate limiting);
* ``REPRO_QUEUE_BURST``         — per-client token-bucket burst size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.core.config import ConfigError
from repro.utils.validation import (
    ensure_nonnegative_float,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = ["QUEUE_ENV_PREFIX", "QUEUE_FILENAME", "QueueConfig"]

#: Environment prefix recognized by :meth:`QueueConfig.from_env`.
QUEUE_ENV_PREFIX = "REPRO_QUEUE_"

#: Default database filename, created next to the result store.
QUEUE_FILENAME = "queue.sqlite3"


def _checked_fields(mapping: Mapping[str, Any]) -> dict:
    valid = {f.name for f in fields(QueueConfig)}
    unknown = sorted(set(mapping) - valid)
    if unknown:
        raise ValueError(
            f"unknown QueueConfig field(s) {unknown};"
            f" valid fields: {sorted(valid)}"
        )
    return dict(mapping)


@dataclass(frozen=True)
class QueueConfig:
    """Frozen bundle of the durable-queue knobs.

    Parameters
    ----------
    path:
        Queue database file; ``None`` resolves to ``queue.sqlite3`` next
        to the result store (see :meth:`resolve_path`).
    lease_seconds:
        How long a claimed job stays owned without a heartbeat.  Short
        leases recover faster from killed workers; long leases tolerate
        slower heartbeat scheduling under load.
    heartbeat_seconds:
        Interval between lease renewals of an executing worker; must be
        smaller than ``lease_seconds``.
    poll_seconds:
        How often an idle worker re-checks the queue for work.
    max_attempts:
        Claim attempts before a job is marked ``failed`` (a job leased
        by a crashing worker is requeued at most this many times).
    rate:
        Per-client submissions per second the HTTP front-end accepts;
        ``0.0`` (default) disables rate limiting.
    burst:
        Token-bucket burst: clients may submit this many jobs instantly
        before the steady-state ``rate`` applies.
    """

    path: Optional[str] = None
    lease_seconds: float = 60.0
    heartbeat_seconds: float = 15.0
    poll_seconds: float = 0.2
    max_attempts: int = 3
    rate: float = 0.0
    burst: int = 20

    def __post_init__(self) -> None:
        if self.path is not None:
            if isinstance(self.path, os.PathLike):
                object.__setattr__(self, "path", os.fspath(self.path))
            elif not isinstance(self.path, str):
                raise TypeError(
                    "path must be a path string or None,"
                    f" got {type(self.path).__name__}"
                )
        object.__setattr__(
            self,
            "lease_seconds",
            ensure_positive_float(self.lease_seconds, "lease_seconds"),
        )
        object.__setattr__(
            self,
            "heartbeat_seconds",
            ensure_positive_float(self.heartbeat_seconds, "heartbeat_seconds"),
        )
        if self.heartbeat_seconds >= self.lease_seconds:
            raise ValueError(
                f"heartbeat_seconds ({self.heartbeat_seconds}) must stay"
                f" below lease_seconds ({self.lease_seconds}) or a healthy"
                " worker would lose its own lease"
            )
        object.__setattr__(
            self,
            "poll_seconds",
            ensure_positive_float(self.poll_seconds, "poll_seconds"),
        )
        object.__setattr__(
            self,
            "max_attempts",
            ensure_positive_int(self.max_attempts, "max_attempts"),
        )
        object.__setattr__(
            self, "rate", ensure_nonnegative_float(self.rate, "rate")
        )
        object.__setattr__(
            self, "burst", ensure_positive_int(self.burst, "burst")
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_env(
        cls,
        environ: Optional[Mapping[str, str]] = None,
        *,
        base: Optional["QueueConfig"] = None,
        prefix: str = QUEUE_ENV_PREFIX,
    ) -> "QueueConfig":
        """Build a config from ``REPRO_QUEUE_*`` environment variables.

        Raises
        ------
        repro.ConfigError
            On any unparseable value, naming the offending variable.
        """
        environ = os.environ if environ is None else environ
        base = base if base is not None else cls()
        overrides: dict = {}

        def get(key: str) -> Optional[str]:
            value = environ.get(prefix + key)
            return None if value is None or value.strip() == "" else value

        def parse(key: str, raw: str, caster):
            try:
                return caster(raw)
            except (TypeError, ValueError) as exc:
                raise ConfigError(
                    f"invalid {prefix + key}={raw!r}: {exc}"
                ) from exc

        if (raw := get("PATH")) is not None:
            overrides["path"] = raw.strip()
        if (raw := get("LEASE")) is not None:
            overrides["lease_seconds"] = parse("LEASE", raw, float)
        if (raw := get("HEARTBEAT")) is not None:
            overrides["heartbeat_seconds"] = parse("HEARTBEAT", raw, float)
        if (raw := get("POLL")) is not None:
            overrides["poll_seconds"] = parse("POLL", raw, float)
        if (raw := get("MAX_ATTEMPTS")) is not None:
            overrides["max_attempts"] = parse("MAX_ATTEMPTS", raw, int)
        if (raw := get("RATE")) is not None:
            overrides["rate"] = parse("RATE", raw, float)
        if (raw := get("BURST")) is not None:
            overrides["burst"] = parse("BURST", raw, int)
        try:
            return base.merged(**overrides) if overrides else base
        except ConfigError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConfigError(str(exc)) from exc

    def merged(self, **overrides: Any) -> "QueueConfig":
        """Return a copy with the given fields replaced (and re-validated)."""
        if not overrides:
            return self
        return replace(self, **_checked_fields(overrides))

    # -- introspection ------------------------------------------------------

    def resolve_path(self, store_root: Optional[os.PathLike] = None) -> Path:
        """The concrete database file this config names.

        An explicit ``path`` wins; otherwise the file lives next to the
        result store (``store_root``, else the default cache location) —
        the one shared filesystem location every worker already mounts.
        """
        if self.path is not None:
            return Path(self.path)
        if store_root is None:
            from repro.store import default_cache_dir

            store_root = default_cache_dir()
        return Path(store_root) / QUEUE_FILENAME

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of this config."""
        return {
            "path": self.path,
            "lease_seconds": self.lease_seconds,
            "heartbeat_seconds": self.heartbeat_seconds,
            "poll_seconds": self.poll_seconds,
            "max_attempts": self.max_attempts,
            "rate": self.rate,
            "burst": self.burst,
        }
