"""Sherman-Morrison-Woodbury shift-and-invert operator (eq. 6 of the paper).

With the low-rank split ``M = K0 + U Z V`` (see
:mod:`repro.hamiltonian.operator`) the shifted matrix is
``M - theta I = K + U Z V`` where ``K = blkdiag(A - theta I, -A^T - theta I)``
is block-diagonal with 1x1/2x2 blocks.  The Woodbury identity in the form
that does not require ``Z`` itself to be invertible reads

.. math::

    (K + U Z V)^{-1} = K^{-1} - K^{-1} U Z (I + V K^{-1} U Z)^{-1} V K^{-1}.

The ``2p x 2p`` *core* ``I + (V K^{-1} U) Z`` is assembled once per shift
(two structured Gramian products) and inverted; afterwards each
application of ``(M - theta I)^{-1}`` costs one pair of O(n) structured
solves, two O(n p) port projections, and one O(p^2) small matmul —
linear in the number of macromodel states, which is the enabling property
for the Krylov iteration of Sec. III.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hamiltonian.operator import HamiltonianOperator
from repro.utils.timing import WorkCounter

__all__ = ["ShiftInvertOperator"]


class ShiftInvertOperator:
    """Applies ``(M - shift I)^{-1}`` in O(n p) via the SMW identity.

    Parameters
    ----------
    hamiltonian:
        The matrix-free Hamiltonian operator (carries the realization and
        the coupling matrix Z).
    shift:
        Complex shift ``theta``.  Must not coincide with a pole of the
        realization (that would make the block-diagonal part K singular) or
        with an eigenvalue of M (that would make the core singular).

    Raises
    ------
    ZeroDivisionError
        If ``shift`` equals a pole of A or ``-conj``-mirrored pole of A^T.
    numpy.linalg.LinAlgError
        If the SMW core is numerically singular (shift equals a Hamiltonian
        eigenvalue); callers are expected to nudge the shift and retry.
    """

    def __init__(self, hamiltonian: HamiltonianOperator, shift: complex) -> None:
        if not isinstance(hamiltonian, HamiltonianOperator):
            raise TypeError(
                f"expected HamiltonianOperator, got {type(hamiltonian).__name__}"
            )
        self.hamiltonian = hamiltonian
        self.shift = complex(shift)
        simo = hamiltonian.simo
        p = simo.num_ports

        # Gramian blocks of V K^-1 U:
        #   upper: C (A - theta I)^-1 B              = gamma(theta)
        #   lower: B^T (-A^T - theta I)^-1 C^T       = -gamma(-theta)^T
        g_upper = simo.gamma(self.shift)
        g_lower = -simo.gamma(-self.shift).T
        vku = np.zeros((2 * p, 2 * p), dtype=complex)
        vku[:p, :p] = g_upper
        vku[p:, p:] = g_lower

        z = hamiltonian.smw_coupling
        core = np.eye(2 * p, dtype=complex) + vku @ z
        # Inversion may raise LinAlgError for a singular core (shift on an
        # eigenvalue); propagate to the caller, which perturbs the shift.
        # An explicit inverse (applied via matmul) is used instead of an LU
        # factorization because worker threads apply this concurrently and
        # BLAS matmul is the only reliably thread-safe small-solve
        # primitive across scipy/OpenBLAS builds.
        self._zcore_inv = z @ np.linalg.inv(core)
        if not np.all(np.isfinite(self._zcore_inv)):
            raise np.linalg.LinAlgError("SMW core inversion is not finite")
        if hamiltonian.work is not None:
            hamiltonian.work.add(small_solves=1)

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Operator dimension 2n."""
        return self.hamiltonian.dimension

    @property
    def work(self) -> Optional[WorkCounter]:
        """The work counter shared with the parent Hamiltonian operator."""
        return self.hamiltonian.work

    # ------------------------------------------------------------------
    def _solve_k(self, x: np.ndarray) -> np.ndarray:
        """Apply ``K^{-1} = blkdiag((A - theta I)^{-1}, (-A^T - theta I)^{-1})``."""
        simo = self.hamiltonian.simo
        n = simo.order
        theta = self.shift
        top = simo.solve_shifted(theta, x[:n])
        # (-A^T - theta I) y = x2  <=>  (A^T + theta I) y = -x2
        bottom = -simo.solve_shifted(-theta, x[n:], transpose=True)
        return np.concatenate([top, bottom])

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply ``(M - shift I)^{-1}`` to a vector ``(2n,)`` or block ``(2n, k)``.

        The structured solves and port projections broadcast over trailing
        columns, so a ``k``-column block amortizes the Python-level kernel
        dispatch into BLAS calls; blocked applies count as ``k`` work units.
        """
        x = np.asarray(x, dtype=complex)
        n = self.hamiltonian.order
        if x.ndim not in (1, 2) or x.shape[0] != 2 * n:
            raise ValueError(
                f"expected vector of length {2 * n} or block (2n, k),"
                f" got shape {x.shape}"
            )
        simo = self.hamiltonian.simo
        p = simo.num_ports

        w = self._solve_k(x)
        # v = V w  (port projections)
        v = np.concatenate([simo.apply_c(w[:n]), simo.apply_bt(w[n:])])
        # t = Z (I + VKU Z)^-1 v
        t = self._zcore_inv @ v
        # u = U t
        u = np.concatenate([simo.apply_b(t[:p]), simo.apply_ct(t[p:])])
        result = w - self._solve_k(u)

        if self.hamiltonian.work is not None:
            self.hamiltonian.work.add(
                operator_applies=1 if x.ndim == 1 else x.shape[1]
            )
        return result

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def __repr__(self) -> str:
        return (
            f"ShiftInvertOperator(shift={self.shift!r},"
            f" order={self.hamiltonian.order})"
        )
