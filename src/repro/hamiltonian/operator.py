"""Matrix-free Hamiltonian operator built on the structured realization.

Applying the dense Hamiltonian of eq. (5) costs O(n^2) because ``M`` is full
even when the realization is sparse.  This module never forms ``M``:
it exploits the factored structure

.. math::

    M = \\begin{bmatrix} A & \\\\ & -A^T \\end{bmatrix}
      + \\begin{bmatrix} B & \\\\ & C^T \\end{bmatrix} Z
        \\begin{bmatrix} C & \\\\ & B^T \\end{bmatrix}

where ``Z`` is a small ``2p x 2p`` coupling matrix depending only on ``D``
(scattering: ``Z = [[-R^-1 D^T, -R^-1], [S^-1, D R^-1]]``; immittance:
``Z = [[-R0^-1, -R0^-1], [R0^-1, R0^-1]]``).  With the SIMO kernels each
application costs O(n p).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hamiltonian.dense import (
    asymptotic_singular_margin,
    dense_hamiltonian,
)
from repro.macromodel.simo import SimoRealization
from repro.utils.timing import WorkCounter
from repro.utils.validation import ensure_choice

__all__ = ["HamiltonianOperator", "REPRESENTATIONS"]

#: Canonical transfer-representation names; the single source of truth
#: consumed by :class:`~repro.core.config.RunConfig` validation and the CLI.
REPRESENTATIONS = ("scattering", "immittance")


class HamiltonianOperator:
    """Matrix-free ``M x`` in O(n p) plus shift-invert factory.

    Parameters
    ----------
    simo:
        Structured realization of the macromodel.
    representation:
        ``"scattering"`` (default; eq. 5 of the paper) or ``"immittance"``.
    work:
        Optional :class:`~repro.utils.timing.WorkCounter`; every operator
        application increments ``operator_applies``.

    Raises
    ------
    ValueError
        If the asymptotic condition fails (``sigma(D) >= 1`` for
        scattering, ``D + D^T`` not positive definite for immittance).
    """

    def __init__(
        self,
        simo: SimoRealization,
        representation: str = "scattering",
        work: Optional[WorkCounter] = None,
    ) -> None:
        if not isinstance(simo, SimoRealization):
            raise TypeError(f"expected SimoRealization, got {type(simo).__name__}")
        ensure_choice(representation, "representation", REPRESENTATIONS)
        self.simo = simo
        self.representation = representation
        self.work = work
        p = simo.num_ports
        d = simo.d
        eye = np.eye(p)

        # The small p x p couplings are inverted explicitly (they are tiny
        # and well conditioned under the asymptotic conditions below) and
        # applied with plain matmuls.  Rationale: worker threads apply these
        # concurrently, and BLAS-level matmul is the only small-solve
        # primitive that is reliably thread-safe across scipy/OpenBLAS
        # builds (scipy's lu_solve crashed under concurrency in testing).
        if representation == "scattering":
            margin = asymptotic_singular_margin(d)
            if margin <= 0.0:
                raise ValueError(
                    "strict asymptotic passivity sigma(D) < 1 required"
                    f" (margin={margin:.3e})"
                )
            self.asymptotic_margin = margin
            r = d.T @ d - eye
            s = d @ d.T - eye
            r_inv = np.linalg.inv(r)
            s_inv = np.linalg.inv(s)
            self._r_inv = r_inv
            self._s_inv = s_inv
            self._z = np.block(
                [[-r_inv @ d.T, -r_inv], [s_inv, d @ r_inv]]
            )
        else:
            r0 = d + d.T
            eigvals = np.linalg.eigvalsh(r0)
            if eigvals.size and eigvals.min() <= 0.0:
                raise ValueError(
                    "immittance Hamiltonian requires D + D^T positive definite"
                    f" (min eig = {eigvals.min():.3e})"
                )
            self.asymptotic_margin = float(eigvals.min()) if eigvals.size else 1.0
            r0_inv = np.linalg.inv(r0)
            self._r0_inv = r0_inv
            self._z = np.block([[-r0_inv, -r0_inv], [r0_inv, r0_inv]])

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Macromodel dynamic order n."""
        return self.simo.order

    @property
    def dimension(self) -> int:
        """Hamiltonian dimension 2n."""
        return 2 * self.simo.order

    @property
    def num_ports(self) -> int:
        """Number of ports p."""
        return self.simo.num_ports

    @property
    def smw_coupling(self) -> np.ndarray:
        """The ``2p x 2p`` coupling matrix Z of the low-rank split (copy)."""
        return self._z.copy()

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply ``M`` to a vector ``(2n,)`` or a block ``(2n, k)`` in O(n p k).

        The structured SIMO kernels broadcast over trailing columns, so a
        ``k``-column block costs one pass of BLAS-level operations instead
        of ``k`` Python-level applications; blocked applies are counted as
        ``k`` work units.
        """
        x = np.asarray(x)
        n = self.order
        if x.ndim not in (1, 2) or x.shape[0] != 2 * n:
            raise ValueError(
                f"expected vector of length {2 * n} or block (2n, k),"
                f" got shape {x.shape}"
            )
        simo = self.simo
        x1, x2 = x[:n], x[n:]
        cx = simo.apply_c(x1)
        btx = simo.apply_bt(x2)

        if self.representation == "scattering":
            d = simo.d
            r_inv_btx = self._r_inv @ btx
            y1 = simo.apply_a(x1) - simo.apply_b(
                self._r_inv @ (d.T @ cx) + r_inv_btx
            )
            y2 = simo.apply_ct(self._s_inv @ cx + d @ r_inv_btx) - simo.apply_a(
                x2, transpose=True
            )
        else:
            t = self._r0_inv @ (cx + btx)
            y1 = simo.apply_a(x1) - simo.apply_b(t)
            y2 = simo.apply_ct(t) - simo.apply_a(x2, transpose=True)

        if self.work is not None:
            self.work.add(operator_applies=1 if x.ndim == 1 else x.shape[1])
        return np.concatenate([y1, y2])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    # ------------------------------------------------------------------
    def shift_invert(self, shift: complex) -> "ShiftInvertOperator":
        """Build the O(n p) SMW operator for ``(M - shift I)^{-1}``."""
        from repro.hamiltonian.shift_invert import ShiftInvertOperator

        return ShiftInvertOperator(self, shift)

    def dense(self) -> np.ndarray:
        """Assemble the dense ``2n x 2n`` Hamiltonian (tests / baseline)."""
        return dense_hamiltonian(self.simo, self.representation)

    def norm_upper_bound(self) -> float:
        """Cheap upper bound on ``||M||_2`` used for eigenvalue tolerances.

        Combines the exact spectral radius of the block-diagonal part with
        the norms of the low-rank factors:
        ``||M|| <= ||blkdiag(A, -A^T)|| + ||U|| ||Z|| ||V||``.
        """
        simo = self.simo
        base = simo.spectral_radius_bound()
        bnorm = float(np.linalg.norm(simo.b)) if simo.b.size else 0.0
        cnorm = float(np.linalg.norm(simo.c, 2)) if simo.c.size else 0.0
        unorm = max(bnorm, cnorm)
        znorm = float(np.linalg.norm(self._z, 2)) if self._z.size else 0.0
        return base + unorm * znorm * unorm

    def __repr__(self) -> str:
        return (
            f"HamiltonianOperator(order={self.order}, ports={self.num_ports},"
            f" representation={self.representation!r})"
        )
