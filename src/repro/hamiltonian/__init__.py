"""Hamiltonian matrices for passivity characterization.

The scattering Hamiltonian (eq. 5 of the paper) associated with a
state-space macromodel has the property that its purely imaginary
eigenvalues ``j*w`` mark exactly the frequencies where singular values of
``H(j*w)`` cross the unit threshold.  This subpackage provides:

* :mod:`repro.hamiltonian.dense` -- explicit dense construction (eq. 5),
  scattering and immittance variants;
* :mod:`repro.hamiltonian.operator` -- a matrix-free O(n p) operator built
  on the structured SIMO realization;
* :mod:`repro.hamiltonian.shift_invert` -- the Sherman-Morrison-Woodbury
  shift-and-invert operator of eq. (6), also O(n p) per application;
* :mod:`repro.hamiltonian.spectral` -- the O(n^3) full dense eigensolution
  baseline and imaginary-eigenvalue filtering.
"""

from repro.hamiltonian.dense import (
    dense_hamiltonian,
    dense_hamiltonian_immittance,
    dense_hamiltonian_scattering,
)
from repro.hamiltonian.operator import HamiltonianOperator
from repro.hamiltonian.shift_invert import ShiftInvertOperator
from repro.hamiltonian.spectral import (
    full_hamiltonian_spectrum,
    imaginary_eigenvalues_dense,
    select_imaginary,
)

__all__ = [
    "dense_hamiltonian",
    "dense_hamiltonian_scattering",
    "dense_hamiltonian_immittance",
    "HamiltonianOperator",
    "ShiftInvertOperator",
    "full_hamiltonian_spectrum",
    "imaginary_eigenvalues_dense",
    "select_imaginary",
]
