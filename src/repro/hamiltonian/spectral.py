"""Dense full Hamiltonian eigensolution — the O(n^3) baseline of Sec. III.

The paper dismisses this route for large models ("a standard full
eigensolution scales as the third power of the problem size") but it remains
the ground truth for validating the fast solver on small and medium sizes,
and the baseline for the complexity-ablation benchmark.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.linalg

from repro.hamiltonian.dense import dense_hamiltonian
from repro.macromodel.simo import SimoRealization
from repro.macromodel.statespace import StateSpace

__all__ = [
    "full_hamiltonian_spectrum",
    "select_imaginary",
    "imaginary_eigenvalues_dense",
]

ModelLike = Union[StateSpace, SimoRealization]


def full_hamiltonian_spectrum(
    model: ModelLike, representation: str = "scattering"
) -> np.ndarray:
    """All ``2n`` eigenvalues of the dense Hamiltonian (O(n^3))."""
    m = dense_hamiltonian(model, representation)
    if m.shape[0] == 0:
        return np.empty(0, dtype=complex)
    return scipy.linalg.eigvals(m)


def select_imaginary(
    eigenvalues: np.ndarray, *, scale: float = 1.0, rtol: float = 1e-8
) -> np.ndarray:
    """Filter (numerically) purely imaginary eigenvalues.

    An eigenvalue ``lam`` is accepted when ``|Re lam| <= rtol * max(scale,
    |lam|)``.  For a real Hamiltonian the imaginary eigenvalues come in
    ``+/- j w`` pairs; this function returns the **non-negative** imaginary
    parts ``w``, sorted ascending, one entry per pair (the ``w = 0`` case
    appears once).

    Parameters
    ----------
    eigenvalues:
        Arbitrary complex eigenvalue array.
    scale:
        Problem scale (e.g. an estimate of ``||M||``) guarding the test for
        eigenvalues near the origin.
    rtol:
        Relative tolerance on the real part.
    """
    lam = np.asarray(eigenvalues, dtype=complex)
    if lam.size == 0:
        return np.empty(0, dtype=float)
    tol = rtol * np.maximum(float(scale), np.abs(lam))
    mask = np.abs(lam.real) <= tol
    omegas = lam[mask].imag
    nonneg = np.sort(omegas[omegas >= 0.0])
    # Collapse near-duplicates produced by the +/- pairing of w ~ 0 entries.
    if nonneg.size >= 2:
        keep = np.ones(nonneg.size, dtype=bool)
        gap_tol = rtol * max(float(scale), float(nonneg[-1]))
        for i in range(1, nonneg.size):
            if nonneg[i] - nonneg[i - 1] <= gap_tol and nonneg[i] <= gap_tol:
                keep[i] = False
        nonneg = nonneg[keep]
    return nonneg


def imaginary_eigenvalues_dense(
    model: ModelLike,
    representation: str = "scattering",
    *,
    rtol: float = 1e-8,
) -> np.ndarray:
    """Ground-truth crossing frequencies via the dense eigensolver.

    Returns the sorted non-negative imaginary parts ``w`` of the purely
    imaginary Hamiltonian eigenvalues — the set the paper calls ``Omega``
    restricted to the upper half axis.
    """
    m = dense_hamiltonian(model, representation)
    if m.shape[0] == 0:
        return np.empty(0, dtype=float)
    lam = scipy.linalg.eigvals(m)
    scale = float(np.linalg.norm(m, ord=np.inf))
    return select_imaginary(lam, scale=max(scale, 1.0), rtol=rtol)
