"""Explicit dense Hamiltonian construction.

Scattering representation (eq. 5 of the paper)::

    M = [ A - B R^-1 D^T C      -B R^-1 B^T              ]
        [ C^T S^-1 C            -A^T + C^T D R^-1 B^T    ]

with ``R = D^T D - I`` and ``S = D D^T - I``.  Under strict asymptotic
passivity (``sigma(D) < 1``, eq. 4) both R and S are negative definite and
the construction is well posed.  The purely imaginary eigenvalues of M are
the frequencies where singular values of ``H(j w)`` touch or cross 1.

Immittance representation (mentioned in Sec. II as the "impedance,
admittance, and hybrid cases")::

    M = [ A - B R0^-1 C     -B R0^-1 B^T          ]
        [ C^T R0^-1 C       -A^T + C^T R0^-1 B^T  ]

with ``R0 = D + D^T`` positive definite.  Its imaginary eigenvalues mark
the frequencies where eigenvalues of ``H(j w) + H(j w)^H`` cross zero.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.macromodel.simo import SimoRealization
from repro.macromodel.statespace import StateSpace

__all__ = [
    "dense_hamiltonian_scattering",
    "dense_hamiltonian_immittance",
    "dense_hamiltonian",
    "asymptotic_singular_margin",
]

ModelLike = Union[StateSpace, SimoRealization]


def _as_statespace(model: ModelLike) -> StateSpace:
    """Normalize the input to a dense StateSpace."""
    if isinstance(model, SimoRealization):
        return model.to_statespace()
    if isinstance(model, StateSpace):
        return model
    raise TypeError(
        f"expected StateSpace or SimoRealization, got {type(model).__name__}"
    )


def asymptotic_singular_margin(d: np.ndarray) -> float:
    """Return ``1 - max(sigma(D))``, the strict asymptotic passivity margin.

    Positive values certify eq. (4) of the paper; non-positive values mean
    the scattering Hamiltonian construction is singular or ill posed.
    """
    d = np.asarray(d, dtype=float)
    if d.size == 0:
        return 1.0
    return 1.0 - float(np.linalg.norm(d, 2))


def dense_hamiltonian_scattering(model: ModelLike) -> np.ndarray:
    """Build the dense ``2n x 2n`` scattering Hamiltonian of eq. (5).

    Raises
    ------
    ValueError
        If ``sigma(D) >= 1`` (eq. 4 violated), making ``R`` or ``S``
        singular.
    """
    ss = _as_statespace(model)
    a, b, c, d = ss.a, ss.b, ss.c, ss.d
    p = ss.num_ports
    margin = asymptotic_singular_margin(d)
    if margin <= 0.0:
        raise ValueError(
            "strict asymptotic passivity sigma(D) < 1 is required for the"
            f" scattering Hamiltonian (margin={margin:.3e});"
            " clip D first (see repro.passivity.enforcement.clip_direct_term)"
        )
    r = d.T @ d - np.eye(p)
    s = d @ d.T - np.eye(p)
    r_inv_bt = np.linalg.solve(r, b.T)  # R^-1 B^T
    r_inv_dt_c = np.linalg.solve(r, d.T @ c)  # R^-1 D^T C
    s_inv_c = np.linalg.solve(s, c)  # S^-1 C

    top_left = a - b @ r_inv_dt_c
    top_right = -b @ r_inv_bt
    bottom_left = c.T @ s_inv_c
    bottom_right = -a.T + c.T @ d @ r_inv_bt
    return np.block([[top_left, top_right], [bottom_left, bottom_right]])


def dense_hamiltonian_immittance(model: ModelLike) -> np.ndarray:
    """Build the dense Hamiltonian for immittance (Y/Z/hybrid) models.

    Raises
    ------
    ValueError
        If ``D + D^T`` is not positive definite (the asymptotic strict
        positive-realness condition playing the role of eq. 4).
    """
    ss = _as_statespace(model)
    a, b, c, d = ss.a, ss.b, ss.c, ss.d
    r0 = d + d.T
    eigvals = np.linalg.eigvalsh(r0)
    if eigvals.size and eigvals.min() <= 0.0:
        raise ValueError(
            "immittance Hamiltonian requires D + D^T positive definite"
            f" (min eig = {eigvals.min():.3e})"
        )
    r0_inv_c = np.linalg.solve(r0, c)
    r0_inv_bt = np.linalg.solve(r0, b.T)
    top_left = a - b @ r0_inv_c
    top_right = -b @ r0_inv_bt
    bottom_left = c.T @ r0_inv_c
    bottom_right = -a.T + c.T @ r0_inv_bt
    return np.block([[top_left, top_right], [bottom_left, bottom_right]])


def dense_hamiltonian(
    model: ModelLike, representation: str = "scattering"
) -> np.ndarray:
    """Dispatch on ``representation`` in {"scattering", "immittance"}."""
    if representation == "scattering":
        return dense_hamiltonian_scattering(model)
    if representation == "immittance":
        return dense_hamiltonian_immittance(model)
    raise ValueError(
        f"unknown representation {representation!r};"
        " expected 'scattering' or 'immittance'"
    )
