"""The batch fleet runner: many models through fit → check → enforce.

:class:`BatchRunner` drives a whole fleet of macromodels through the
paper's pipeline across a bounded pool of worker processes, with a hard
per-job timeout (a hung or runaway job is terminated, not waited on) and
structured per-job results collected into one :class:`FleetReport`.

Execution backends:

* ``"process"`` (default) — one OS process per in-flight job, bounded by
  ``workers``; the only backend whose timeout can actually *kill* a
  stuck job.  Inside a job the solver's own ``backend="process"`` is
  downgraded to ``"auto"`` so fleets do not fork pools inside pools.
* ``"thread"`` — a thread pool; timeouts are best-effort (the job is
  *marked* timed out and its late result discarded, but CPython cannot
  preempt the thread).
* ``"serial"`` — in-process, one job at a time; deterministic reference
  used by the backend-parity tests and the benchmark baseline.  The
  timeout is best-effort here too: an overrunning job is re-labelled
  ``"timeout"`` after it completes.

Usage::

    from repro.batch import BatchRunner, synth_fleet

    report = BatchRunner(workers=4, timeout=60.0).run(synth_fleet(10))
    print(report.summary())
    payload = report.to_dict()            # JSON-serializable

or, through the facade: ``Macromodel.map(synth_fleet(10), workers=4)``.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.batch.jobs import BatchJob, JobSource, expand_jobs
from repro.core.config import RunConfig
from repro.core.process import preferred_mp_context
from repro.obs import trace as _trace
from repro.utils.guards import NumericalError
from repro.utils.logging import get_logger
from repro.utils.serialization import to_jsonable
from repro.utils.validation import ensure_choice, ensure_positive_int

__all__ = [
    "BATCH_BACKENDS",
    "JobSettings",
    "JobResult",
    "FleetReport",
    "BatchRunner",
]

_LOG = get_logger("batch")

#: Execution backends the runner supports.
BATCH_BACKENDS = ("process", "thread", "serial")

#: Seconds between liveness polls of in-flight worker processes.
_POLL_INTERVAL = 0.02


@dataclass(frozen=True)
class JobSettings:
    """Pipeline parameters shared by every job of a fleet run."""

    config: Optional[RunConfig] = None
    num_poles: int = 30
    enforce: bool = False
    margin: float = 0.002
    in_process_pool: bool = False
    hinf: bool = False
    simulate: bool = False
    #: Keyword arguments of :meth:`Macromodel.simulate` (stimulus,
    #: num_steps, integrator, ...); ``None`` uses the engine defaults.
    simulate_params: Optional[dict] = None
    #: Serialized :class:`repro.obs.TraceContext` dict — the distributed
    #: tracing context the executing side (possibly a child process)
    #: restores, so pipeline-stage spans nest under the caller's span.
    #: ``None`` leaves tracing inactive.
    trace: Optional[dict] = None


@dataclass(frozen=True)
class JobResult:
    """Structured outcome of one fleet job.

    Attributes
    ----------
    name:
        The job's unique label.
    status:
        ``"ok"``, ``"error"`` (the job raised), or ``"timeout"`` (the
        per-job wall-clock budget expired and the worker was stopped).
    elapsed:
        Wall-clock seconds the job consumed (budget seconds for
        timeouts).
    is_passive:
        Final passivity verdict; ``None`` unless status is ``"ok"``.
    crossings:
        Sorted non-negative crossing frequencies of the *initial*
        characterization (before any enforcement) — the fleet-level
        passivity fingerprint compared across backends.
    error:
        Exception summary for ``"error"`` / ``"timeout"`` rows.
    session:
        The session's JSON payload (:meth:`Macromodel.to_dict`) for
        ``"ok"`` rows.
    source:
        JSON description of the job source.
    cache_hits, cache_misses:
        Result-store traffic of the job's session (all zero when the
        fleet config leaves ``cache="off"``).  A hit means the stage
        skipped its computation and served the stored payload.
    energy_gain:
        Port-energy gain of the transient stage (``None`` unless the
        fleet ran with ``simulate=True``) — the fleet-level passivity
        witness: greater than 1 means the model manufactured energy.
    diagnostic:
        Structured failure diagnostics for ``"error"`` rows whose cause
        was a detected numerical pathology
        (:class:`~repro.utils.guards.NumericalError` — NaN/Inf data,
        pathological conditioning): ``{"type", "stage", "kind",
        "message", "detail"}``.  ``None`` for every other outcome.
    metrics:
        The job session's metrics snapshot
        (:meth:`repro.obs.MetricsRegistry.snapshot` — counters plus
        per-stage latency summaries) for ``"ok"`` rows; ``None``
        otherwise.  Volatile by nature (timings differ run to run), so
        never part of any cross-backend equality comparison.
    """

    name: str
    status: str
    elapsed: float
    is_passive: Optional[bool] = None
    crossings: List[float] = field(default_factory=list)
    error: Optional[str] = None
    session: Optional[dict] = None
    source: Optional[dict] = None
    cache_hits: int = 0
    cache_misses: int = 0
    energy_gain: Optional[float] = None
    diagnostic: Optional[dict] = None
    metrics: Optional[dict] = None
    #: Finished trace spans recorded while the job executed (present
    #: only when :attr:`JobSettings.trace` propagated a context) — the
    #: transport that carries child-process spans back over the result
    #: pipe.  Deliberately excluded from :meth:`to_dict`: spans are
    #: persisted to the queue's trace table, not embedded in results.
    spans: Optional[list] = None

    @property
    def ok(self) -> bool:
        """True when the job completed its pipeline."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of this job outcome."""
        return to_jsonable(
            {
                "name": self.name,
                "status": self.status,
                "elapsed": float(self.elapsed),
                "is_passive": self.is_passive,
                "crossings": [float(w) for w in self.crossings],
                "error": self.error,
                "session": self.session,
                "source": self.source,
                "cache_hits": int(self.cache_hits),
                "cache_misses": int(self.cache_misses),
                "energy_gain": self.energy_gain,
                "diagnostic": self.diagnostic,
                "metrics": self.metrics,
            }
        )


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one :meth:`BatchRunner.run` call."""

    results: List[JobResult]
    elapsed: float
    workers: int
    backend: str

    @property
    def num_jobs(self) -> int:
        """Total number of jobs in the fleet."""
        return len(self.results)

    @property
    def num_ok(self) -> int:
        """Jobs that completed their pipeline."""
        return sum(1 for r in self.results if r.ok)

    @property
    def num_failed(self) -> int:
        """Jobs that raised or timed out."""
        return self.num_jobs - self.num_ok

    @property
    def num_passive(self) -> int:
        """Completed jobs whose final verdict was passive."""
        return sum(1 for r in self.results if r.ok and r.is_passive)

    @property
    def all_ok(self) -> bool:
        """True when every job completed."""
        return self.num_failed == 0

    @property
    def cache_hits(self) -> int:
        """Result-store hits across the whole fleet."""
        return sum(r.cache_hits for r in self.results)

    @property
    def cache_misses(self) -> int:
        """Result-store misses across the whole fleet."""
        return sum(r.cache_misses for r in self.results)

    def result(self, name: str) -> JobResult:
        """Look up one job outcome by name."""
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(f"no job named {name!r} in this report")

    def crossings_by_name(self) -> Dict[str, List[float]]:
        """Per-model crossing sets of the completed jobs."""
        return {r.name: list(r.crossings) for r in self.results if r.ok}

    def metrics(self) -> dict:
        """Fleet-aggregate metrics: summed counters plus per-stage
        timing count/total across every job that reported a snapshot.

        Histogram bucket detail does not survive the worker-process
        boundary (snapshots are JSON), so the aggregate carries each
        stage's observation count and total seconds — enough for
        throughput and mean-latency accounting at fleet level.
        """
        counters: Dict[str, int] = {}
        timings: Dict[str, Dict[str, float]] = {}
        for result in self.results:
            snapshot = result.metrics or {}
            for name, value in (snapshot.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + int(value)
            for name, summary in (snapshot.get("timings") or {}).items():
                slot = timings.setdefault(name, {"count": 0, "sum": 0.0})
                slot["count"] += int(summary.get("count") or 0)
                slot["sum"] += float(summary.get("sum") or 0.0)
        return {"counters": counters, "timings": timings}

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of the whole fleet outcome."""
        return to_jsonable(
            {
                "elapsed": float(self.elapsed),
                "workers": int(self.workers),
                "backend": self.backend,
                "num_jobs": self.num_jobs,
                "num_ok": self.num_ok,
                "num_failed": self.num_failed,
                "num_passive": self.num_passive,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "metrics": self.metrics(),
                "results": [r.to_dict() for r in self.results],
            }
        )

    def summary(self) -> str:
        """Multi-line human-readable fleet summary."""
        cache = ""
        if self.cache_hits or self.cache_misses:
            cache = f", cache {self.cache_hits} hit / {self.cache_misses} miss"
        lines = [
            f"fleet: {self.num_jobs} jobs, {self.num_ok} ok,"
            f" {self.num_failed} failed, {self.num_passive} passive,"
            f" {self.elapsed:.3f}s"
            f" ({self.backend} backend, {self.workers} workers{cache})"
        ]
        for r in self.results:
            if r.ok:
                verdict = "passive" if r.is_passive else "NOT passive"
                detail = f"{verdict}, {len(r.crossings)} crossing(s)"
            else:
                detail = f"{r.status}: {r.error}"
            lines.append(f"  {r.name:<20} [{r.status:>7}] {r.elapsed:8.3f}s  {detail}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Job execution (worker side)
# ---------------------------------------------------------------------------


def _execute_job(job: BatchJob, settings: JobSettings) -> JobResult:
    """Run one job's pipeline, restoring the propagated trace context.

    When :attr:`JobSettings.trace` carries a serialized context — e.g.
    the queue worker's attempt span — the whole pipeline runs inside it
    and the finished spans ride back on :attr:`JobResult.spans`, whether
    this executes in a child process, a pool thread, or inline.
    """
    if not settings.trace:
        return _run_pipeline(job, settings)
    try:
        context = _trace.TraceContext.from_dict(settings.trace)
    except (KeyError, TypeError):
        return _run_pipeline(job, settings)
    spans: list = []
    with _trace.activate(context, spans):
        with _trace.span("batch.pipeline", job=job.name):
            result = _run_pipeline(job, settings)
    return replace(result, spans=spans) if spans else result


def _run_pipeline(job: BatchJob, settings: JobSettings) -> JobResult:
    """Run one job's fit → check → enforce pipeline (any backend)."""
    started = time.perf_counter()
    config = settings.config
    if (
        settings.in_process_pool
        and config is not None
        and config.backend == "process"
    ):
        # No pools inside pools: the fleet already owns the cores.
        config = config.merged(backend="auto")
    try:
        session = job.open_session(config)
        if job.needs_fit:
            session.fit(num_poles=settings.num_poles)
        session.check_passivity()
        report = session.passivity_report
        crossings = []
        if report is not None and report.solve is not None:
            crossings = [float(w) for w in report.solve.omegas]
        if settings.enforce and not session.is_passive:
            session.enforce(margin=settings.margin)
        if settings.hinf:
            session.hinf()
        energy_gain = None
        if settings.simulate:
            session.simulate(**(settings.simulate_params or {}))
            energy_gain = float(session.energy_report.energy_gain)
        cache_stats = session.cache_stats
        return JobResult(
            name=job.name,
            status="ok",
            elapsed=time.perf_counter() - started,
            is_passive=session.is_passive,
            crossings=crossings,
            session=session.to_dict(),
            source=job.describe(),
            cache_hits=int(cache_stats.get("hits", 0)),
            cache_misses=int(cache_stats.get("misses", 0)),
            energy_gain=energy_gain,
            metrics=session.metrics.snapshot(),
        )
    except NumericalError as exc:
        # A detected numerical pathology (NaN/Inf input, pathological
        # conditioning) carries a structured diagnostic so operators see
        # *what* went non-finite and *where*, not just a traceback line.
        return JobResult(
            name=job.name,
            status="error",
            elapsed=time.perf_counter() - started,
            error=f"NumericalError: {exc}",
            source=job.describe(),
            diagnostic=exc.to_dict(),
        )
    except Exception as exc:  # one bad model must not sink the fleet
        return JobResult(
            name=job.name,
            status="error",
            elapsed=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
            source=job.describe(),
        )


def _job_entry(payload: bytes, conn) -> None:
    """Worker-process entry point: run one job, ship the result back."""
    try:
        job, settings = pickle.loads(payload)
        result = _execute_job(job, settings)
    except BaseException as exc:  # pickling/import failures included
        result = JobResult(
            name="<unknown>",
            status="error",
            elapsed=0.0,
            error=f"{type(exc).__name__}: {exc}",
        )
    try:
        conn.send(result)
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# The runner (parent side)
# ---------------------------------------------------------------------------


class BatchRunner:
    """Run a fleet of macromodel jobs across a bounded worker pool.

    Parameters
    ----------
    config:
        Solver :class:`~repro.core.config.RunConfig` applied to every
        job's session (per-job sources may refine it).
    workers:
        Maximum concurrent jobs; defaults to ``os.cpu_count()`` capped
        at 8.
    timeout:
        Per-job wall-clock budget in seconds (``None`` — no limit).  On
        the ``"process"`` backend an expired job's worker is terminated.
    backend:
        ``"process"`` (default), ``"thread"``, or ``"serial"`` — see the
        module docstring.  When multiprocessing cannot start on the host
        platform the runner degrades to ``"thread"``.
    num_poles:
        Model order for jobs that need the fitting stage.
    enforce:
        Run the enforcement stage on models whose characterization found
        violations.
    margin:
        Enforcement margin below the unit threshold.
    hinf:
        Also compute the H-infinity norm after the characterization
        (scattering sessions only; used by the HTTP service's ``hinf``
        task).
    simulate:
        Also run the transient energy witness after the final
        characterization/enforcement stage (the HTTP service's
        ``simulate`` task); per-job gains surface as
        ``JobResult.energy_gain``.
    simulate_params:
        Keyword arguments forwarded to :meth:`Macromodel.simulate`
        (stimulus, num_steps, integrator, ...).
    trace:
        Serialized distributed-tracing context
        (:meth:`repro.obs.TraceContext.to_dict`) restored around every
        job so pipeline-stage spans reach the caller's trace; ``None``
        leaves tracing inactive.
    """

    def __init__(
        self,
        *,
        config: Optional[RunConfig] = None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        backend: str = "process",
        num_poles: int = 30,
        enforce: bool = False,
        margin: float = 0.002,
        hinf: bool = False,
        simulate: bool = False,
        simulate_params: Optional[dict] = None,
        trace: Optional[dict] = None,
    ) -> None:
        ensure_choice(backend, "batch backend", BATCH_BACKENDS)
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.workers = ensure_positive_int(workers, "workers")
        if timeout is not None and timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self.backend = backend
        self.settings = JobSettings(
            config=config,
            num_poles=ensure_positive_int(num_poles, "num_poles"),
            enforce=bool(enforce),
            margin=float(margin),
            in_process_pool=(backend == "process"),
            hinf=bool(hinf),
            simulate=bool(simulate),
            simulate_params=dict(simulate_params) if simulate_params else None,
            trace=dict(trace) if trace else None,
        )

    def run(self, sources: Union[JobSource, Sequence[JobSource]]) -> FleetReport:
        """Execute every job and return the aggregate report.

        Job results appear in input order regardless of completion
        order; individual failures and timeouts are recorded, never
        raised.
        """
        jobs = expand_jobs(sources)
        started = time.perf_counter()
        backend = self.backend
        if backend == "process":
            try:
                results = self._run_processes(jobs)
            except (OSError, ImportError) as exc:
                _LOG.debug("process pool unavailable (%r); using threads", exc)
                backend = "thread"
                results = self._run_threads(jobs)
        elif backend == "thread":
            results = self._run_threads(jobs)
        else:
            results = [
                self._soft_budget(_execute_job(job, self.settings))
                for job in jobs
            ]
        elapsed = time.perf_counter() - started
        return FleetReport(
            results=results,
            elapsed=elapsed,
            workers=self.workers,
            backend=backend,
        )

    def _soft_budget(self, result: JobResult) -> JobResult:
        """Best-effort budget for the serial/thread backends: the running
        job cannot be interrupted, so an overrun is re-labelled after the
        fact and its result discarded."""
        if self.timeout is None or result.elapsed <= self.timeout:
            return result
        return JobResult(
            name=result.name,
            status="timeout",
            elapsed=result.elapsed,
            error=f"exceeded the {self.timeout:g}s budget (the job ran to"
            " completion; this backend cannot interrupt it)",
            source=result.source,
        )

    # -- process backend ----------------------------------------------------

    def _run_processes(self, jobs: List[BatchJob]) -> List[JobResult]:
        ctx = preferred_mp_context()
        pending = list(enumerate(jobs))
        results: List[Optional[JobResult]] = [None] * len(jobs)
        active: list = []  # (slot, job, process, conn, deadline)

        def launch(slot: int, job: BatchJob) -> None:
            try:
                payload = pickle.dumps(
                    (job, self.settings), protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception as exc:
                # An unpicklable job must become an error row, not sink
                # the whole fleet before it starts.
                results[slot] = JobResult(
                    name=job.name,
                    status="error",
                    elapsed=0.0,
                    error=f"job is not picklable: {type(exc).__name__}: {exc}",
                    source=job.describe(),
                )
                return
            try:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_job_entry,
                    args=(payload, child_conn),
                    name=f"fleet-{job.name}",
                )
                proc.start()
            except OSError as exc:
                # Fork/pipe failure mid-fleet (fd or process limits): run
                # this job inline instead of letting the exception orphan
                # the workers already in flight.
                _LOG.debug("cannot launch worker for %s (%r)", job.name, exc)
                results[slot] = _execute_job(job, self.settings)
                return
            child_conn.close()
            deadline = (
                time.perf_counter() + self.timeout
                if self.timeout is not None
                else None
            )
            active.append((slot, job, proc, parent_conn, deadline))

        def reap() -> None:
            for entry in list(active):
                slot, job, proc, conn, deadline = entry
                if conn.poll():
                    try:
                        result = conn.recv()
                    except EOFError:
                        result = None
                    proc.join()
                    conn.close()
                    active.remove(entry)
                    results[slot] = self._normalize(job, proc, result)
                elif not proc.is_alive():
                    proc.join()
                    conn.close()
                    active.remove(entry)
                    results[slot] = self._normalize(job, proc, None)
                elif deadline is not None and time.perf_counter() > deadline:
                    proc.terminate()
                    proc.join()
                    conn.close()
                    active.remove(entry)
                    results[slot] = JobResult(
                        name=job.name,
                        status="timeout",
                        elapsed=float(self.timeout),
                        error=f"exceeded the {self.timeout:g}s budget;"
                        " worker terminated",
                        source=job.describe(),
                    )

        while pending or active:
            while pending and len(active) < self.workers:
                slot, job = pending.pop(0)
                launch(slot, job)
            reap()
            if active:
                time.sleep(_POLL_INTERVAL)
        return [r for r in results if r is not None]

    @staticmethod
    def _normalize(
        job: BatchJob, proc, result: Optional[JobResult]
    ) -> JobResult:
        if result is None:
            return JobResult(
                name=job.name,
                status="error",
                elapsed=0.0,
                error=f"worker died without a result"
                f" (exit code {proc.exitcode})",
                source=job.describe(),
            )
        if result.name == "<unknown>":
            # The worker could not even unpickle its payload.
            return JobResult(
                name=job.name,
                status="error",
                elapsed=result.elapsed,
                error=result.error,
                source=job.describe(),
            )
        return result

    # -- thread backend -----------------------------------------------------

    def _run_threads(self, jobs: List[BatchJob]) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        # No context manager: shutdown(wait=True) would block forever on
        # a hung job, defeating the (best-effort) thread timeout.
        pool = ThreadPoolExecutor(max_workers=self.workers)
        try:
            futures = {
                pool.submit(_execute_job, job, self.settings): (slot, job)
                for slot, job in enumerate(jobs)
            }
            for future, (slot, job) in futures.items():
                try:
                    # The wait includes queue time; the job's *own*
                    # budget is judged on its measured elapsed below.
                    results[slot] = self._soft_budget(
                        future.result(timeout=self.timeout)
                    )
                except _FuturesTimeout:
                    if future.cancel():
                        # Never started — queued behind an overrunning
                        # job; report that distinctly from an overrun.
                        error = (
                            f"never started within the {self.timeout:g}s"
                            " wait (pool stalled by earlier jobs)"
                        )
                        elapsed = 0.0
                    else:
                        # Best effort only: the thread keeps running,
                        # but its late result is discarded.
                        error = (
                            f"exceeded the {self.timeout:g}s budget"
                            " (thread backend cannot terminate the job)"
                        )
                        elapsed = float(self.timeout)
                    results[slot] = JobResult(
                        name=job.name,
                        status="timeout",
                        elapsed=elapsed,
                        error=error,
                        source=job.describe(),
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return [r for r in results if r is not None]
