"""Batch job specifications: what one fleet entry runs on.

A job names one model source and knows how to open it as a
:class:`~repro.api.Macromodel` session inside a worker.  Three concrete
kinds cover the fleet inputs:

* :class:`TouchstoneJob` — a ``.sNp`` file on disk (built from explicit
  paths or shell-style globs);
* :class:`SynthJob` — a seeded synthetic macromodel (fully described by
  its generation parameters, so the job itself is a few bytes);
* :class:`ModelJob` — an in-memory :class:`PoleResidueModel` /
  :class:`SimoRealization` or a whole :class:`Macromodel` session.

All jobs are picklable, so they cross process boundaries as-is;
:func:`expand_jobs` normalizes the mixed user-facing inputs (paths,
globs, models, sessions, job objects) into a concrete job list.
"""

from __future__ import annotations

import glob as _glob
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.api.session import Macromodel
from repro.core.config import RunConfig
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization

__all__ = [
    "BatchJob",
    "TouchstoneJob",
    "SynthJob",
    "ModelJob",
    "VALID_TASKS",
    "task_settings",
    "expand_jobs",
    "synth_fleet",
]

#: The single source of truth for pipeline task names: task -> the
#: :class:`~repro.batch.runner.BatchRunner` keyword overrides that task
#: adds on top of the base fit -> characterize pipeline.  ``fit`` and
#: ``check`` run that base pipeline as-is (a fit is only trustworthy
#: with its characterization); ``enforce`` adds the enforcement stage,
#: ``hinf`` the H-infinity norm, ``simulate`` the transient energy
#: witness.  The HTTP service validates and dispatches through this
#: table, so adding a task here is the whole registration.
_TASK_SETTINGS = {
    "fit": {},
    "check": {},
    "enforce": {"enforce": True},
    "hinf": {"hinf": True},
    "simulate": {"simulate": True},
}

#: Pipeline variants a batch/service job may request.
VALID_TASKS = tuple(_TASK_SETTINGS)


def task_settings(task: str) -> dict:
    """Runner keyword overrides of one named task.

    Raises
    ------
    ValueError
        Naming every valid task, so callers (the HTTP 400 path) can
        surface the allowed list verbatim.
    """
    try:
        return dict(_TASK_SETTINGS[task])
    except KeyError:
        raise ValueError(
            f"unknown task {task!r}; valid tasks: {', '.join(VALID_TASKS)}"
        ) from None

ModelLike = Union[PoleResidueModel, SimoRealization]
JobSource = Union[
    "BatchJob", str, Path, PoleResidueModel, SimoRealization, Macromodel
]


@dataclass(frozen=True)
class BatchJob:
    """Base class: one named fleet entry.

    Attributes
    ----------
    name:
        Unique human-readable label used in the
        :class:`~repro.batch.runner.FleetReport`.
    """

    name: str

    def open_session(self, config: Optional[RunConfig]) -> Macromodel:
        """Open the model source as a session (runs inside the worker)."""
        raise NotImplementedError

    @property
    def needs_fit(self) -> bool:
        """True when the session starts from samples (fit stage required)."""
        return True

    def describe(self) -> dict:
        """JSON-serializable description of the job source."""
        return {"kind": type(self).__name__, "name": self.name}


@dataclass(frozen=True)
class TouchstoneJob(BatchJob):
    """A Touchstone file to fit and characterize."""

    path: str = ""

    def open_session(self, config: Optional[RunConfig]) -> Macromodel:
        return Macromodel.from_touchstone(self.path, config=config)

    def describe(self) -> dict:
        return {"kind": "touchstone", "name": self.name, "path": self.path}


@dataclass(frozen=True)
class SynthJob(BatchJob):
    """A seeded synthetic macromodel (no fitting stage).

    The job carries only the generation parameters of
    :func:`~repro.synth.generator.random_macromodel`; the model itself is
    built inside the worker, keeping the cross-process payload tiny.
    """

    order_per_column: int = 10
    num_ports: int = 2
    seed: int = 0
    sigma_target: Optional[float] = 1.05

    def open_session(self, config: Optional[RunConfig]) -> Macromodel:
        from repro.synth.generator import random_macromodel

        model = random_macromodel(
            self.order_per_column,
            self.num_ports,
            seed=self.seed,
            sigma_target=self.sigma_target,
        )
        return Macromodel.from_pole_residue(model, config=config)

    @property
    def needs_fit(self) -> bool:
        return False

    def describe(self) -> dict:
        return {
            "kind": "synth",
            "name": self.name,
            "order_per_column": self.order_per_column,
            "num_ports": self.num_ports,
            "seed": self.seed,
            "sigma_target": self.sigma_target,
        }


@dataclass(frozen=True)
class ModelJob(BatchJob):
    """An in-memory model or session.

    Ships the (picklable) model across the pool; prefer
    :class:`SynthJob` / :class:`TouchstoneJob` for large fleets.
    """

    model: Optional[ModelLike] = None
    session: Optional[Macromodel] = None

    def open_session(self, config: Optional[RunConfig]) -> Macromodel:
        if self.session is not None:
            if config is not None:
                self.session.configure(config)
            return self.session
        return Macromodel.from_pole_residue(self.model, config=config)

    @property
    def needs_fit(self) -> bool:
        # A session started from samples still needs its fit stage.
        return self.session is not None and self.session.model is None

    def describe(self) -> dict:
        target = self.session if self.session is not None else self.model
        return {
            "kind": "model",
            "name": self.name,
            "model": type(target).__name__,
        }


def synth_fleet(
    count: int,
    *,
    order_per_column: int = 10,
    num_ports: int = 2,
    base_seed: int = 0,
    sigma_target: Optional[float] = 1.05,
) -> List[SynthJob]:
    """Build ``count`` seeded synthetic jobs (seeds ``base_seed + k``)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [
        SynthJob(
            name=f"synth-{base_seed + k}",
            order_per_column=order_per_column,
            num_ports=num_ports,
            seed=base_seed + k,
            sigma_target=sigma_target,
        )
        for k in range(count)
    ]


def _unique_name(base: str, taken: set) -> str:
    name = base
    counter = 2
    while name in taken:
        name = f"{base}#{counter}"
        counter += 1
    taken.add(name)
    return name


def expand_jobs(sources: Union[JobSource, Iterable[JobSource]]) -> List[BatchJob]:
    """Normalize mixed job sources into a concrete job list.

    Accepts a single source or an iterable of sources, where each source
    may be a :class:`BatchJob`, a Touchstone path or shell-style glob
    pattern (strings/Paths), an in-memory model, or a
    :class:`~repro.api.Macromodel` session.  Glob patterns expand in
    sorted order; a pattern matching nothing raises so a typo cannot
    silently shrink the fleet.
    """
    if isinstance(sources, (str, Path)) or not isinstance(sources, Iterable):
        sources = [sources]
    jobs: List[BatchJob] = []
    taken: set = set()
    for source in sources:
        if isinstance(source, BatchJob):
            if source.name in taken:
                raise ValueError(
                    f"duplicate job name {source.name!r}; fleet report"
                    " rows are keyed by name"
                )
            jobs.append(source)
            taken.add(source.name)
        elif isinstance(source, (PoleResidueModel, SimoRealization)):
            name = _unique_name(f"model-{len(jobs)}", taken)
            jobs.append(ModelJob(name=name, model=source))
        elif isinstance(source, Macromodel):
            name = _unique_name(f"session-{len(jobs)}", taken)
            jobs.append(ModelJob(name=name, session=source))
        elif isinstance(source, (str, Path)):
            pattern = str(source)
            if _glob.has_magic(pattern):
                matches = sorted(_glob.glob(pattern))
                if not matches:
                    raise FileNotFoundError(
                        f"glob pattern {pattern!r} matched no files"
                    )
            else:
                matches = [pattern]
            for match in matches:
                name = _unique_name(Path(match).stem, taken)
                jobs.append(TouchstoneJob(name=name, path=match))
        else:
            raise TypeError(
                "job sources must be BatchJob, path/glob, model, or"
                f" Macromodel; got {type(source).__name__}"
            )
    if not jobs:
        raise ValueError("no jobs to run (empty source list)")
    return jobs
