"""Batch fleet execution: many macromodels through the whole pipeline.

The workload layer on top of the single-model :class:`~repro.api.Macromodel`
facade: a :class:`BatchRunner` drives fit → check → enforce for a fleet of
models (Touchstone globs, seeded synthetic specs, in-memory models or
sessions) across a bounded process pool with per-job timeouts, returning
one JSON-serializable :class:`FleetReport`.

Entry points::

    from repro.batch import BatchRunner, synth_fleet

    report = BatchRunner(workers=4, timeout=120.0).run("devices/*.s4p")
    report = BatchRunner().run(synth_fleet(10, base_seed=7))

the facade shorthand :meth:`repro.api.Macromodel.map`, and the
``repro batch`` CLI subcommand.
"""

from repro.batch.jobs import (
    VALID_TASKS,
    BatchJob,
    ModelJob,
    SynthJob,
    TouchstoneJob,
    expand_jobs,
    synth_fleet,
    task_settings,
)
from repro.batch.runner import (
    BATCH_BACKENDS,
    BatchRunner,
    FleetReport,
    JobResult,
    JobSettings,
)

__all__ = [
    "BATCH_BACKENDS",
    "BatchJob",
    "BatchRunner",
    "FleetReport",
    "JobResult",
    "JobSettings",
    "ModelJob",
    "SynthJob",
    "TouchstoneJob",
    "VALID_TASKS",
    "expand_jobs",
    "synth_fleet",
    "task_settings",
]
