"""Dynamic band-coverage scheduler (Sec. IV of the paper).

The goal: cover the search band ``[omega_min, omega_max]`` of the imaginary
axis with the union of certified convergence disks, processing each shift
with an independent single-shift iteration so that many shifts can run
concurrently on different threads.

State machine (paper notation in parentheses):

* **tentative** segments, each carrying one tentative shift
  (``theta-tilde``, eq. 11/17) — work nobody has claimed yet;
* **processing** segments (``theta-hat``, eq. 12/19) — claimed by a worker;
* **done** records (``theta``, eq. 29) — completed disks.

Rules implemented:

* initialization into ``N = kappa * T`` equal intervals with tentative
  shifts at interval midpoints, except the extreme intervals whose shifts
  sit exactly on the band edges (Sec. IV.A);
* startup ordering: the band extrema are processed first, then interior
  shifts in index order (eq. 13-15, Fig. 3);
* claim rule: a worker receives a *free* tentative segment — one whose
  interval contains no other tentative or processing shift (eq. 20,
  Fig. 4; guaranteed by construction since segments are disjoint and each
  holds exactly one shift);
* completion with a large radius (disk covers the segment): the segment is
  retired and any tentative shifts inside the disk are **eliminated**
  (eq. 24) — the source of superlinear parallel speedup;
* completion with a small radius: the uncovered remainders of the segment
  become new tentative segments with midpoint shifts (eq. 25-28, Fig. 5);
* termination: no tentative and no processing segments left (eq. 29).

Coverage soundness — one deliberate strengthening of the paper: eq. (24)
deletes any tentative shift *covered by* a completed disk, but a disk can
cover a neighbour's shift while leaving part of the neighbour's interval
exposed.  Deleting the shift verbatim would leave that sliver unswept.
This implementation therefore *trims* partially covered tentative segments
to their uncovered remainder (repositioning the shift to the remainder's
midpoint) and deletes them only when fully covered.  The invariant
maintained at every instant is::

    union(done disks) + union(tentative segments) + union(processing
    segments)  >=  [omega_min, omega_max]

so termination certifies full band coverage.

The scheduler itself is **not** thread-safe; drivers serialize access with
a mutex (the OpenMP-critical-section analogue).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import get_registry as _metrics
from repro.utils.logging import get_logger
from repro.utils.validation import (
    ensure_nonnegative_float,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = ["Segment", "DoneDisk", "BandScheduler"]

_LOG = get_logger("scheduler")


@dataclass
class Segment:
    """One scheduling unit: an interval of the band plus its shift.

    Attributes
    ----------
    index:
        Unique id, increasing in creation order.
    lo, hi:
        Interval bounds ``[I_L, I_U]``.
    center:
        Tentative shift position (``omega``; the complex shift is
        ``j * center``).
    status:
        ``"tentative"``, ``"processing"``, ``"done"``, or ``"eliminated"``.
    """

    index: int
    lo: float
    hi: float
    center: float
    status: str = "tentative"

    @property
    def width(self) -> float:
        """Interval width ``I_U - I_L``."""
        return self.hi - self.lo

    def contains(self, point: float) -> bool:
        """True when ``point`` lies inside the closed interval."""
        return self.lo <= point <= self.hi


@dataclass(frozen=True)
class DoneDisk:
    """A completed convergence disk restricted to the frequency axis."""

    center: float
    radius: float
    segment_index: int


class BandScheduler:
    """Work-queue scheduler implementing the rules of Sec. IV.

    Parameters
    ----------
    omega_min, omega_max:
        Search band (``0 <= omega_min < omega_max``).
    num_threads:
        Expected number of concurrent workers ``T``.
    kappa:
        Initial intervals per worker; ``N = kappa * T`` (>= 2 per paper).
    alpha:
        Initial-radius overlap factor of eq. (23).
    dynamic:
        When ``False`` the cross-segment rules (tentative-shift
        elimination/trimming, eq. 24) are disabled: every initially
        scheduled shift is processed even if an earlier disk already
        covers it, and only each segment's *own* disk shrinks its
        remainder.  This models the static pre-distributed grid the paper
        rejects, and exists for the scheduler ablation benchmark.
    min_width_rel:
        Segments narrower than ``min_width_rel * band_width`` are dropped
        instead of re-scheduled (guard against infinite subdivision).
    index_offset:
        First segment index handed out.  Band-sharding drivers give each
        shard's scheduler a disjoint index range so that merged shift
        records (and the per-segment random streams keyed by index) stay
        globally unique.

    Raises
    ------
    ValueError
        On an empty or negative band.
    """

    def __init__(
        self,
        omega_min: float,
        omega_max: float,
        num_threads: int,
        *,
        kappa: int = 2,
        alpha: float = 1.05,
        dynamic: bool = True,
        min_width_rel: float = 1e-12,
        index_offset: int = 0,
    ) -> None:
        omega_min = ensure_nonnegative_float(omega_min, "omega_min")
        omega_max = ensure_positive_float(omega_max, "omega_max")
        num_threads = ensure_positive_int(num_threads, "num_threads")
        kappa = ensure_positive_int(kappa, "kappa")
        if omega_max <= omega_min:
            raise ValueError(
                f"empty band: omega_max ({omega_max}) <= omega_min ({omega_min})"
            )
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        self.omega_min = omega_min
        self.omega_max = omega_max
        self.alpha = float(alpha)
        self.dynamic = bool(dynamic)
        self._min_width = min_width_rel * (omega_max - omega_min)

        if index_offset < 0:
            raise ValueError(f"index_offset must be >= 0, got {index_offset}")
        self._segments: Dict[int, Segment] = {}
        self._queue: Deque[int] = deque()
        self._done: List[DoneDisk] = []
        self._covered: List[Tuple[float, float]] = []
        self._next_index = int(index_offset)
        self.eliminated = 0
        self.trimmed = 0

        num_intervals = max(kappa * num_threads, 2)
        width = (omega_max - omega_min) / num_intervals
        indices = []
        for nu in range(num_intervals):
            lo = omega_min + nu * width
            hi = omega_min + (nu + 1) * width
            if nu == 0:
                center = lo
            elif nu == num_intervals - 1:
                center = hi
            else:
                center = 0.5 * (lo + hi)
            indices.append(self._new_segment(lo, hi, center))
        # Startup ordering (eq. 13-15): extrema first, then interior.
        order = [indices[0], indices[-1]] + indices[1:-1]
        self._queue.extend(order)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def band(self) -> Tuple[float, float]:
        """The search band ``[omega_min, omega_max]``."""
        return (self.omega_min, self.omega_max)

    @property
    def done_disks(self) -> List[DoneDisk]:
        """Completed disks, in completion order."""
        return list(self._done)

    def tentative_count(self) -> int:
        """Number of unclaimed tentative segments."""
        return sum(
            1
            for i in self._queue
            if i in self._segments and self._segments[i].status == "tentative"
        )

    def processing_count(self) -> int:
        """Number of segments currently claimed by workers."""
        return sum(1 for s in self._segments.values() if s.status == "processing")

    def is_finished(self) -> bool:
        """Termination test of eq. (29): nothing tentative, nothing running."""
        return self.tentative_count() == 0 and self.processing_count() == 0

    def covered_union(self) -> List[Tuple[float, float]]:
        """Disjoint sorted union of completed disks clipped to the band."""
        return list(self._covered)

    @property
    def min_width(self) -> float:
        """Absolute width below which segments/gaps are considered dust."""
        return self._min_width

    def uncovered(self, *, ignore_dust: bool = False) -> List[Tuple[float, float]]:
        """Portions of the band not yet covered by completed disks.

        With ``ignore_dust=True`` gaps narrower than :attr:`min_width` are
        suppressed (they are below the subdivision guard and cannot be
        scheduled; round-off in the interval arithmetic produces them).
        """
        gaps = self._subtract_covered(self.omega_min, self.omega_max)
        if ignore_dust:
            gaps = [g for g in gaps if g[1] - g[0] > self._min_width]
        return gaps

    # ------------------------------------------------------------------
    # Worker interface
    # ------------------------------------------------------------------
    def next_task(self) -> Optional[Segment]:
        """Claim the next free tentative segment (None when queue empty).

        The returned segment is promoted to the processing state; the
        caller must eventually call :meth:`complete` for it.
        """
        while self._queue:
            index = self._queue.popleft()
            segment = self._segments.get(index)
            if segment is None or segment.status != "tentative":
                continue  # eliminated while queued
            segment.status = "processing"
            _metrics().count("eigensweep.segments_claimed")
            _LOG.debug(
                "claim segment %d [%g, %g] shift %g",
                index,
                segment.lo,
                segment.hi,
                segment.center,
            )
            return segment
        return None

    def initial_radius(self, segment: Segment) -> float:
        """Initial disk radius guess of eq. (23): ``alpha * width / 2``."""
        return self.alpha * 0.5 * max(segment.width, self._min_width)

    def complete(self, segment: Segment, center: float, radius: float) -> None:
        """Record a finished single-shift iteration and update the queues.

        Parameters
        ----------
        segment:
            The segment returned by :meth:`next_task`.
        center:
            Actual shift position used (may carry a tiny nudge relative to
            the segment's tentative center).
        radius:
            Certified disk radius (> 0).
        """
        if segment.status != "processing":
            raise ValueError(
                f"segment {segment.index} is {segment.status!r}, not processing"
            )
        if radius <= 0.0:
            raise ValueError(f"radius must be positive, got {radius}")
        segment.status = "done"
        _metrics().count("eigensweep.segments_completed")
        self._done.append(
            DoneDisk(center=center, radius=radius, segment_index=segment.index)
        )
        lo_cov = center - radius
        hi_cov = center + radius
        self._add_covered(lo_cov, hi_cov)

        # Remainder of the completed segment (eq. 25-28 when the radius
        # shrank; empty when the disk covers the whole interval).
        for piece_lo, piece_hi in self._clip_remainder(segment, lo_cov, hi_cov):
            self._schedule_piece(piece_lo, piece_hi)

        if self.dynamic:
            self._prune_tentative()

    def register_external_disk(
        self, center: float, radius: float, segment_index: int
    ) -> None:
        """Record a disk produced outside the queue discipline.

        Used by the classical bisection driver, which chooses its own shift
        positions but still relies on this class for coverage bookkeeping.
        """
        if radius <= 0.0:
            raise ValueError(f"radius must be positive, got {radius}")
        self._done.append(
            DoneDisk(center=center, radius=radius, segment_index=segment_index)
        )
        self._add_covered(center - radius, center + radius)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_segment(self, lo: float, hi: float, center: float) -> int:
        index = self._next_index
        self._next_index += 1
        self._segments[index] = Segment(index=index, lo=lo, hi=hi, center=center)
        return index

    def _schedule_piece(self, lo: float, hi: float) -> None:
        """Queue a new tentative segment with a midpoint shift (eq. 26-27)."""
        if hi - lo <= self._min_width:
            return
        if self.dynamic:
            pieces = self._subtract_covered(lo, hi)
        else:
            pieces = [(lo, hi)]
        for plo, phi in pieces:
            if phi - plo <= self._min_width:
                continue
            index = self._new_segment(plo, phi, 0.5 * (plo + phi))
            self._queue.append(index)
            _LOG.debug("schedule segment %d [%g, %g]", index, plo, phi)

    def _clip_remainder(
        self, segment: Segment, lo_cov: float, hi_cov: float
    ) -> List[Tuple[float, float]]:
        """Parts of ``segment`` outside the disk ``[lo_cov, hi_cov]``."""
        pieces = []
        if lo_cov > segment.lo:
            pieces.append((segment.lo, min(segment.hi, lo_cov)))
        if hi_cov < segment.hi:
            pieces.append((max(segment.lo, hi_cov), segment.hi))
        return pieces

    def _prune_tentative(self) -> None:
        """Eliminate or trim tentative segments overlapped by done disks.

        Implements eq. (24) plus the coverage-preserving trim described in
        the module docstring.
        """
        for index in list(self._queue):
            segment = self._segments.get(index)
            if segment is None or segment.status != "tentative":
                continue
            pieces = self._subtract_covered(segment.lo, segment.hi)
            if len(pieces) == 1 and pieces[0] == (segment.lo, segment.hi):
                continue  # untouched
            # Remove the old segment from play.
            segment.status = "eliminated"
            del self._segments[index]
            kept_any = False
            for plo, phi in pieces:
                if phi - plo <= self._min_width:
                    continue
                new_index = self._new_segment(plo, phi, 0.5 * (plo + phi))
                self._queue.append(new_index)
                kept_any = True
            if kept_any:
                self.trimmed += 1
                _metrics().count("eigensweep.segments_trimmed")
                _LOG.debug("trim segment %d", index)
            else:
                self.eliminated += 1
                _metrics().count("eigensweep.shifts_eliminated")
                _LOG.debug("eliminate segment %d (covered)", index)
        # Compact the queue: drop ids that no longer exist.
        self._queue = deque(
            i
            for i in self._queue
            if i in self._segments and self._segments[i].status == "tentative"
        )

    def _add_covered(self, lo: float, hi: float) -> None:
        """Merge ``[lo, hi]`` (clipped to the band) into the covered union."""
        lo = max(lo, self.omega_min)
        hi = min(hi, self.omega_max)
        if hi <= lo:
            return
        merged: List[Tuple[float, float]] = []
        inserted = False
        for seg_lo, seg_hi in self._covered:
            if seg_hi < lo:
                merged.append((seg_lo, seg_hi))
            elif seg_lo > hi:
                if not inserted:
                    merged.append((lo, hi))
                    inserted = True
                merged.append((seg_lo, seg_hi))
            else:
                lo = min(lo, seg_lo)
                hi = max(hi, seg_hi)
        if not inserted:
            merged.append((lo, hi))
        merged.sort()
        self._covered = merged

    def _subtract_covered(self, lo: float, hi: float) -> List[Tuple[float, float]]:
        """Return the parts of ``[lo, hi]`` not in the covered union."""
        pieces: List[Tuple[float, float]] = []
        cursor = lo
        for seg_lo, seg_hi in self._covered:
            if seg_hi <= cursor:
                continue
            if seg_lo >= hi:
                break
            if seg_lo > cursor:
                pieces.append((cursor, seg_lo))
            cursor = max(cursor, seg_hi)
            if cursor >= hi:
                break
        if cursor < hi:
            pieces.append((cursor, hi))
        return pieces

    def __repr__(self) -> str:
        return (
            f"BandScheduler(band=[{self.omega_min:.4g}, {self.omega_max:.4g}],"
            f" tentative={self.tentative_count()},"
            f" processing={self.processing_count()}, done={len(self._done)},"
            f" eliminated={self.eliminated}, dynamic={self.dynamic})"
        )
