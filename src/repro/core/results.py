"""Typed result containers with per-shift provenance.

The solvers return rich result objects so that benchmarks and tests can
inspect *how* the answer was produced: which shifts ran, what disk each
certified, how much work was spent, and how the dynamic scheduler pruned
the tentative queue (the source of the paper's superlinear speedups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.serialization import (
    complex_array_from_jsonable,
    complex_from_jsonable,
    float_array_from_jsonable,
    to_jsonable,
)

__all__ = ["SingleShiftResult", "ShiftRecord", "SolveResult"]


@dataclass(frozen=True)
class SingleShiftResult:
    """Output of one single-shift iteration ``S(theta, rho0)`` (eq. 9).

    Attributes
    ----------
    shift:
        The complex shift ``theta`` (on the imaginary axis for band sweeps).
    radius:
        Certified disk radius ``rho``: all Hamiltonian eigenvalues with
        ``|lambda - theta| < rho`` are listed in ``eigenvalues``.
    eigenvalues:
        Complex eigenvalues inside the certified disk (may be empty).
    restarts:
        Number of Arnoldi restarts performed.
    converged:
        False when the restart budget ran out before the disk could be
        certified at the requested radius (the returned radius is then the
        largest radius that *could* be certified).
    applies:
        Operator applications consumed by this shift alone (shift-invert
        plus direct Hamiltonian matvecs) — the per-task work measure used
        by the multicore makespan projection in the benchmarks.
    """

    shift: complex
    radius: float
    eigenvalues: np.ndarray
    restarts: int
    converged: bool
    applies: int = 0

    def covers(self, point: complex, *, slack: float = 0.0) -> bool:
        """True when ``point`` lies inside the certified disk."""
        return abs(point - self.shift) <= self.radius + slack

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of this shift result."""
        return {
            "shift": to_jsonable(complex(self.shift)),
            "radius": float(self.radius),
            "eigenvalues": to_jsonable(self.eigenvalues),
            "restarts": int(self.restarts),
            "converged": bool(self.converged),
            "applies": int(self.applies),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SingleShiftResult":
        """Rebuild a shift result from a :meth:`to_dict` payload."""
        return cls(
            shift=complex_from_jsonable(payload["shift"]),
            radius=float(payload["radius"]),
            eigenvalues=complex_array_from_jsonable(payload["eigenvalues"]),
            restarts=int(payload["restarts"]),
            converged=bool(payload["converged"]),
            applies=int(payload.get("applies", 0)),
        )


@dataclass(frozen=True)
class ShiftRecord:
    """Scheduler-level record of one processed shift.

    Attributes
    ----------
    index:
        Global shift index (order of promotion to the processing state).
    center:
        Position ``omega`` on the imaginary axis (the shift is ``j*omega``).
    interval:
        The embedding interval ``[I_L, I_U]`` the shift was responsible for.
    result:
        The associated :class:`SingleShiftResult`.
    worker:
        Identifier of the thread that processed the shift.
    elapsed:
        Wall-clock seconds spent in the single-shift iteration.
    """

    index: int
    center: float
    interval: Tuple[float, float]
    result: SingleShiftResult
    worker: int
    elapsed: float

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of this scheduler record."""
        return {
            "index": int(self.index),
            "center": float(self.center),
            "interval": [float(self.interval[0]), float(self.interval[1])],
            "result": self.result.to_dict(),
            "worker": int(self.worker),
            "elapsed": float(self.elapsed),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShiftRecord":
        """Rebuild a scheduler record from a :meth:`to_dict` payload."""
        return cls(
            index=int(payload["index"]),
            center=float(payload["center"]),
            interval=(float(payload["interval"][0]), float(payload["interval"][1])),
            result=SingleShiftResult.from_dict(payload["result"]),
            worker=int(payload["worker"]),
            elapsed=float(payload["elapsed"]),
        )


@dataclass(frozen=True)
class SolveResult:
    """Complete output of a band sweep (serial or parallel).

    Attributes
    ----------
    omegas:
        Sorted non-negative crossing frequencies (imaginary parts of the
        purely imaginary Hamiltonian eigenvalues) — the set ``Omega`` of
        the paper restricted to the upper half axis.
    eigenvalues:
        All distinct eigenvalues discovered inside the certified disks
        (imaginary and otherwise) — useful for diagnostics.
    band:
        The swept interval ``[omega_min, omega_max]``.
    shifts:
        Per-shift provenance records, in completion order.
    work:
        Snapshot of the work counters (operator applies, Arnoldi steps,
        restarts, shifts processed/eliminated, small solves).
    elapsed:
        Wall-clock seconds for the whole sweep.
    num_threads:
        Number of worker threads used (1 for serial drivers).
    strategy:
        Scheduling strategy identifier (``"queue"``, ``"bisection"``,
        ``"static"``).
    """

    omegas: np.ndarray
    eigenvalues: np.ndarray
    band: Tuple[float, float]
    shifts: List[ShiftRecord]
    work: Dict[str, int]
    elapsed: float
    num_threads: int
    strategy: str

    @property
    def num_crossings(self) -> int:
        """Number of distinct non-negative crossing frequencies found."""
        return int(self.omegas.size)

    @property
    def is_passive_candidate(self) -> bool:
        """True when no imaginary eigenvalues were found (Omega empty).

        By the Hamiltonian test (Sec. II) an empty Omega certifies
        passivity given the strict asymptotic condition (eq. 4).
        """
        return self.omegas.size == 0

    @property
    def shifts_processed(self) -> int:
        """Number of completed single-shift iterations."""
        return len(self.shifts)

    def coverage_gaps(self, *, slack_rel: float = 1e-9) -> List[Tuple[float, float]]:
        """Sub-intervals of the band not covered by any certified disk.

        An empty list certifies that the union of disks covers the band —
        the invariant guaranteeing no imaginary eigenvalue was missed.
        """
        lo, hi = self.band
        slack = slack_rel * max(1.0, hi - lo, abs(hi))
        segments = sorted(
            (
                (rec.result.shift.imag - rec.result.radius,
                 rec.result.shift.imag + rec.result.radius)
                for rec in self.shifts
            ),
        )
        gaps: List[Tuple[float, float]] = []
        cursor = lo
        for seg_lo, seg_hi in segments:
            if seg_lo > cursor + slack:
                gaps.append((cursor, seg_lo))
            cursor = max(cursor, seg_hi)
            if cursor >= hi:
                break
        if cursor < hi - slack:
            gaps.append((cursor, hi))
        return gaps

    def to_dict(self, *, include_shifts: bool = True) -> dict:
        """JSON-serializable dictionary of the sweep outcome.

        Parameters
        ----------
        include_shifts:
            Include the per-shift provenance records (may be large);
            the aggregate fields are always present.
        """
        payload = {
            "omegas": to_jsonable(self.omegas),
            "eigenvalues": to_jsonable(self.eigenvalues),
            "band": [float(self.band[0]), float(self.band[1])],
            "work": {str(k): int(v) for k, v in self.work.items()},
            "elapsed": float(self.elapsed),
            "num_threads": int(self.num_threads),
            "strategy": self.strategy,
            "num_crossings": self.num_crossings,
            "is_passive_candidate": self.is_passive_candidate,
            "shifts_processed": self.shifts_processed,
        }
        if include_shifts:
            payload["shifts"] = [record.to_dict() for record in self.shifts]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SolveResult":
        """Rebuild a sweep result from a :meth:`to_dict` payload.

        Derived fields (``num_crossings``, ``is_passive_candidate``,
        ``shifts_processed``) are recomputed, not read back; a payload
        written without ``include_shifts`` rebuilds with an empty
        provenance list.
        """
        return cls(
            omegas=float_array_from_jsonable(payload["omegas"]),
            eigenvalues=complex_array_from_jsonable(payload["eigenvalues"]),
            band=(float(payload["band"][0]), float(payload["band"][1])),
            shifts=[
                ShiftRecord.from_dict(record)
                for record in payload.get("shifts", [])
            ],
            work={str(k): int(v) for k, v in payload.get("work", {}).items()},
            elapsed=float(payload["elapsed"]),
            num_threads=int(payload["num_threads"]),
            strategy=str(payload["strategy"]),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"band=[{self.band[0]:.4g}, {self.band[1]:.4g}]"
            f" crossings={self.num_crossings}"
            f" shifts={self.shifts_processed}"
            f" eliminated={self.work.get('shifts_eliminated', 0)}"
            f" applies={self.work.get('operator_applies', 0)}"
            f" elapsed={self.elapsed:.3f}s threads={self.num_threads}"
        )
