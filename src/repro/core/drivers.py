"""Shared plumbing for the serial and parallel sweep drivers.

Both drivers do the same per-shift work (run a single-shift iteration,
record provenance) and the same post-processing (deduplicate eigenvalues
found by overlapping disks, filter the purely imaginary ones, snapshot the
work counters); only the scheduling loop differs.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.options import SolverOptions
from repro.core.results import ShiftRecord, SolveResult
from repro.core.scheduler import BandScheduler, Segment
from repro.core.single_shift import SingleShiftSolver, estimate_spectral_bound
from repro.hamiltonian.operator import HamiltonianOperator
from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.realization import pole_residue_to_simo
from repro.macromodel.simo import SimoRealization
from repro.utils.rng import RandomStream
from repro.utils.timing import WorkCounter

__all__ = [
    "ModelInput",
    "prepare_operator",
    "resolve_band",
    "run_segment",
    "dedup_eigenvalues",
    "collect_result",
]

ModelInput = Union[PoleResidueModel, SimoRealization]


def prepare_operator(
    model: ModelInput, representation: str
) -> Tuple[SimoRealization, HamiltonianOperator, WorkCounter]:
    """Normalize the model input and build the instrumented operator."""
    if isinstance(model, PoleResidueModel):
        simo = pole_residue_to_simo(model)
    elif isinstance(model, SimoRealization):
        simo = model
    else:
        raise TypeError(
            "model must be a PoleResidueModel or SimoRealization,"
            f" got {type(model).__name__}"
        )
    if simo.order == 0:
        raise ValueError("cannot characterize a zero-order model")
    if not simo.is_stable():
        raise ValueError(
            "model must be strictly stable (all poles in the open left half"
            " plane) for the Hamiltonian passivity test"
        )
    work = WorkCounter()
    op = HamiltonianOperator(simo, representation=representation, work=work)
    return simo, op, work


def resolve_band(
    op: HamiltonianOperator,
    omega_min: float,
    omega_max: Optional[float],
    options: SolverOptions,
    stream: RandomStream,
) -> Tuple[float, float]:
    """Determine the search band, estimating the upper edge if needed.

    Per Sec. IV.A the upper bound defaults to (a margin above) the
    magnitude of the largest Hamiltonian eigenvalue, obtained with a
    shift-free Arnoldi run.
    """
    omega_min = float(omega_min)
    if omega_min < 0.0:
        raise ValueError(f"omega_min must be >= 0, got {omega_min}")
    if omega_max is None:
        estimate = estimate_spectral_bound(
            op, stream=stream, margin=options.omega_margin
        )
        floor = max(1e-6, 1e-3 * op.simo.spectral_radius_bound())
        omega_max = max(estimate, floor)
    omega_max = float(omega_max)
    if omega_max <= omega_min:
        raise ValueError(
            f"empty band: omega_max ({omega_max}) <= omega_min ({omega_min})"
        )
    return omega_min, omega_max


def run_segment(
    solver: SingleShiftSolver,
    scheduler: BandScheduler,
    segment: Segment,
    root_stream: RandomStream,
    worker_id: int,
) -> ShiftRecord:
    """Run the single-shift iteration for one claimed segment.

    Pure compute — no scheduler mutation; the caller applies
    ``scheduler.complete`` under its own synchronization.
    """
    rho0 = scheduler.initial_radius(segment)
    stream = root_stream.spawn(key=segment.index)
    started = time.perf_counter()
    result = solver.run(segment.center, rho0, stream)
    elapsed = time.perf_counter() - started
    return ShiftRecord(
        index=segment.index,
        center=segment.center,
        interval=(segment.lo, segment.hi),
        result=result,
        worker=worker_id,
        elapsed=elapsed,
    )


def dedup_eigenvalues(eigenvalues: np.ndarray, tol: float) -> np.ndarray:
    """Merge duplicate eigenvalues reported by overlapping disks.

    Greedy clustering on the sorted-by-imaginary-part list; two values are
    duplicates when within ``tol`` of each other.
    """
    if eigenvalues.size == 0:
        return eigenvalues
    order = np.lexsort((eigenvalues.real, eigenvalues.imag))
    sorted_vals = eigenvalues[order]
    kept: List[complex] = []
    for lam in sorted_vals:
        if kept and abs(lam - kept[-1]) <= tol:
            continue
        # Check against all recent cluster representatives with close
        # imaginary parts (real parts may interleave after lexsort).
        duplicate = False
        for known in reversed(kept):
            if lam.imag - known.imag > tol:
                break
            if abs(lam - known) <= tol:
                duplicate = True
                break
        if not duplicate:
            kept.append(complex(lam))
    return np.asarray(kept, dtype=complex)


def collect_result(
    op: HamiltonianOperator,
    scheduler: BandScheduler,
    records: List[ShiftRecord],
    options: SolverOptions,
    elapsed: float,
    num_threads: int,
    strategy: str,
) -> SolveResult:
    """Assemble the final :class:`SolveResult` from per-shift records."""
    work = op.work
    if work is not None:
        work.add(shifts_eliminated=scheduler.eliminated)
    scale = max(1.0, op.simo.spectral_radius_bound())

    all_eigs = (
        np.concatenate([rec.result.eigenvalues for rec in records])
        if records
        else np.empty(0, dtype=complex)
    )
    tol = options.dedup_rtol * max(scale, scheduler.omega_max)
    distinct = dedup_eigenvalues(all_eigs, tol)

    imag_tol = (
        options.imag_rtol * np.maximum(scale, np.abs(distinct))
        if distinct.size
        else None
    )
    if distinct.size:
        mask = np.abs(distinct.real) <= imag_tol
        omegas = distinct[mask].imag
        slack = options.imag_rtol * scale
        in_band = (omegas >= scheduler.omega_min - slack) & (
            omegas <= scheduler.omega_max + slack
        )
        omegas = np.sort(omegas[in_band])
        omegas = omegas[omegas >= 0.0] if scheduler.omega_min == 0.0 else omegas
    else:
        omegas = np.empty(0, dtype=float)

    return SolveResult(
        omegas=omegas,
        eigenvalues=distinct,
        band=scheduler.band,
        shifts=list(records),
        work=work.snapshot() if work is not None else {},
        elapsed=float(elapsed),
        num_threads=int(num_threads),
        strategy=strategy,
    )
