"""Single-thread sweep drivers.

Two strategies are provided:

* ``"bisection"`` — the classical sequential algorithm of ref. [9]
  (Fig. 2 of the paper): process the band edges first, then repeatedly
  place a shift in the middle of the widest uncovered gap (eq. 10) until
  the covered disks exhaust the band.  Inherently sequential: every step
  needs the radii of previously completed disks.  This is the ``tau_1``
  reference of Table I.

* ``"queue"`` — the dynamic scheduler of Sec. IV driven by a single
  worker; useful to isolate scheduler overhead from parallel speedup.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.drivers import (
    ModelInput,
    collect_result,
    prepare_operator,
    resolve_band,
    run_segment,
)
from repro.core.options import SolverOptions
from repro.core.results import ShiftRecord, SolveResult
from repro.core.scheduler import BandScheduler, Segment
from repro.core.single_shift import SingleShiftSolver
from repro.utils.rng import RandomStream
from repro.utils.validation import ensure_choice

__all__ = ["solve_serial"]

#: Low-level scheduling loops this driver implements.
SERIAL_STRATEGIES = ("bisection", "queue")


def solve_serial(
    model: ModelInput,
    *,
    representation: str = "scattering",
    strategy: str = "bisection",
    omega_min: float = 0.0,
    omega_max: Optional[float] = None,
    options: Optional[SolverOptions] = None,
) -> SolveResult:
    """Find all imaginary Hamiltonian eigenvalues with one thread.

    Parameters
    ----------
    model:
        Pole/residue model or structured SIMO realization.
    representation:
        ``"scattering"`` or ``"immittance"``.
    strategy:
        ``"bisection"`` (classic, default) or ``"queue"`` (dynamic
        scheduler with one worker).
    omega_min, omega_max:
        Search band; ``omega_max=None`` triggers the automatic spectral
        bound estimation of Sec. IV.A.
    options:
        Solver options (defaults used when omitted).

    Returns
    -------
    SolveResult
    """
    options = options if options is not None else SolverOptions()
    ensure_choice(strategy, "serial strategy", SERIAL_STRATEGIES)
    simo, op, work = prepare_operator(model, representation)
    root_stream = RandomStream(options.seed)
    omega_min, omega_max = resolve_band(
        op, omega_min, omega_max, options, root_stream.spawn(key=0x5EED)
    )
    solver = SingleShiftSolver(op, options)

    started = time.perf_counter()
    if strategy == "queue":
        scheduler = BandScheduler(
            omega_min,
            omega_max,
            num_threads=1,
            kappa=options.kappa,
            alpha=options.alpha,
            min_width_rel=options.min_interval_width,
        )
        records = _drain_queue(solver, scheduler, root_stream)
    else:
        scheduler, records = _run_bisection(
            solver, omega_min, omega_max, options, root_stream
        )
    elapsed = time.perf_counter() - started

    return collect_result(
        op, scheduler, records, options, elapsed, num_threads=1, strategy=strategy
    )


def _drain_queue(
    solver: SingleShiftSolver,
    scheduler: BandScheduler,
    root_stream: RandomStream,
) -> List[ShiftRecord]:
    """Process the dynamic scheduler to exhaustion with a single worker."""
    records: List[ShiftRecord] = []
    while True:
        segment = scheduler.next_task()
        if segment is None:
            break
        record = run_segment(solver, scheduler, segment, root_stream, worker_id=0)
        scheduler.complete(segment, record.result.shift.imag, record.result.radius)
        if solver.hamiltonian.work is not None:
            solver.hamiltonian.work.add(shifts_processed=1)
        records.append(record)
    return records


def _run_bisection(
    solver: SingleShiftSolver,
    omega_min: float,
    omega_max: float,
    options: SolverOptions,
    root_stream: RandomStream,
) -> tuple:
    """Classical sequential bisection (Fig. 2) over a coverage tracker.

    A :class:`BandScheduler` is used purely as the coverage bookkeeper: we
    bypass its queue and synthesize segments at the bisection points.  The
    band edges are processed first (shifts at ``omega_min`` and
    ``omega_max``); afterwards each step claims the widest uncovered gap
    and shifts its midpoint (eq. 10).
    """
    scheduler = BandScheduler(
        omega_min,
        omega_max,
        num_threads=1,
        kappa=options.kappa,
        alpha=options.alpha,
        min_width_rel=options.min_interval_width,
    )
    # Drain the startup queue entirely — we schedule manually below.
    while scheduler.next_task() is not None:
        pass

    records: List[ShiftRecord] = []
    band_width = omega_max - omega_min
    min_width = options.min_interval_width * band_width
    # Initial edge shifts with a radius guess matching the startup grid.
    initial_width = band_width / max(2, 2 * options.kappa)
    pending = [
        (omega_min, omega_min, omega_min + initial_width),
        (omega_max, omega_max - initial_width, omega_max),
    ]
    index = 10_000_000  # synthetic ids, disjoint from scheduler's counter

    while pending:
        center, lo, hi = pending.pop(0)
        segment = Segment(index=index, lo=lo, hi=hi, center=center, status="processing")
        index += 1
        record = run_segment(solver, scheduler, segment, root_stream, worker_id=0)
        # complete() requires queue-owned segments; the bisection loop owns
        # its shift placement, so register coverage directly.
        scheduler.register_external_disk(
            center=record.result.shift.imag,
            radius=record.result.radius,
            segment_index=record.index,
        )
        if solver.hamiltonian.work is not None:
            solver.hamiltonian.work.add(shifts_processed=1)
        records.append(record)

        if not pending:
            gaps = [g for g in scheduler.uncovered() if g[1] - g[0] > min_width]
            if gaps:
                widest = max(gaps, key=lambda g: g[1] - g[0])
                pending.append(
                    (0.5 * (widest[0] + widest[1]), widest[0], widest[1])
                )
    return scheduler, records
