"""Arnoldi machinery: Krylov factorization, Ritz extraction, deflation.

The single-shift iteration of Sec. III builds a ``d``-dimensional orthogonal
basis of the Krylov subspace of the shift-inverted Hamiltonian (eq. 8),
``d`` much smaller than the matrix order 2n (the paper uses ``d = 60``).
This module implements the factorization with:

* classical Gram-Schmidt with re-orthogonalization ("twice is enough");
* explicit deflation — every generated vector is kept orthogonal to a set
  of *locked* vectors spanning already-converged eigenvector directions, so
  restarts discover new eigenvalues instead of reconverging old ones;
* breakdown handling — a vanishing remainder means the Krylov space closed
  on an invariant subspace, which is a success condition, not an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.utils.linalg import orthonormalize_against
from repro.utils.timing import WorkCounter

__all__ = ["ArnoldiFactorization", "RitzPair", "build_arnoldi", "ritz_pairs"]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class ArnoldiFactorization:
    """Result of a (possibly early-terminated) Arnoldi run.

    Satisfies ``OP V_k = V_k H_k + h_{k+1,k} v_{k+1} e_k^T`` restricted to
    the orthogonal complement of the locked subspace.

    Attributes
    ----------
    basis:
        ``(n, k)`` orthonormal Krylov basis ``V_k``.
    hessenberg:
        ``(k, k)`` upper Hessenberg projection ``H_k``.
    next_vector:
        The ``(k+1)``-th basis vector, or ``None`` on breakdown.
    residual_coupling:
        The scalar ``h_{k+1,k}`` (0.0 on breakdown).
    breakdown:
        True when the Krylov space became invariant before reaching the
        requested dimension.
    deflation_coeffs:
        ``(m, k)`` matrix ``F`` with ``F[:, j] = Q^H (OP v_j)`` — the
        locked-subspace components removed from each operator application
        during explicit deflation (``m`` = number of locked vectors).
        These let callers reconstruct full-space eigenvectors from deflated
        Ritz vectors: for a Ritz pair ``(mu, y)`` the correction is
        ``t = (mu I - Q^H OP Q)^{-1} F y`` and the full eigenvector is
        ``V y + Q t``.
    """

    basis: np.ndarray
    hessenberg: np.ndarray
    next_vector: Optional[np.ndarray]
    residual_coupling: float
    breakdown: bool
    deflation_coeffs: np.ndarray

    @property
    def dimension(self) -> int:
        """Achieved Krylov dimension k."""
        return int(self.basis.shape[1])


@dataclass(frozen=True)
class RitzPair:
    """One Ritz approximation extracted from the Hessenberg projection.

    Attributes
    ----------
    value:
        Ritz value ``mu`` (eigenvalue estimate of the *iterated* operator —
        for shift-invert runs the corresponding original eigenvalue is
        ``theta + 1/mu``).
    vector:
        Ritz vector in the full space (unit norm) — for deflated runs this
        lives in the orthogonal complement of the locked subspace.
    residual_estimate:
        The classical cheap bound ``|h_{k+1,k}| * |last component of the
        Hessenberg eigenvector|`` on ``||OP x - mu x||``.
    hess_vector:
        The underlying unit eigenvector ``y`` of the Hessenberg matrix;
        needed for the locked-subspace correction ``t = (mu I -
        Q^H OP Q)^{-1} F y``.
    """

    value: complex
    vector: np.ndarray
    residual_estimate: float
    hess_vector: np.ndarray


def build_arnoldi(
    op: Operator,
    start: np.ndarray,
    max_dim: int,
    *,
    locked: Optional[np.ndarray] = None,
    work: Optional[WorkCounter] = None,
) -> ArnoldiFactorization:
    """Build an Arnoldi factorization of ``op`` started at ``start``.

    Parameters
    ----------
    op:
        Linear operator (callable ``x -> OP x``).
    start:
        Start vector (any nonzero vector; normalized internally and
        orthogonalized against ``locked``).
    max_dim:
        Target Krylov dimension ``d`` (capped at the space dimension).
    locked:
        Optional ``(n, m)`` orthonormal matrix of locked directions; the
        factorization lives in their orthogonal complement (explicit
        deflation of converged eigenvectors).
    work:
        Optional counter; increments ``arnoldi_steps`` per basis extension
        (operator applications are counted by the operator itself).

    Raises
    ------
    ValueError
        If the start vector is zero or lies entirely inside the locked
        subspace.
    """
    start = np.asarray(start, dtype=complex)
    n = start.shape[0]
    if locked is None:
        locked = np.zeros((n, 0), dtype=complex)
    locked = np.asarray(locked, dtype=complex)
    max_dim = int(min(max_dim, n - locked.shape[1]))
    if max_dim <= 0:
        raise ValueError("no room left for a Krylov basis outside the locked space")

    _, norm0, v0 = orthonormalize_against(locked, start)
    if v0 is None or norm0 == 0.0:
        raise ValueError("start vector vanishes after deflation against locked space")

    basis = np.zeros((n, max_dim), dtype=complex)
    hess = np.zeros((max_dim + 1, max_dim), dtype=complex)
    defl = np.zeros((locked.shape[1], max_dim), dtype=complex)
    basis[:, 0] = v0
    k = 0
    next_vector: Optional[np.ndarray] = None
    coupling = 0.0
    breakdown = False

    while k < max_dim:
        w = op(basis[:, k])
        # Deflate against locked directions (plain projection, two passes to
        # control floating-point leakage), then orthogonalize in-basis.
        # The removed components Q^H (OP v_k) are recorded so callers can
        # reconstruct full-space eigenvectors from deflated Ritz vectors.
        if locked.shape[1]:
            f1 = locked.conj().T @ w
            w = w - locked @ f1
            f2 = locked.conj().T @ w
            w = w - locked @ f2
            defl[:, k] = f1 + f2
        coeffs, norm, q = orthonormalize_against(basis[:, : k + 1], w)
        hess[: k + 1, k] = coeffs
        hess[k + 1, k] = norm
        if work is not None:
            work.add(arnoldi_steps=1)
        if q is None:
            breakdown = True
            coupling = 0.0
            k += 1
            break
        if k + 1 < max_dim:
            basis[:, k + 1] = q
        else:
            next_vector = q
            coupling = norm
        k += 1

    return ArnoldiFactorization(
        basis=basis[:, :k],
        hessenberg=hess[:k, :k],
        next_vector=next_vector,
        residual_coupling=float(coupling if not breakdown else 0.0),
        breakdown=breakdown,
        deflation_coeffs=defl[:, :k],
    )


def ritz_pairs(
    fact: ArnoldiFactorization,
    *,
    max_pairs: Optional[int] = None,
    sort_by: str = "magnitude",
) -> List[RitzPair]:
    """Extract Ritz pairs from an Arnoldi factorization.

    Parameters
    ----------
    fact:
        The factorization to analyze.
    max_pairs:
        Keep at most this many pairs (after sorting); default all.
    sort_by:
        ``"magnitude"`` — descending ``|mu|`` (appropriate for
        shift-inverted operators, where large ``|mu|`` means close to the
        shift); ``"none"`` — Hessenberg eigendecomposition order.

    Returns
    -------
    list of RitzPair
        Ritz values/vectors with cheap residual estimates.
    """
    k = fact.dimension
    if k == 0:
        return []
    values, vectors = np.linalg.eig(fact.hessenberg)
    residuals = np.abs(fact.residual_coupling) * np.abs(vectors[-1, :])
    order = np.arange(values.size)
    if sort_by == "magnitude":
        order = np.argsort(-np.abs(values))
    elif sort_by != "none":
        raise ValueError(f"unknown sort_by {sort_by!r}")
    if max_pairs is not None:
        order = order[: int(max_pairs)]
    # Lift all selected Hessenberg eigenvectors to the full space with one
    # BLAS-3 product instead of one BLAS-2 product per pair.
    lifted = fact.basis @ vectors[:, order]  # (n, len(order))
    norms = np.linalg.norm(lifted, axis=0)
    pairs: List[RitzPair] = []
    for j, idx in enumerate(order):
        if norms[j] == 0.0:
            continue
        pairs.append(
            RitzPair(
                value=complex(values[idx]),
                vector=lifted[:, j] / norms[j],
                residual_estimate=float(residuals[idx]),
                hess_vector=vectors[:, idx],
            )
        )
    return pairs
