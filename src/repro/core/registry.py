"""Pluggable registry of band-sweep scheduling strategies.

Historically :func:`repro.core.solver.find_imaginary_eigenvalues` chose a
driver through a hard-coded ``if/elif`` chain, so adding a backend meant
editing the dispatcher.  This module replaces that chain with a registry:
each strategy is a :class:`StrategySpec` mapping a name to a driver with
the uniform signature

``driver(model, *, num_threads, representation, omega_min, omega_max,
options) -> SolveResult``

New backends (process pools, sharded sweeps, async drivers, ...) plug in
with :func:`register_strategy` and become immediately available to the
solver, :class:`~repro.core.config.RunConfig` validation, the
:class:`~repro.api.Macromodel` facade, and the CLI ``--strategy`` flag —
no dispatcher edits required::

    from repro.core.registry import register_strategy

    @register_strategy("mybackend", description="my experimental driver")
    def _mybackend(model, *, num_threads, representation, omega_min,
                   omega_max, options):
        ...

The built-in ``bisection`` / ``queue`` / ``static`` drivers of the paper
are themselves registered through the same mechanism at the bottom of
this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.utils.validation import ensure_choice, ensure_positive_int

__all__ = [
    "AUTO_DESCRIPTION",
    "StrategySpec",
    "register_strategy",
    "unregister_strategy",
    "resolve_strategy",
    "get_strategy",
    "available_strategies",
    "ensure_strategy",
    "AUTO_STRATEGY",
]

#: Pseudo-strategy resolved at dispatch time from the thread count.
AUTO_STRATEGY = "auto"

#: Human-readable statement of the ``"auto"`` resolution rule; keep in
#: sync with :func:`resolve_strategy` (single source for UIs to print).
AUTO_DESCRIPTION = "bisection when single-threaded, else queue"

_REGISTRY: Dict[str, "StrategySpec"] = {}


@dataclass(frozen=True)
class StrategySpec:
    """One registered scheduling strategy.

    Attributes
    ----------
    name:
        Canonical registry key (the user-facing ``strategy=`` string).
    driver:
        Callable with the uniform driver signature (see module docstring).
    min_threads, max_threads:
        Inclusive thread-count bounds the driver supports;
        ``max_threads=None`` means unbounded.  ``max_threads=1`` marks an
        inherently sequential driver.
    description:
        One-line human-readable description (shown by the CLI).
    """

    name: str
    driver: Callable
    min_threads: int = 1
    max_threads: Optional[int] = None
    description: str = ""

    def supports_threads(self, num_threads: int) -> bool:
        """True when the driver accepts ``num_threads`` workers."""
        if num_threads < self.min_threads:
            return False
        return self.max_threads is None or num_threads <= self.max_threads

    def check_threads(self, num_threads: int) -> None:
        """Raise :class:`ValueError` when the thread count is unsupported."""
        if self.supports_threads(num_threads):
            return
        if self.max_threads == 1:
            raise ValueError(
                f"the {self.name!r} strategy is inherently sequential;"
                " use strategy='queue' for multi-threaded sweeps"
            )
        bounds = f">= {self.min_threads}"
        if self.max_threads is not None:
            bounds += f" and <= {self.max_threads}"
        raise ValueError(
            f"strategy {self.name!r} requires num_threads {bounds},"
            f" got {num_threads}"
        )


def register_strategy(
    name: str,
    *,
    min_threads: int = 1,
    max_threads: Optional[int] = None,
    description: str = "",
) -> Callable[[Callable], Callable]:
    """Decorator registering a sweep driver under ``name``.

    The decorated callable must follow the uniform driver signature and is
    returned unchanged, so it stays directly importable and testable.

    Raises
    ------
    ValueError
        If ``name`` is already taken (including the reserved ``"auto"``).
    """
    if not isinstance(name, str) or not name:
        raise TypeError("strategy name must be a non-empty string")

    def decorator(func: Callable) -> Callable:
        if name == AUTO_STRATEGY or name in _REGISTRY:
            raise ValueError(f"strategy {name!r} is already registered")
        _REGISTRY[name] = StrategySpec(
            name=name,
            driver=func,
            min_threads=min_threads,
            max_threads=max_threads,
            description=description,
        )
        return func

    return decorator


def unregister_strategy(name: str) -> None:
    """Remove a strategy (primarily for tests of the plugin mechanism)."""
    _REGISTRY.pop(name, None)


def available_strategies(*, include_auto: bool = True) -> Tuple[str, ...]:
    """Sorted names accepted by ``strategy=`` (``"auto"`` first)."""
    names = tuple(sorted(_REGISTRY))
    return ((AUTO_STRATEGY,) + names) if include_auto else names


def ensure_strategy(name: str) -> str:
    """Centralized validation of a strategy string (``"auto"`` allowed)."""
    return ensure_choice(name, "strategy", available_strategies())


def get_strategy(name: str) -> StrategySpec:
    """Look up a registered spec by canonical name (no ``"auto"``)."""
    ensure_choice(name, "strategy", available_strategies(include_auto=False))
    return _REGISTRY[name]


def resolve_strategy(name: str, num_threads: int) -> StrategySpec:
    """Resolve a strategy string (possibly ``"auto"``) against a thread count.

    ``"auto"`` follows the paper's guidance: classical bisection when
    single-threaded, the dynamic queue scheduler otherwise.  The resolved
    spec is checked against the thread count, so e.g. requesting the
    sequential ``bisection`` driver with multiple threads fails here with
    a single, consistent message.
    """
    num_threads = ensure_positive_int(num_threads, "num_threads")
    ensure_strategy(name)
    if name == AUTO_STRATEGY:
        name = "bisection" if num_threads == 1 else "queue"
    # get_strategy rather than raw indexing: if a built-in auto target was
    # unregistered, fail with the canonical unknown-strategy message.
    spec = get_strategy(name)
    spec.check_threads(num_threads)
    return spec


# ---------------------------------------------------------------------------
# Built-in drivers (the three schedulers studied in the paper) register
# through the public mechanism, exactly like an external plugin would.
# ---------------------------------------------------------------------------


def _register_builtins() -> None:
    from repro.core.parallel import solve_parallel
    from repro.core.serial import solve_serial

    @register_strategy(
        "bisection",
        max_threads=1,
        description="classical sequential bisection (ref. [9]; Table I baseline)",
    )
    def _bisection(model, *, num_threads, representation, omega_min, omega_max, options):
        return solve_serial(
            model,
            representation=representation,
            strategy="bisection",
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
        )

    @register_strategy(
        "queue",
        description="dynamic band-coverage scheduler (Sec. IV; any thread count)",
    )
    def _queue(model, *, num_threads, representation, omega_min, omega_max, options):
        if num_threads == 1:
            return solve_serial(
                model,
                representation=representation,
                strategy="queue",
                omega_min=omega_min,
                omega_max=omega_max,
                options=options,
            )
        return solve_parallel(
            model,
            num_threads=num_threads,
            representation=representation,
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
            dynamic=True,
        )

    @register_strategy(
        "static",
        description="static pre-distributed grid (ablation baseline, no elimination)",
    )
    def _static(model, *, num_threads, representation, omega_min, omega_max, options):
        return solve_parallel(
            model,
            num_threads=num_threads,
            representation=representation,
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
            dynamic=False,
        )


_register_builtins()
