"""Pluggable registry of band-sweep scheduling strategies.

Historically :func:`repro.core.solver.find_imaginary_eigenvalues` chose a
driver through a hard-coded ``if/elif`` chain, so adding a backend meant
editing the dispatcher.  This module replaces that chain with a registry:
each strategy is a :class:`StrategySpec` mapping a name to a driver with
the uniform signature

``driver(model, *, num_threads, representation, omega_min, omega_max,
options) -> SolveResult``

New backends (process pools, sharded sweeps, async drivers, ...) plug in
with :func:`register_strategy` and become immediately available to the
solver, :class:`~repro.core.config.RunConfig` validation, the
:class:`~repro.api.Macromodel` facade, and the CLI ``--strategy`` flag —
no dispatcher edits required::

    from repro.core.registry import register_strategy

    @register_strategy("mybackend", description="my experimental driver")
    def _mybackend(model, *, num_threads, representation, omega_min,
                   omega_max, options):
        ...

The built-in ``bisection`` / ``queue`` / ``static`` drivers of the paper
are themselves registered through the same mechanism at the bottom of
this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.utils.validation import ensure_choice, ensure_positive_int

__all__ = [
    "AUTO_DESCRIPTION",
    "BACKENDS",
    "StrategySpec",
    "register_strategy",
    "unregister_strategy",
    "resolve_strategy",
    "get_strategy",
    "available_strategies",
    "ensure_strategy",
    "ensure_backend",
    "AUTO_STRATEGY",
    "AUTO_BACKEND",
]

#: Pseudo-strategy resolved at dispatch time from the thread count.
AUTO_STRATEGY = "auto"

#: Pseudo-backend meaning "whatever the strategy implies".
AUTO_BACKEND = "auto"

#: Execution backends a driver can run on.  ``"serial"`` — one worker in
#: the calling thread; ``"thread"`` — a thread pool sharing one GIL (BLAS
#: kernels overlap); ``"process"`` — a multiprocessing pool with true
#: multi-core scaling.  ``"auto"`` defers to the strategy resolution.
BACKENDS = (AUTO_BACKEND, "serial", "thread", "process")

#: Human-readable statement of the ``"auto"`` resolution rule; keep in
#: sync with :func:`resolve_strategy` (single source for UIs to print).
AUTO_DESCRIPTION = (
    "bisection when single-threaded, else queue;"
    " backend=serial/thread/process forces bisection/queue/process"
)

_REGISTRY: Dict[str, "StrategySpec"] = {}


@dataclass(frozen=True)
class StrategySpec:
    """One registered scheduling strategy.

    Attributes
    ----------
    name:
        Canonical registry key (the user-facing ``strategy=`` string).
    driver:
        Callable with the uniform driver signature (see module docstring).
    min_threads, max_threads:
        Inclusive thread-count bounds the driver supports;
        ``max_threads=None`` means unbounded.  ``max_threads=1`` marks an
        inherently sequential driver.
    backends:
        Execution backends the driver can honor (subset of
        :data:`BACKENDS` minus ``"auto"``).  Used by
        :func:`resolve_strategy` to steer ``strategy="auto"`` and to
        reject contradictory explicit combinations such as
        ``strategy="bisection", backend="process"``.
    description:
        One-line human-readable description (shown by the CLI).
    """

    name: str
    driver: Callable
    min_threads: int = 1
    max_threads: Optional[int] = None
    backends: Tuple[str, ...] = ("serial", "thread")
    description: str = ""

    def supports_threads(self, num_threads: int) -> bool:
        """True when the driver accepts ``num_threads`` workers."""
        if num_threads < self.min_threads:
            return False
        return self.max_threads is None or num_threads <= self.max_threads

    def supports_backend(self, backend: str) -> bool:
        """True when the driver can honor ``backend`` (``"auto"`` always)."""
        return backend == AUTO_BACKEND or backend in self.backends

    def check_backend(self, backend: str) -> None:
        """Raise :class:`ValueError` when ``backend`` is unsupported."""
        if self.supports_backend(backend):
            return
        raise ValueError(
            f"strategy {self.name!r} runs on backend(s)"
            f" {'/'.join(self.backends)}, not {backend!r};"
            " leave backend='auto' or pick a matching strategy"
        )

    def check_threads(self, num_threads: int) -> None:
        """Raise :class:`ValueError` when the thread count is unsupported."""
        if self.supports_threads(num_threads):
            return
        if self.max_threads == 1:
            raise ValueError(
                f"the {self.name!r} strategy is inherently sequential;"
                " use strategy='queue' for multi-threaded sweeps"
            )
        bounds = f">= {self.min_threads}"
        if self.max_threads is not None:
            bounds += f" and <= {self.max_threads}"
        raise ValueError(
            f"strategy {self.name!r} requires num_threads {bounds},"
            f" got {num_threads}"
        )


def register_strategy(
    name: str,
    *,
    min_threads: int = 1,
    max_threads: Optional[int] = None,
    backends: Tuple[str, ...] = ("serial", "thread"),
    description: str = "",
) -> Callable[[Callable], Callable]:
    """Decorator registering a sweep driver under ``name``.

    The decorated callable must follow the uniform driver signature and is
    returned unchanged, so it stays directly importable and testable.

    Raises
    ------
    ValueError
        If ``name`` is already taken (including the reserved ``"auto"``).
    """
    if not isinstance(name, str) or not name:
        raise TypeError("strategy name must be a non-empty string")

    if not backends or not set(backends) <= set(BACKENDS[1:]):
        raise ValueError(
            f"backends must be a non-empty subset of"
            f" {BACKENDS[1:]}, got {backends}"
        )

    def decorator(func: Callable) -> Callable:
        if name == AUTO_STRATEGY or name in _REGISTRY:
            raise ValueError(f"strategy {name!r} is already registered")
        _REGISTRY[name] = StrategySpec(
            name=name,
            driver=func,
            min_threads=min_threads,
            max_threads=max_threads,
            backends=tuple(backends),
            description=description,
        )
        return func

    return decorator


def unregister_strategy(name: str) -> None:
    """Remove a strategy (primarily for tests of the plugin mechanism)."""
    _REGISTRY.pop(name, None)


def available_strategies(*, include_auto: bool = True) -> Tuple[str, ...]:
    """Sorted names accepted by ``strategy=`` (``"auto"`` first)."""
    names = tuple(sorted(_REGISTRY))
    return ((AUTO_STRATEGY,) + names) if include_auto else names


def ensure_strategy(name: str) -> str:
    """Centralized validation of a strategy string (``"auto"`` allowed)."""
    return ensure_choice(name, "strategy", available_strategies())


def ensure_backend(name: str) -> str:
    """Centralized validation of a backend string (``"auto"`` allowed)."""
    return ensure_choice(name, "backend", BACKENDS)


def get_strategy(name: str) -> StrategySpec:
    """Look up a registered spec by canonical name (no ``"auto"``)."""
    ensure_choice(name, "strategy", available_strategies(include_auto=False))
    return _REGISTRY[name]


def resolve_strategy(
    name: str, num_threads: int, *, backend: str = AUTO_BACKEND
) -> StrategySpec:
    """Resolve a strategy string (possibly ``"auto"``) against a thread count.

    ``"auto"`` follows the paper's guidance — classical bisection when
    single-threaded, the dynamic queue scheduler otherwise — unless the
    ``backend`` axis steers it: ``"serial"`` forces ``bisection``,
    ``"thread"`` forces ``queue``, ``"process"`` forces the
    multiprocessing ``process`` driver.  An explicit strategy name wins
    over ``backend="auto"``, but an explicit backend the named driver
    cannot honor (``strategy="bisection", backend="process"``) is
    rejected.  The resolved spec is checked against the thread count, so
    e.g. requesting the sequential ``bisection`` driver with multiple
    threads fails here with a single, consistent message.
    """
    num_threads = ensure_positive_int(num_threads, "num_threads")
    ensure_strategy(name)
    ensure_backend(backend)
    if backend == "serial" and num_threads != 1:
        raise ValueError(
            "backend 'serial' runs one worker; it requires"
            f" num_threads == 1, got {num_threads}"
        )
    if name == AUTO_STRATEGY:
        if backend == "serial":
            name = "bisection"
        elif backend == "thread":
            name = "queue"
        elif backend == "process":
            name = "process"
        else:
            name = "bisection" if num_threads == 1 else "queue"
    # get_strategy rather than raw indexing: if a built-in auto target was
    # unregistered, fail with the canonical unknown-strategy message.
    spec = get_strategy(name)
    spec.check_backend(backend)
    spec.check_threads(num_threads)
    return spec


# ---------------------------------------------------------------------------
# Built-in drivers (the three schedulers studied in the paper) register
# through the public mechanism, exactly like an external plugin would.
# ---------------------------------------------------------------------------


def _register_builtins() -> None:
    from repro.core.parallel import solve_parallel
    from repro.core.process import solve_process
    from repro.core.serial import solve_serial

    @register_strategy(
        "bisection",
        max_threads=1,
        backends=("serial",),
        description="classical sequential bisection (ref. [9]; Table I baseline)",
    )
    def _bisection(
        model, *, num_threads, representation, omega_min, omega_max, options
    ):
        return solve_serial(
            model,
            representation=representation,
            strategy="bisection",
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
        )

    @register_strategy(
        "queue",
        backends=("serial", "thread"),
        description="dynamic band-coverage scheduler (Sec. IV; any thread count)",
    )
    def _queue(model, *, num_threads, representation, omega_min, omega_max, options):
        if num_threads == 1:
            return solve_serial(
                model,
                representation=representation,
                strategy="queue",
                omega_min=omega_min,
                omega_max=omega_max,
                options=options,
            )
        return solve_parallel(
            model,
            num_threads=num_threads,
            representation=representation,
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
            dynamic=True,
        )

    @register_strategy(
        "static",
        backends=("thread",),
        description="static pre-distributed grid (ablation baseline, no elimination)",
    )
    def _static(model, *, num_threads, representation, omega_min, omega_max, options):
        return solve_parallel(
            model,
            num_threads=num_threads,
            representation=representation,
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
            dynamic=False,
        )

    @register_strategy(
        "process",
        backends=("process",),
        description=(
            "sharded multiprocessing sweep (true multi-core; falls back to"
            " threads for small models)"
        ),
    )
    def _process(model, *, num_threads, representation, omega_min, omega_max, options):
        return solve_process(
            model,
            num_threads=num_threads,
            representation=representation,
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
        )


_register_builtins()
