"""Solver configuration.

Defaults follow the paper: Krylov dimension ``d = 60`` (Sec. III), a small
per-shift eigenvalue budget ``n_theta`` in the 4-6 range, at least
``kappa = 2`` initial intervals per thread (Sec. IV.A), and a small disk
overlap factor ``alpha`` slightly above 1 (eq. 23).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.utils.validation import (
    ensure_nonnegative_float,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = ["SolverOptions"]


@dataclass(frozen=True)
class SolverOptions:
    """Tuning knobs of the multi-shift Hamiltonian eigensolver.

    Parameters
    ----------
    krylov_dim:
        Maximum Krylov subspace dimension ``d`` per Arnoldi run (paper: 60).
    num_wanted:
        Eigenvalue budget ``n_theta`` per shift (paper: 4-6); must satisfy
        ``num_wanted << krylov_dim`` for good stabilization.
    tol:
        Relative residual tolerance for accepting an eigenpair (checked
        with a true O(n p) matvec of the Hamiltonian operator).
    max_restarts:
        Hard cap on explicit Arnoldi restarts per shift.
    stall_restarts:
        Consecutive restarts with no new converged eigenvalue after which
        the shift's disk is certified.
    kappa:
        Initial intervals per thread, ``N = kappa * T`` (paper: >= 2).
    alpha:
        Initial-radius overlap factor of eq. (23), slightly above 1.
    imag_rtol:
        Relative tolerance on ``|Re(lambda)|`` used to classify an
        eigenvalue as purely imaginary.
    dedup_rtol:
        Relative tolerance used to merge duplicate eigenvalues reported by
        overlapping disks.
    omega_margin:
        Safety factor applied to the estimated spectral bound when the
        search band upper edge is computed automatically (Sec. IV.A).
    seed:
        Root seed for the randomized Arnoldi start vectors; ``None`` draws
        fresh entropy (used by the Fig. 6 statistical study).
    min_interval_width:
        Intervals narrower than this (relative to the band width) are
        considered fully processed instead of being split further — a guard
        against infinite subdivision when eigenvalue clusters sit exactly
        on interval edges.
    """

    krylov_dim: int = 60
    num_wanted: int = 6
    tol: float = 1e-9
    max_restarts: int = 30
    stall_restarts: int = 2
    kappa: int = 2
    alpha: float = 1.05
    imag_rtol: float = 1e-7
    dedup_rtol: float = 1e-7
    omega_margin: float = 1.05
    seed: Optional[int] = 0
    min_interval_width: float = 1e-12

    def __post_init__(self):
        ensure_positive_int(self.krylov_dim, "krylov_dim")
        ensure_positive_int(self.num_wanted, "num_wanted")
        ensure_positive_float(self.tol, "tol")
        ensure_positive_int(self.max_restarts, "max_restarts")
        ensure_positive_int(self.stall_restarts, "stall_restarts")
        ensure_positive_int(self.kappa, "kappa")
        ensure_positive_float(self.alpha, "alpha")
        ensure_positive_float(self.imag_rtol, "imag_rtol")
        ensure_positive_float(self.dedup_rtol, "dedup_rtol")
        ensure_positive_float(self.omega_margin, "omega_margin")
        ensure_nonnegative_float(self.min_interval_width, "min_interval_width")
        if self.num_wanted >= self.krylov_dim:
            raise ValueError(
                f"num_wanted ({self.num_wanted}) must be much smaller than"
                f" krylov_dim ({self.krylov_dim})"
            )
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1 (got {self.alpha})")
        if self.kappa < 2:
            raise ValueError(f"kappa must be >= 2 (paper, Sec. IV.A); got {self.kappa}")

    def with_(self, **changes) -> "SolverOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
