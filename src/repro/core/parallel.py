"""Multi-thread sweep driver — the paper's parallelization strategy.

One worker thread == one single-shift iteration at a time (the paper's
granularity).  All scheduler transitions happen under a single mutex (the
OpenMP critical-section analogue); the heavy numerical work — Arnoldi
iterations dominated by numpy/BLAS kernels that release the GIL — runs
outside the lock, so workers genuinely overlap.

Design goals restated from Sec. IV:

* individual single-shift iterations are allocated to individual threads;
* concurrent work is independent (disjoint segments);
* no thread performs an iteration that is not strictly required — a
  tentative shift covered by a completed disk is eliminated before any
  thread picks it up (eq. 24), which is also why measured speedups can
  exceed the thread count.

Idle workers block on a condition variable and are woken whenever a
completion may have produced new tentative segments or finished the sweep.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.drivers import (
    ModelInput,
    collect_result,
    prepare_operator,
    resolve_band,
    run_segment,
)
from repro.core.options import SolverOptions
from repro.core.results import ShiftRecord, SolveResult
from repro.core.scheduler import BandScheduler
from repro.core.single_shift import SingleShiftSolver
from repro.utils.logging import get_logger
from repro.utils.rng import RandomStream
from repro.utils.validation import ensure_positive_int

__all__ = ["solve_parallel"]

_LOG = get_logger("parallel")


def solve_parallel(
    model: ModelInput,
    *,
    num_threads: int = 2,
    representation: str = "scattering",
    omega_min: float = 0.0,
    omega_max: Optional[float] = None,
    options: Optional[SolverOptions] = None,
    dynamic: bool = True,
) -> SolveResult:
    """Find all imaginary Hamiltonian eigenvalues with a thread pool.

    Parameters
    ----------
    model:
        Pole/residue model or structured SIMO realization.
    num_threads:
        Number of concurrent workers ``T``.
    representation:
        ``"scattering"`` or ``"immittance"``.
    omega_min, omega_max:
        Search band; ``omega_max=None`` triggers automatic estimation.
    options:
        Solver options (defaults when omitted).
    dynamic:
        ``True`` — full dynamic scheduling (the paper's contribution);
        ``False`` — static pre-distributed grid without cross-segment
        elimination (the rejected baseline; kept for the ablation bench).

    Returns
    -------
    SolveResult
        Identical eigenvalue content to the serial drivers (up to
        round-off and random-start variation); additional provenance in
        ``shifts``/``work`` records the scheduling behaviour.
    """
    num_threads = ensure_positive_int(num_threads, "num_threads")
    options = options if options is not None else SolverOptions()
    simo, op, work = prepare_operator(model, representation)
    root_stream = RandomStream(options.seed)
    omega_min, omega_max = resolve_band(
        op, omega_min, omega_max, options, root_stream.spawn(key=0x5EED)
    )
    solver = SingleShiftSolver(op, options)
    scheduler = BandScheduler(
        omega_min,
        omega_max,
        num_threads=num_threads,
        kappa=options.kappa,
        alpha=options.alpha,
        dynamic=dynamic,
        min_width_rel=options.min_interval_width,
    )

    records: List[ShiftRecord] = []
    lock = threading.Lock()
    condition = threading.Condition(lock)
    errors: List[BaseException] = []

    def worker(worker_id: int) -> None:
        while True:
            with condition:
                segment = None
                while True:
                    if errors:
                        return
                    segment = scheduler.next_task()
                    if segment is not None:
                        break
                    if scheduler.is_finished():
                        condition.notify_all()
                        return
                    condition.wait()
            try:
                record = run_segment(
                    solver, scheduler, segment, root_stream, worker_id
                )
            except BaseException as exc:  # propagate to the caller
                with condition:
                    errors.append(exc)
                    condition.notify_all()
                return
            with condition:
                scheduler.complete(
                    segment, record.result.shift.imag, record.result.radius
                )
                records.append(record)
                if work is not None:
                    work.add(shifts_processed=1)
                condition.notify_all()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(tid,), name=f"hameig-{tid}")
        for tid in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    if errors:
        raise errors[0]
    leftover = scheduler.uncovered(ignore_dust=True)
    if leftover:
        raise RuntimeError(
            f"scheduler terminated with uncovered band portions: {leftover}"
        )
    _LOG.debug(
        "parallel sweep done: %d shifts, %d eliminated, %.3fs",
        len(records),
        scheduler.eliminated,
        elapsed,
    )
    return collect_result(
        op,
        scheduler,
        records,
        options,
        elapsed,
        num_threads=num_threads,
        strategy="queue" if dynamic else "static",
    )
