"""The paper's primary contribution: the parallel Hamiltonian eigensolver.

Layering (bottom up):

* :mod:`repro.core.arnoldi` -- Krylov/Arnoldi machinery with explicit
  deflation and re-orthogonalization;
* :mod:`repro.core.single_shift` -- the single-shift operator
  ``S(theta, rho0) -> ({lambda_k}, rho)`` of Sec. III: a restarted,
  deflated Arnoldi process around one shift returning the eigenvalues in a
  certified disk;
* :mod:`repro.core.scheduler` -- the dynamic band-coverage scheduler of
  Sec. IV (tentative/processing/done shift sets, interval splitting,
  covered-shift elimination, startup ordering, termination);
* :mod:`repro.core.serial` / :mod:`repro.core.parallel` -- single-thread
  and multi-thread drivers over the same scheduler;
* :mod:`repro.core.registry` -- the pluggable strategy registry the
  drivers register into;
* :mod:`repro.core.config` -- the single :class:`RunConfig` carrying all
  cross-cutting knobs;
* :mod:`repro.core.solver` -- the public API :func:`solve` /
  :func:`find_imaginary_eigenvalues`, dispatching through the registry.
"""

from repro.core.config import RunConfig
from repro.core.options import SolverOptions
from repro.core.registry import (
    StrategySpec,
    available_strategies,
    register_strategy,
    resolve_strategy,
)
from repro.core.results import ShiftRecord, SingleShiftResult, SolveResult
from repro.core.single_shift import SingleShiftSolver, estimate_spectral_bound
from repro.core.solver import find_imaginary_eigenvalues, solve

__all__ = [
    "RunConfig",
    "SolverOptions",
    "StrategySpec",
    "available_strategies",
    "register_strategy",
    "resolve_strategy",
    "SingleShiftResult",
    "ShiftRecord",
    "SolveResult",
    "SingleShiftSolver",
    "estimate_spectral_bound",
    "find_imaginary_eigenvalues",
    "solve",
]
