"""The single-shift iteration ``S(theta, rho0) -> ({lambda_k}, rho)``.

This implements the operator of Sec. III (Fig. 1): a restarted, deflated
Arnoldi process on the shift-inverted Hamiltonian that returns

* the set of eigenvalues converged inside a disk centered at ``theta``, and
* a *certified radius* ``rho`` such that (up to the convergence tolerance)
  no unlisted eigenvalue lies inside ``C(theta, rho)``.

Radius update rules follow the paper:

* if more than ``n_theta`` eigenvalues converge inside the current disk,
  the radius shrinks so that only ``n_theta`` remain enclosed and the rest
  are discarded;
* if converged eigenvalues fall outside the initial radius, the radius
  grows to the farthest converged eigenvalue;
* the certified radius is additionally capped below the distance of the
  nearest *unconverged-but-stabilizing* Ritz estimate — a safety guard so
  that a disk is never certified past an eigenvalue the iteration saw but
  did not resolve.

Convergence of a candidate eigenpair is accepted only after a *true*
residual check ``||M v - lambda v|| <= tol * max(scale, |lambda|)`` using
one O(n p) application of the matrix-free Hamiltonian — cheap insurance
against the well-known optimism of Hessenberg residual estimates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.arnoldi import build_arnoldi, ritz_pairs
from repro.core.options import SolverOptions
from repro.core.results import SingleShiftResult
from repro.hamiltonian.operator import HamiltonianOperator
from repro.utils.linalg import orthonormalize_against
from repro.utils.logging import get_logger
from repro.utils.rng import RandomStream

__all__ = ["SingleShiftSolver", "estimate_spectral_bound"]

_LOG = get_logger("single_shift")

#: Ritz pairs whose cheap residual estimate exceeds this (relative to the
#: Ritz value magnitude) are not even screened with a true matvec.
_SCREEN_RTOL = 1e-3

#: Relative residual below which an *unconverged* Ritz value is considered
#: a stabilizing estimate of a true nearby eigenvalue (radius guard).
_GUARD_RTOL = 1e-2


def estimate_spectral_bound(
    hamiltonian: HamiltonianOperator,
    *,
    stream: Optional[RandomStream] = None,
    krylov_dim: int = 40,
    restarts: int = 2,
    margin: float = 1.05,
) -> float:
    """Estimate ``max |lambda(M)|`` with a shift-free Arnoldi run (Sec. IV.A).

    The paper precomputes the upper edge of the search band as the magnitude
    of the largest Hamiltonian eigenvalue, "obtained with a single-shift
    iteration on M without applying any shift-and-invert operation".

    Parameters
    ----------
    hamiltonian:
        Matrix-free Hamiltonian operator.
    stream:
        Random stream for start vectors (seeded default when omitted).
    krylov_dim:
        Krylov dimension per run.
    restarts:
        Independent randomized runs; the max over runs is kept.
    margin:
        Multiplicative safety factor applied to the estimate.

    Returns
    -------
    float
        An (approximate, margin-inflated) upper bound on the modulus of any
        Hamiltonian eigenvalue, hence on any crossing frequency.
    """
    stream = stream if stream is not None else RandomStream(0)
    dim = hamiltonian.dimension
    if dim == 0:
        return 0.0
    best = 0.0
    for _ in range(max(1, restarts)):
        start = stream.complex_vector(dim)
        fact = build_arnoldi(
            hamiltonian.matvec, start, min(krylov_dim, dim), work=hamiltonian.work
        )
        pairs = ritz_pairs(fact, sort_by="magnitude", max_pairs=1)
        if pairs:
            best = max(best, abs(pairs[0].value))
    return float(margin * best)


class SingleShiftSolver:
    """Runs single-shift iterations against one Hamiltonian operator.

    A solver instance is stateless across shifts (each call to :meth:`run`
    is independent), so one instance may be shared by many threads as long
    as the underlying numpy kernels are (they are — all mutable state is
    local to :meth:`run`).
    """

    def __init__(
        self, hamiltonian: HamiltonianOperator, options: SolverOptions
    ) -> None:
        self.hamiltonian = hamiltonian
        self.options = options
        # Problem scale for relative tolerances: the spectral radius of the
        # block-diagonal part is cheap and representative.
        self._scale = max(1.0, hamiltonian.simo.spectral_radius_bound())

    # ------------------------------------------------------------------
    def _shift_invert(self, theta: complex):
        """Build the SMW operator, nudging the shift off singular points."""
        nudge = 1e-9 * self._scale
        last_error: Optional[Exception] = None
        for attempt in range(4):
            try:
                return self.hamiltonian.shift_invert(theta + attempt * nudge)
            except (ZeroDivisionError, np.linalg.LinAlgError) as exc:
                last_error = exc
                continue
        raise np.linalg.LinAlgError(
            f"could not factor shift-invert operator near {theta}: {last_error}"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        center: float,
        rho0: float,
        stream: Optional[RandomStream] = None,
    ) -> SingleShiftResult:
        """Execute ``S(j*center, rho0)``.

        Parameters
        ----------
        center:
            Shift position ``omega`` on the imaginary axis.
        rho0:
            Initial disk radius guess (eq. 23).
        stream:
            Random stream for restart vectors.

        Returns
        -------
        SingleShiftResult
            Converged eigenvalues inside the certified disk and the radius.
        """
        opts = self.options
        stream = stream if stream is not None else RandomStream(0)
        theta = 1j * float(center)
        op = self._shift_invert(theta)
        actual_theta = op.shift  # may include a tiny nudge
        dim = self.hamiltonian.dimension
        krylov_dim = min(opts.krylov_dim, dim)

        # Per-shift work accounting (for the multicore makespan projection):
        # wrap the operators so applications by *this* shift are counted
        # locally in addition to the shared WorkCounter.
        local_applies = [0]

        def si_matvec(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x)
            local_applies[0] += 1 if x.ndim == 1 else x.shape[1]
            return op.matvec(x)

        def m_matvec(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x)
            local_applies[0] += 1 if x.ndim == 1 else x.shape[1]
            return self.hamiltonian.matvec(x)

        locked_vecs = np.zeros((dim, 0), dtype=complex)  # orthonormal Q
        locked_images = np.zeros((dim, 0), dtype=complex)  # W = OP Q
        locked_vals: List[complex] = []
        guard_distance = np.inf  # nearest unresolved eigenvalue estimate
        stall = 0
        restarts = 0
        budget_hit = False
        pairs = []

        while restarts < opts.max_restarts:
            restarts += 1
            if self.hamiltonian.work is not None:
                self.hamiltonian.work.add(restarts=1)
            start = stream.complex_vector(dim)
            try:
                fact = build_arnoldi(
                    si_matvec,
                    start,
                    krylov_dim,
                    locked=locked_vecs,
                    work=self.hamiltonian.work,
                )
            except ValueError:
                # Start vector collapsed into the locked space — the
                # complement is (numerically) exhausted.
                break
            pairs = ritz_pairs(fact, sort_by="magnitude")
            # Small projection Q^H OP Q for the locked-subspace correction.
            qhwq = locked_vecs.conj().T @ locked_images

            new_found = 0
            guard_distance = np.inf
            accepted: List[Tuple[complex, np.ndarray]] = []
            # Screen only the leading pairs: |mu| large <=> close to shift.
            candidates: List[np.ndarray] = []
            for pair in pairs[: max(2 * opts.num_wanted, 8)]:
                mu = pair.value
                if abs(mu) == 0.0:
                    continue
                if pair.residual_estimate > _SCREEN_RTOL * abs(mu):
                    continue
                u = self._correct_candidate(
                    pair, locked_vecs, qhwq, fact.deflation_coeffs
                )
                if u is None:
                    continue
                candidates.append(u)
            # True-residual check for every screened candidate with ONE
            # blocked O(n p c) Hamiltonian apply (BLAS-3) instead of one
            # matvec per candidate.
            if candidates:
                block = np.stack(candidates, axis=1)  # (2n, c)
                mv_block = m_matvec(block)
                rayleigh = np.einsum("ij,ij->j", block.conj(), mv_block)
                res_norms = np.linalg.norm(
                    mv_block - block * rayleigh[None, :], axis=0
                )
            else:
                rayleigh = res_norms = np.empty(0)
            for u, lam, residual in zip(candidates, rayleigh, res_norms):
                lam = complex(lam)  # Rayleigh quotient refinement
                residual = float(residual)
                tol_abs = opts.tol * max(self._scale, abs(lam))
                dist = abs(lam - actual_theta)
                if residual <= tol_abs:
                    if self._is_duplicate(lam, locked_vals) or self._is_duplicate(
                        lam, [a_lam for a_lam, _ in accepted]
                    ):
                        continue
                    accepted.append((lam, u))
                elif residual <= _GUARD_RTOL * max(self._scale, abs(lam)):
                    # Stabilizing but unresolved: remember its distance so
                    # the certified radius never reaches past it.  Ghost
                    # copies of already-locked eigenvalues are ignored.
                    if not self._is_duplicate(lam, locked_vals):
                        guard_distance = min(guard_distance, dist)

            # Lock the accepted eigenpairs (Q stays orthonormal; W = OP Q is
            # updated analytically: OP u = u / (lambda - theta)).
            for lam, u in accepted:
                coeffs, norm, q = orthonormalize_against(locked_vecs, u)
                if q is None:
                    continue
                nu = 1.0 / (lam - actual_theta)
                w_q = (nu * u - locked_images @ coeffs) / norm
                locked_vecs = np.hstack([locked_vecs, q[:, None]])
                locked_images = np.hstack([locked_images, w_q[:, None]])
                locked_vals.append(lam)
                new_found += 1

            if new_found == 0:
                stall += 1
            else:
                stall = 0

            count = len(locked_vals)
            if count >= opts.num_wanted:
                break  # budget reached — certify (shrinking if exceeded)
            if stall >= opts.stall_restarts:
                break
            if fact.breakdown and new_found == 0:
                break
        else:
            budget_hit = True

        radius, kept = self._certify_radius(
            actual_theta, rho0, locked_vals, guard_distance, pairs
        )
        _LOG.debug(
            "S(center=%.6g, rho0=%.4g) -> %d eigs, rho=%.4g, restarts=%d",
            center,
            rho0,
            len(kept),
            radius,
            restarts,
        )
        return SingleShiftResult(
            shift=actual_theta,
            radius=float(radius),
            eigenvalues=np.asarray(kept, dtype=complex),
            restarts=restarts,
            converged=not budget_hit,
            applies=local_applies[0],
        )

    # ------------------------------------------------------------------
    def _correct_candidate(
        self,
        pair,
        locked_vecs: np.ndarray,
        qhwq: np.ndarray,
        deflation_coeffs: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Reconstruct a full-space eigenvector from a deflated Ritz pair.

        The deflated Arnoldi run approximates eigenpairs of the *projected*
        operator ``P OP P`` (``P = I - Q Q^H``).  Because eigenvectors of a
        non-normal operator are not orthogonal, the true eigenvector of the
        remaining eigenvalue generally has a component inside ``span(Q)``:
        ``u = v + Q t`` with ``t = (mu I - Q^H OP Q)^{-1} Q^H OP v``.
        ``Q^H OP v`` is available for free from the deflation coefficients
        recorded during the factorization.

        Returns the unit-norm corrected vector, or ``None`` when the
        correction is degenerate (``mu`` collides with a locked eigenvalue).
        """
        v = pair.vector
        m = locked_vecs.shape[1]
        if m == 0:
            return v
        g = deflation_coeffs @ pair.hess_vector
        mat = pair.value * np.eye(m, dtype=complex) - qhwq
        try:
            t = np.linalg.solve(mat, g)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(t)) or np.linalg.norm(t) > 1e8:
            return None
        u = v + locked_vecs @ t
        norm = np.linalg.norm(u)
        if norm < 1e-12:
            return None
        return u / norm

    def _is_duplicate(self, lam: complex, locked_vals: List[complex]) -> bool:
        """True when ``lam`` matches an already-locked eigenvalue."""
        tol = self.options.dedup_rtol * max(self._scale, abs(lam))
        return any(abs(lam - known) <= tol for known in locked_vals)

    def _certify_radius(
        self,
        theta: complex,
        rho0: float,
        locked_vals: List[complex],
        guard_distance: float,
        last_pairs,
    ) -> Tuple[float, List[complex]]:
        """Apply the paper's radius update rules and the safety guard.

        Returns the certified radius and the eigenvalues enclosed by it.
        """
        opts = self.options
        eps = 1e-9 * self._scale
        if not locked_vals:
            # Empty disk: estimate the distance to the nearest eigenvalue
            # from the largest-|mu| Ritz value of the last factorization
            # (|mu| ~ 1/dist for the shift-inverted operator).
            dist_est = np.inf
            for pair in last_pairs[:3]:
                if abs(pair.value) > 0.0:
                    dist_est = min(dist_est, 1.0 / abs(pair.value))
            dist_est = min(dist_est, guard_distance)
            if not np.isfinite(dist_est):
                return rho0, []
            if dist_est <= rho0:
                # An eigenvalue may hide inside rho0 — certify conservatively.
                return max(0.9 * dist_est, eps), []
            # Free to extend the certified-empty disk toward the estimate.
            return max(rho0, 0.9 * dist_est), []

        dists = np.sort(np.abs(np.asarray(locked_vals) - theta))
        count = dists.size
        gap_tol = 10.0 * eps

        if count > opts.num_wanted:
            # Shrink so that at most num_wanted eigenvalues are enclosed.
            # The cut must fall in a *strict* gap between consecutive
            # distances — symmetric eigenvalue pairs are equidistant from
            # an on-axis shift, and a disk boundary must never pass
            # through an eigenvalue.
            j = opts.num_wanted
            while j > 0 and dists[j] - dists[j - 1] <= gap_tol:
                j -= 1
            if j == 0:
                # The whole converged cloud is one tight cluster; certify
                # an empty disk strictly below it.
                radius = max(0.5 * float(dists[0]), eps)
            else:
                radius = 0.5 * (float(dists[j - 1]) + float(dists[j]))
        else:
            # Grow to the farthest converged eigenvalue if needed (paper).
            radius = max(rho0, float(dists[-1]) * (1.0 + 1e-9) + eps)

        # Safety clamp: the certified disk must never reach an eigenvalue
        # the iteration saw but did not resolve (convergence order is not
        # monotone in distance for non-normal matrices, so a far pair may
        # lock before a nearer cluster).
        if np.isfinite(guard_distance) and radius > 0.95 * guard_distance:
            below = dists[dists < guard_distance - gap_tol]
            if below.size:
                radius = min(radius, 0.5 * (float(below[-1]) + guard_distance))
            else:
                radius = min(radius, max(0.9 * guard_distance, eps))

        kept = [lam for lam in locked_vals if abs(lam - theta) <= radius]
        return float(radius), kept
