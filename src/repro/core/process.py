"""Multi-process sweep driver — true multi-core band sharding.

The thread driver of :mod:`repro.core.parallel` realizes the paper's
scheduling granularity but shares one GIL: it scales only as far as the
BLAS kernels release the interpreter lock.  This driver shards the search
band ``[omega_min, omega_max]`` into ``num_threads`` contiguous sub-bands
and runs each shard's *entire* dynamic scheduler loop in its own worker
process, so the Python-side bookkeeping and the small dense solves scale
across cores too.

Design:

* the model (a picklable :class:`~repro.macromodel.simo.SimoRealization`)
  and the solver options are serialized **once** and shipped to every
  worker through the pool initializer — per-shard task payloads carry
  only band geometry;
* each shard runs the single-worker dynamic queue of Sec. IV over its
  sub-band, with a disjoint segment-index range (so merged shift records
  and the per-segment random streams stay globally unique);
* the parent re-registers every certified disk on a fresh
  :class:`~repro.core.scheduler.BandScheduler` and re-checks the
  coverage invariant over the *whole* band before assembling the result —
  a shard cannot silently drop part of its sub-band;
* small models fall back cleanly to the thread driver: below
  :data:`PROCESS_MIN_ORDER` dynamic order (override with the
  ``REPRO_PROCESS_MIN_ORDER`` environment variable) the fork/pickle cost
  exceeds the sweep itself.  Pool start-up failures (restricted
  sandboxes, missing semaphores) degrade the same way instead of
  erroring out.

The eigenvalue content is identical to the serial and thread drivers up
to round-off: every backend certifies full band coverage, and converged
Ritz values agree to ~1e-13 relative (see ``tests/core/test_backends``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.drivers import (
    ModelInput,
    collect_result,
    prepare_operator,
    resolve_band,
    run_segment,
)
from repro.core.options import SolverOptions
from repro.core.results import ShiftRecord, SolveResult
from repro.core.scheduler import BandScheduler
from repro.core.single_shift import SingleShiftSolver
from repro.obs import trace as _obs_trace
from repro.utils.logging import get_logger
from repro.utils.rng import RandomStream
from repro.utils.validation import ensure_positive_int

__all__ = [
    "solve_process",
    "select_process_execution",
    "preferred_mp_context",
    "PROCESS_MIN_ORDER",
    "ENV_MIN_ORDER",
]

_LOG = get_logger("process")

#: Dynamic order below which forking worker processes costs more than the
#: whole sweep; smaller models run on the thread backend instead.
PROCESS_MIN_ORDER = 128

#: Environment variable overriding :data:`PROCESS_MIN_ORDER` (useful to
#: force the real process path in tests: ``REPRO_PROCESS_MIN_ORDER=1``).
ENV_MIN_ORDER = "REPRO_PROCESS_MIN_ORDER"

#: Segment-index stride separating the shards' index ranges.
_SHARD_INDEX_STRIDE = 1 << 24


def _min_order() -> int:
    raw = os.environ.get(ENV_MIN_ORDER)
    if raw is None or not raw.strip():
        return PROCESS_MIN_ORDER
    try:
        return int(raw)
    except ValueError as exc:
        # Imported lazily: config imports the registry, which registers
        # this module at import time — a top-level import would cycle.
        from repro.core.config import ConfigError

        raise ConfigError(f"invalid {ENV_MIN_ORDER}={raw!r}: {exc}") from exc


def select_process_execution(order: int, num_threads: int) -> str:
    """Decide how a ``backend="process"`` request is executed.

    Returns
    -------
    str
        ``"process"`` — shard the band across a worker pool;
        ``"inline"``  — one worker requested: run the sharded loop in the
        calling process (no pool, deterministic, zero fork cost);
        ``"thread"``  — the model is too small to amortize fork+pickle
        cost, delegate to the thread driver.
    """
    if num_threads == 1:
        return "inline"
    if order < _min_order():
        return "thread"
    return "process"


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ShardTask:
    """Per-shard work order: band geometry only (the model ships once)."""

    shard_index: int
    lo: float
    hi: float
    index_offset: int
    min_width_rel: float


#: Per-process state installed by the pool initializer.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(payload: bytes) -> None:
    """Rebuild the operator once per worker process from the shipped spec."""
    model, representation, options = pickle.loads(payload)
    simo, op, work = prepare_operator(model, representation)
    _WORKER_STATE["solver"] = SingleShiftSolver(op, options)
    _WORKER_STATE["work"] = work
    _WORKER_STATE["options"] = options


def _drain_shard(
    solver: SingleShiftSolver,
    scheduler: BandScheduler,
    root_stream: RandomStream,
    worker_id: int,
) -> List[ShiftRecord]:
    """Run the single-worker dynamic queue to exhaustion (one sub-band)."""
    records: List[ShiftRecord] = []
    while True:
        segment = scheduler.next_task()
        if segment is None:
            break
        record = run_segment(solver, scheduler, segment, root_stream, worker_id)
        scheduler.complete(segment, record.result.shift.imag, record.result.radius)
        if solver.hamiltonian.work is not None:
            solver.hamiltonian.work.add(shifts_processed=1)
        records.append(record)
    return records


def _solve_shard(task: _ShardTask) -> dict:
    """Pool task: sweep one contiguous sub-band with the dynamic queue."""
    solver: SingleShiftSolver = _WORKER_STATE["solver"]  # type: ignore[assignment]
    options: SolverOptions = _WORKER_STATE["options"]  # type: ignore[assignment]
    work = _WORKER_STATE["work"]
    scheduler = BandScheduler(
        task.lo,
        task.hi,
        num_threads=1,
        kappa=options.kappa,
        alpha=options.alpha,
        min_width_rel=task.min_width_rel,
        index_offset=task.index_offset,
    )
    root_stream = RandomStream(options.seed)
    # The worker's counter is cumulative across every shard this process
    # executes; report the per-shard delta or the parent double-counts
    # when one worker picks up several shards.
    before = work.snapshot() if work is not None else {}
    shard_started = time.time()
    shard_t0 = time.perf_counter()
    records = _drain_shard(solver, scheduler, root_stream, task.shard_index)
    shard_elapsed = time.perf_counter() - shard_t0
    after = work.snapshot() if work is not None else {}
    uncovered = scheduler.uncovered(ignore_dust=True)
    return {
        "shard_index": task.shard_index,
        "started": shard_started,
        "elapsed": shard_elapsed,
        "records": records,
        "work": {key: after[key] - before.get(key, 0) for key in after},
        "eliminated": scheduler.eliminated,
        "trimmed": scheduler.trimmed,
        "uncovered": uncovered,
        "disks": [
            (disk.center, disk.radius, disk.segment_index)
            for disk in scheduler.done_disks
        ],
    }


def _run_shards_inline(
    solver: SingleShiftSolver,
    tasks: List[_ShardTask],
    options: SolverOptions,
) -> List[dict]:
    """Execute shard tasks in the calling process (no pool)."""
    outcomes = []
    for task in tasks:
        scheduler = BandScheduler(
            task.lo,
            task.hi,
            num_threads=1,
            kappa=options.kappa,
            alpha=options.alpha,
            min_width_rel=task.min_width_rel,
            index_offset=task.index_offset,
        )
        root_stream = RandomStream(options.seed)
        shard_started = time.time()
        shard_t0 = time.perf_counter()
        records = _drain_shard(solver, scheduler, root_stream, task.shard_index)
        shard_elapsed = time.perf_counter() - shard_t0
        outcomes.append(
            {
                "shard_index": task.shard_index,
                "started": shard_started,
                "elapsed": shard_elapsed,
                "records": records,
                # Inline work is already counted on the parent counter.
                "work": {},
                "eliminated": scheduler.eliminated,
                "trimmed": scheduler.trimmed,
                "uncovered": scheduler.uncovered(ignore_dust=True),
                "disks": [
                    (disk.center, disk.radius, disk.segment_index)
                    for disk in scheduler.done_disks
                ],
            }
        )
    return outcomes


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


def preferred_mp_context():
    """Prefer fork (cheap, parent state inherited) where available.

    Shared by this driver and :class:`repro.batch.BatchRunner`.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shard_band(
    omega_min: float, omega_max: float, num_shards: int, min_width_rel: float
) -> List[_ShardTask]:
    """Split the band into contiguous equal-width shard tasks.

    Each shard keeps the *whole-band* dust threshold so a shard cannot
    subdivide below what the merged coverage check would tolerate.
    """
    width = (omega_max - omega_min) / num_shards
    band_width = omega_max - omega_min
    tasks = []
    for k in range(num_shards):
        lo = omega_min + k * width
        hi = omega_max if k == num_shards - 1 else omega_min + (k + 1) * width
        tasks.append(
            _ShardTask(
                shard_index=k,
                lo=lo,
                hi=hi,
                index_offset=(k + 1) * _SHARD_INDEX_STRIDE,
                min_width_rel=min_width_rel * band_width / (hi - lo),
            )
        )
    return tasks


def _fallback_to_threads(
    model: ModelInput,
    *,
    num_threads: int,
    representation: str,
    omega_min: float,
    omega_max: Optional[float],
    options: SolverOptions,
    reason: str,
) -> SolveResult:
    from repro.core.parallel import solve_parallel

    _LOG.debug("process backend falling back to threads: %s", reason)
    return solve_parallel(
        model,
        num_threads=num_threads,
        representation=representation,
        omega_min=omega_min,
        omega_max=omega_max,
        options=options,
        dynamic=True,
    )


def solve_process(
    model: ModelInput,
    *,
    num_threads: int = 2,
    representation: str = "scattering",
    omega_min: float = 0.0,
    omega_max: Optional[float] = None,
    options: Optional[SolverOptions] = None,
) -> SolveResult:
    """Find all imaginary Hamiltonian eigenvalues with a process pool.

    Parameters
    ----------
    model:
        Pole/residue model or structured SIMO realization.
    num_threads:
        Number of worker processes (band shards).
    representation:
        ``"scattering"`` or ``"immittance"``.
    omega_min, omega_max:
        Search band; ``omega_max=None`` triggers automatic estimation.
    options:
        Solver options (defaults when omitted).

    Returns
    -------
    SolveResult
        Identical eigenvalue content to the serial/thread drivers (up to
        round-off); ``strategy`` is ``"process"`` unless the small-model
        fallback delegated to the thread driver.
    """
    num_threads = ensure_positive_int(num_threads, "num_threads")
    options = options if options is not None else SolverOptions()
    simo, op, work = prepare_operator(model, representation)

    mode = select_process_execution(simo.order, num_threads)
    if mode == "thread":
        return _fallback_to_threads(
            simo,
            num_threads=num_threads,
            representation=representation,
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
            reason=f"order {simo.order} < min order {_min_order()}",
        )

    root_stream = RandomStream(options.seed)
    omega_min, omega_max = resolve_band(
        op, omega_min, omega_max, options, root_stream.spawn(key=0x5EED)
    )
    tasks = _shard_band(
        omega_min, omega_max, num_threads, options.min_interval_width
    )

    started = time.perf_counter()
    with _obs_trace.span(
        "eigensweep.dispatch", shards=len(tasks), mode=mode
    ):
        if mode == "inline":
            solver = SingleShiftSolver(op, options)
            outcomes = _run_shards_inline(solver, tasks, options)
        else:
            payload = pickle.dumps(
                (simo, representation, options),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            try:
                with ProcessPoolExecutor(
                    max_workers=num_threads,
                    mp_context=preferred_mp_context(),
                    initializer=_init_worker,
                    initargs=(payload,),
                ) as pool:
                    futures = [
                        pool.submit(_solve_shard, task) for task in tasks
                    ]
                    outcomes = [future.result() for future in futures]
            except (OSError, ImportError, BrokenProcessPool) as exc:
                # Pool could not start or a worker died abruptly
                # (sandboxed platform, missing semaphores, fd limits,
                # OOM kill): degrade to the thread driver.  Exceptions
                # raised *by* a shard propagate unwrapped — they
                # indicate real errors.
                return _fallback_to_threads(
                    simo,
                    num_threads=num_threads,
                    representation=representation,
                    omega_min=omega_min,
                    omega_max=omega_max,
                    options=options,
                    reason=f"pool unavailable ({exc!r})",
                )
        # Pool workers run without a trace context; their shard timings
        # come back on the outcome dicts and are re-recorded here as
        # children of the dispatch span (no-op when tracing is off).
        for outcome in outcomes:
            if "started" in outcome:
                _obs_trace.record_span(
                    "eigensweep.shard",
                    start=outcome["started"],
                    duration=outcome["elapsed"],
                    attributes={"shard": outcome["shard_index"]},
                )
    elapsed = time.perf_counter() - started

    return _merge_outcomes(
        op,
        outcomes,
        omega_min=omega_min,
        omega_max=omega_max,
        options=options,
        elapsed=elapsed,
        num_threads=num_threads,
    )


def _merge_outcomes(
    op,
    outcomes: List[dict],
    *,
    omega_min: float,
    omega_max: float,
    options: SolverOptions,
    elapsed: float,
    num_threads: int,
) -> SolveResult:
    """Merge shard outcomes, re-checking coverage over the whole band."""
    work = op.work
    merged = BandScheduler(
        omega_min,
        omega_max,
        num_threads=num_threads,
        kappa=options.kappa,
        alpha=options.alpha,
        min_width_rel=options.min_interval_width,
    )
    # The merged scheduler is a coverage bookkeeper only: its startup
    # queue is never drained, disks register directly.
    records: List[ShiftRecord] = []
    eliminated = 0
    trimmed = 0
    for outcome in outcomes:
        if outcome["uncovered"]:
            raise RuntimeError(
                f"process shard {outcome['shard_index']} terminated with"
                f" uncovered sub-band portions: {outcome['uncovered']}"
            )
        records.extend(outcome["records"])
        eliminated += int(outcome["eliminated"])
        trimmed += int(outcome["trimmed"])
        if work is not None and outcome["work"]:
            work.add(**outcome["work"])
        for center, radius, segment_index in outcome["disks"]:
            merged.register_external_disk(center, radius, segment_index)
    leftover = merged.uncovered(ignore_dust=True)
    if leftover:
        raise RuntimeError(
            f"merged shard disks leave uncovered band portions: {leftover}"
        )
    merged.eliminated = eliminated
    merged.trimmed = trimmed
    records.sort(key=lambda record: record.index)
    _LOG.debug(
        "process sweep done: %d shards, %d shifts, %d eliminated, %.3fs",
        len(outcomes),
        len(records),
        eliminated,
        elapsed,
    )
    return collect_result(
        op,
        merged,
        records,
        options,
        elapsed,
        num_threads=num_threads,
        strategy="process",
    )
