"""The single run configuration shared by every entry point.

Before this module existed, ``num_threads`` / ``representation`` /
``strategy`` / ``omega_min`` / ``omega_max`` / ``options`` were re-plumbed
as loose keyword arguments through roughly ten modules, and each layer
re-validated them ad hoc.  :class:`RunConfig` consolidates all of the
cross-cutting knobs into one frozen, validated value object that flows
unchanged from the CLI / environment / facade down to the drivers:

* ``RunConfig()`` — sensible defaults (serial, scattering, auto strategy);
* ``RunConfig.from_dict({...})`` — machine-readable construction (JSON);
* ``RunConfig.from_env()`` — ``REPRO_*`` environment overrides;
* ``config.merged(num_threads=8)`` — functional per-call overrides;
* ``config.to_dict()`` — JSON-serializable round-trip.

Validation of the ``strategy`` and ``representation`` strings happens
here, centrally, with a single error message listing the valid choices
(the strategy list is live — plugins registered through
:mod:`repro.core.registry` are accepted automatically).
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping, Optional

from repro.core.options import SolverOptions
from repro.core.registry import ensure_backend, ensure_strategy, resolve_strategy
from repro.hamiltonian.operator import REPRESENTATIONS
from repro.utils.validation import (
    ensure_choice,
    ensure_nonnegative_float,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = [
    "CACHE_MODES",
    "ConfigError",
    "RunConfig",
    "ensure_representation",
    "require_scattering",
    "require_full_axis",
]

#: Environment prefix recognized by :meth:`RunConfig.from_env`.
ENV_PREFIX = "REPRO_"

#: Result-store participation modes: ``"off"`` (never touch the store),
#: ``"read"`` (serve hits, never write), ``"readwrite"`` (serve hits and
#: persist fresh results).
CACHE_MODES = ("off", "read", "readwrite")


class ConfigError(ValueError):
    """A configuration value could not be parsed or validated.

    Every environment parse failure in :meth:`RunConfig.from_env` raises
    this single type with a message naming the offending ``REPRO_*``
    variable — previously a malformed integer could surface as a bare
    ``ValueError: invalid literal for int()`` (or, through layers that
    caught ``ValueError`` for flow control, be silently ignored).
    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working.
    """


def ensure_representation(name: str) -> str:
    """Centralized validation of a representation string."""
    return ensure_choice(name, "representation", REPRESENTATIONS)


def require_scattering(config: "RunConfig", stage: str, *, hint: str = "") -> None:
    """Reject configs whose representation a scattering-only stage can't honor."""
    if config.representation != "scattering":
        message = (
            f"{stage} is defined on the scattering-domain sigma;"
            f" config.representation {config.representation!r} is not"
            " supported"
        )
        if hint:
            message += f" — {hint}"
        raise ValueError(message)


def require_full_axis(config: "RunConfig", stage: str) -> None:
    """Reject band-limited configs for stages whose verdict spans the axis.

    A band-limited sweep could miss violations outside the band, making
    the stage's whole-axis claim (a passivity certificate, a norm
    supremum) unsound.
    """
    if config.is_band_limited:
        raise ValueError(
            f"{stage} requires a full-axis sweep; a band-limited config"
            " (omega_min/omega_max) could miss behavior outside the band"
            " — leave both at their defaults"
        )


def _parse_optional_float(text: str) -> Optional[float]:
    text = text.strip()
    if not text or text.lower() in ("none", "auto"):
        return None
    return float(text)


def _checked_fields(mapping: Mapping[str, Any]) -> dict:
    """Reject unknown RunConfig field names with one canonical message."""
    valid = {f.name for f in fields(RunConfig)}
    unknown = sorted(set(mapping) - valid)
    if unknown:
        raise ValueError(
            f"unknown RunConfig field(s) {unknown};"
            f" valid fields: {sorted(valid)}"
        )
    return dict(mapping)


@dataclass(frozen=True)
class RunConfig:
    """Frozen bundle of the cross-cutting solver knobs.

    Parameters
    ----------
    num_threads:
        Worker threads; 1 selects a serial driver.
    representation:
        ``"scattering"`` (default) or ``"immittance"``.
    strategy:
        A registered strategy name or ``"auto"`` (bisection when serial,
        the dynamic queue scheduler otherwise).
    backend:
        Execution backend: ``"serial"`` (one worker, calling thread),
        ``"thread"`` (thread pool), ``"process"`` (multiprocessing pool
        with true multi-core scaling), or ``"auto"`` (default — defer to
        the strategy resolution, preserving the historical behavior).
    omega_min, omega_max:
        Search band on the frequency axis; ``omega_max=None`` triggers the
        automatic spectral-bound estimation of Sec. IV.A.
    options:
        :class:`~repro.core.options.SolverOptions` tuning knobs.
    cache:
        Result-store participation: ``"off"`` (default — bit-identical
        to the pre-store behavior), ``"read"`` (serve cached results,
        never write), or ``"readwrite"`` (serve hits and persist fresh
        results).  Cached payloads are the stages' own ``to_dict()``
        forms, keyed content-addressed on (input, config, stage); see
        :mod:`repro.store`.
    cache_dir:
        Store directory; ``None`` uses ``REPRO_CACHE_DIR`` or the
        platform cache location (``~/.cache/repro``).  Neither cache
        field enters the cache key — whether a run consults the store
        must not change what it computes.
    """

    num_threads: int = 1
    representation: str = "scattering"
    strategy: str = "auto"
    backend: str = "auto"
    omega_min: float = 0.0
    omega_max: Optional[float] = None
    options: SolverOptions = field(default_factory=SolverOptions)
    cache: str = "off"
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        # Store the validators' coerced values so the frozen config holds
        # plain Python ints/floats even when constructed from numpy
        # scalars or other numeric types (strings are rejected).
        object.__setattr__(
            self, "num_threads", ensure_positive_int(self.num_threads, "num_threads")
        )
        ensure_representation(self.representation)
        ensure_strategy(self.strategy)
        ensure_backend(self.backend)
        object.__setattr__(
            self, "omega_min", ensure_nonnegative_float(self.omega_min, "omega_min")
        )
        if self.omega_max is not None:
            omega_max = ensure_positive_float(self.omega_max, "omega_max")
            if omega_max <= self.omega_min:
                raise ValueError(
                    f"empty band: omega_max ({omega_max}) must exceed"
                    f" omega_min ({self.omega_min})"
                )
            object.__setattr__(self, "omega_max", omega_max)
        if not isinstance(self.options, SolverOptions):
            raise TypeError(
                "options must be a SolverOptions,"
                f" got {type(self.options).__name__}"
            )
        ensure_choice(self.cache, "cache", CACHE_MODES)
        if self.cache_dir is not None:
            if isinstance(self.cache_dir, os.PathLike):
                object.__setattr__(self, "cache_dir", os.fspath(self.cache_dir))
            elif not isinstance(self.cache_dir, str):
                raise TypeError(
                    "cache_dir must be a path string or None,"
                    f" got {type(self.cache_dir).__name__}"
                )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_legacy(
        cls,
        *,
        num_threads: int = 1,
        strategy: str = "auto",
        omega_max: Optional[float] = None,
        options: Optional[SolverOptions] = None,
    ) -> "RunConfig":
        """Build a config from the historical loose keyword arguments.

        The single adapter used by every free function that still accepts
        ``num_threads=`` / ``strategy=`` / ``options=`` keywords, so the
        kwargs→config translation lives in exactly one place.
        """
        return cls(
            num_threads=num_threads,
            strategy=strategy,
            omega_max=omega_max,
            options=options if options is not None else SolverOptions(),
        )

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "RunConfig":
        """Build a config from a plain mapping (e.g. parsed JSON).

        The ``options`` entry may be a :class:`SolverOptions` or a nested
        mapping of its fields.  Unknown keys raise, listing the valid ones.
        """
        if not isinstance(mapping, Mapping):
            raise TypeError(
                f"expected a mapping, got {type(mapping).__name__}"
            )
        kwargs = _checked_fields(mapping)
        options = kwargs.get("options")
        if isinstance(options, Mapping):
            kwargs["options"] = SolverOptions(**options)
        return cls(**kwargs)

    @classmethod
    def from_env(
        cls,
        environ: Optional[Mapping[str, str]] = None,
        *,
        base: Optional["RunConfig"] = None,
        prefix: str = ENV_PREFIX,
    ) -> "RunConfig":
        """Build a config from ``REPRO_*`` environment variables.

        Recognized variables (all optional; unset ones keep the ``base``
        value): ``REPRO_NUM_THREADS``, ``REPRO_REPRESENTATION``,
        ``REPRO_STRATEGY``, ``REPRO_BACKEND``, ``REPRO_OMEGA_MIN``,
        ``REPRO_OMEGA_MAX`` (``"none"``/``"auto"``/empty mean automatic),
        ``REPRO_CACHE`` (off/read/readwrite), ``REPRO_CACHE_DIR``,
        and ``REPRO_SEED`` (forwarded into ``options``).

        Raises
        ------
        ConfigError
            On any unparseable value, naming the offending variable.
        """
        environ = os.environ if environ is None else environ
        base = base if base is not None else cls()
        overrides: dict = {}

        def get(key: str) -> Optional[str]:
            value = environ.get(prefix + key)
            return None if value is None or value.strip() == "" else value

        def parse(key: str, raw: str, caster):
            # Uniform failure type naming the offending variable: a bare
            # int('four') error is useless to someone with several
            # REPRO_* variables set, and heterogeneous error types let
            # malformed values slip through layers that catch narrowly.
            try:
                return caster(raw)
            except (TypeError, ValueError) as exc:
                raise ConfigError(
                    f"invalid {prefix + key}={raw!r}: {exc}"
                ) from exc

        if (raw := get("NUM_THREADS")) is not None:
            overrides["num_threads"] = parse("NUM_THREADS", raw, int)
        if (raw := get("REPRESENTATION")) is not None:
            overrides["representation"] = raw.strip().lower()
        if (raw := get("STRATEGY")) is not None:
            overrides["strategy"] = raw.strip().lower()
        if (raw := get("BACKEND")) is not None:
            overrides["backend"] = raw.strip().lower()
        if (raw := get("OMEGA_MIN")) is not None:
            overrides["omega_min"] = parse("OMEGA_MIN", raw, float)
        if (raw := get("CACHE")) is not None:
            overrides["cache"] = raw.strip().lower()
        if (raw := get("CACHE_DIR")) is not None:
            overrides["cache_dir"] = raw.strip()
        # OMEGA_MAX checks raw presence: an empty value is the documented
        # way to clear a base band limit back to automatic (None).
        if (raw := environ.get(prefix + "OMEGA_MAX")) is not None:
            overrides["omega_max"] = parse("OMEGA_MAX", raw, _parse_optional_float)
        if (raw := get("SEED")) is not None:
            seed = (
                None
                if raw.strip().lower() == "none"
                else parse("SEED", raw, int)
            )
            overrides["options"] = base.options.with_(seed=seed)
        try:
            return base.merged(**overrides) if overrides else base
        except ConfigError:
            raise
        except ValueError as exc:
            # Re-raise semantic rejections (unknown strategy/backend, bad
            # band, non-positive threads) under the same uniform type so
            # callers can catch one exception for "the environment is
            # misconfigured" without also swallowing programming errors.
            raise ConfigError(str(exc)) from exc

    def merged(self, **overrides: Any) -> "RunConfig":
        """Return a copy with the given fields replaced (and re-validated).

        ``options`` may be given as a :class:`SolverOptions` or a mapping
        of field overrides applied on top of the current options.
        """
        if not overrides:
            return self
        overrides = _checked_fields(overrides)
        options = overrides.get("options")
        if isinstance(options, Mapping):
            overrides["options"] = self.options.with_(**options)
        elif options is None and "options" in overrides:
            overrides["options"] = SolverOptions()
        return replace(self, **overrides)

    # -- introspection ------------------------------------------------------

    @property
    def is_band_limited(self) -> bool:
        """True when the sweep band is user-restricted (not the full axis).

        The single definition shared by the passivity reports'
        ``band_limited`` flag, :func:`require_full_axis`, and the
        facade's full-axis stages.
        """
        return self.omega_min > 0.0 or self.omega_max is not None

    def resolved_strategy(self) -> str:
        """The concrete strategy ``"auto"`` resolves to for this config."""
        return resolve_strategy(
            self.strategy, self.num_threads, backend=self.backend
        ).name

    def to_dict(self) -> dict:
        """JSON-serializable dictionary round-tripping via :meth:`from_dict`."""
        return {
            "num_threads": self.num_threads,
            "representation": self.representation,
            "strategy": self.strategy,
            "backend": self.backend,
            "omega_min": self.omega_min,
            "omega_max": self.omega_max,
            "options": asdict(self.options),
            "cache": self.cache,
            "cache_dir": self.cache_dir,
        }
