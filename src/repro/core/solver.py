"""Public entry point of the Hamiltonian eigensolver.

:func:`solve` is the canonical engine: it takes a
:class:`~repro.core.config.RunConfig`, resolves the scheduling strategy
through the pluggable registry (:mod:`repro.core.registry`), and returns
a :class:`~repro.core.results.SolveResult` whose ``omegas`` attribute
holds the complete set of non-negative crossing frequencies (the paper's
``Omega`` on the upper half axis).

:func:`find_imaginary_eigenvalues` is the historical keyword-argument
spelling, kept as a thin adapter over :func:`solve`; new code should go
through the :class:`~repro.api.Macromodel` facade or call :func:`solve`
with an explicit config.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import RunConfig
from repro.core.drivers import ModelInput
from repro.core.options import SolverOptions
from repro.core.registry import resolve_strategy
from repro.core.results import SolveResult
from repro.obs import trace as _obs_trace
from repro.utils.guards import ensure_finite

__all__ = ["solve", "find_imaginary_eigenvalues"]


def solve(
    model: ModelInput, config: Optional[RunConfig] = None, **overrides
) -> SolveResult:
    """Compute all purely imaginary Hamiltonian eigenvalues under ``config``.

    Parameters
    ----------
    model:
        :class:`~repro.macromodel.rational.PoleResidueModel` or
        :class:`~repro.macromodel.simo.SimoRealization`.
    config:
        The run configuration; defaults apply when omitted.
    **overrides:
        Per-call :meth:`RunConfig.merged` overrides, e.g.
        ``solve(model, num_threads=8)``.

    Returns
    -------
    SolveResult
    """
    config = config if config is not None else RunConfig()
    if overrides:
        config = config.merged(**overrides)
    spec = resolve_strategy(
        config.strategy, config.num_threads, backend=config.backend
    )
    with _obs_trace.span(
        "solve.sweep",
        strategy=config.strategy,
        threads=config.num_threads,
    ):
        result = spec.driver(
            model,
            num_threads=config.num_threads,
            representation=config.representation,
            omega_min=config.omega_min,
            omega_max=config.omega_max,
            options=config.options,
        )
    # A NaN/Inf crossing frequency means the eigensolve itself broke
    # down (singular pencil, overflowed Hamiltonian) — surface it as a
    # structured diagnostic, never as a silently wrong passivity verdict.
    # Plugin drivers may return their own result type; only the standard
    # SolveResult shape is guarded.
    omegas = getattr(result, "omegas", None)
    if omegas is not None:
        ensure_finite(omegas, stage="solve", what="crossing frequencies")
    return result


def find_imaginary_eigenvalues(
    model: ModelInput,
    *,
    num_threads: int = 1,
    representation: str = "scattering",
    strategy: str = "auto",
    omega_min: float = 0.0,
    omega_max: Optional[float] = None,
    options: Optional[SolverOptions] = None,
) -> SolveResult:
    """Compute all purely imaginary eigenvalues of the model's Hamiltonian.

    This is the passivity characterization kernel of the paper: the
    returned crossing frequencies are exactly where singular values of
    ``H(j w)`` touch or cross 1 (scattering) or where ``H + H^H`` becomes
    singular (immittance).  An empty result certifies passivity under the
    strict asymptotic condition of eq. (4).

    Keyword-argument adapter over :func:`solve`; the arguments are exactly
    the fields of :class:`~repro.core.config.RunConfig`.

    Parameters
    ----------
    model:
        :class:`~repro.macromodel.rational.PoleResidueModel` or
        :class:`~repro.macromodel.simo.SimoRealization`.
    num_threads:
        Worker threads; 1 selects a serial driver.
    representation:
        ``"scattering"`` (default) or ``"immittance"``.
    strategy:
        Any name registered in :mod:`repro.core.registry` (built-ins:
        ``"bisection"``, ``"queue"``, ``"static"``) or ``"auto"`` —
        ``"bisection"`` when ``num_threads == 1``, else the dynamic
        ``"queue"`` scheduler.
    omega_min, omega_max:
        Search band on the frequency axis; ``omega_max=None`` estimates
        the upper edge from the largest Hamiltonian eigenvalue magnitude
        (Sec. IV.A).
    options:
        :class:`~repro.core.options.SolverOptions`; defaults when omitted.

    Returns
    -------
    SolveResult
        ``result.omegas`` — sorted crossing frequencies;
        ``result.shifts`` / ``result.work`` — per-shift provenance and
        work counters for performance studies.

    Examples
    --------
    >>> from repro.synth import random_macromodel
    >>> model = random_macromodel(order_per_column=6, num_ports=2, seed=0)
    >>> result = find_imaginary_eigenvalues(model, num_threads=2)
    >>> result.omegas.shape[0] == result.num_crossings
    True
    """
    config = RunConfig(
        num_threads=num_threads,
        representation=representation,
        strategy=strategy,
        omega_min=omega_min,
        omega_max=omega_max,
        options=options if options is not None else SolverOptions(),
    )
    return solve(model, config)
