"""Public entry point of the Hamiltonian eigensolver.

:func:`find_imaginary_eigenvalues` dispatches to the serial bisection
driver, the single-worker queue driver, or the multi-thread dynamic
scheduler, and returns a :class:`~repro.core.results.SolveResult` whose
``omegas`` attribute holds the complete set of non-negative crossing
frequencies (the paper's ``Omega`` on the upper half axis).
"""

from __future__ import annotations

from typing import Optional

from repro.core.drivers import ModelInput
from repro.core.options import SolverOptions
from repro.core.parallel import solve_parallel
from repro.core.results import SolveResult
from repro.core.serial import solve_serial

__all__ = ["find_imaginary_eigenvalues"]


def find_imaginary_eigenvalues(
    model: ModelInput,
    *,
    num_threads: int = 1,
    representation: str = "scattering",
    strategy: str = "auto",
    omega_min: float = 0.0,
    omega_max: Optional[float] = None,
    options: Optional[SolverOptions] = None,
) -> SolveResult:
    """Compute all purely imaginary eigenvalues of the model's Hamiltonian.

    This is the passivity characterization kernel of the paper: the
    returned crossing frequencies are exactly where singular values of
    ``H(j w)`` touch or cross 1 (scattering) or where ``H + H^H`` becomes
    singular (immittance).  An empty result certifies passivity under the
    strict asymptotic condition of eq. (4).

    Parameters
    ----------
    model:
        :class:`~repro.macromodel.rational.PoleResidueModel` or
        :class:`~repro.macromodel.simo.SimoRealization`.
    num_threads:
        Worker threads; 1 selects a serial driver.
    representation:
        ``"scattering"`` (default) or ``"immittance"``.
    strategy:
        * ``"auto"`` — ``"bisection"`` when ``num_threads == 1``, else the
          dynamic ``"queue"`` scheduler;
        * ``"bisection"`` — classical sequential bisection (serial only);
        * ``"queue"`` — dynamic scheduler (any thread count);
        * ``"static"`` — static pre-distributed grid (ablation baseline).
    omega_min, omega_max:
        Search band on the frequency axis; ``omega_max=None`` estimates
        the upper edge from the largest Hamiltonian eigenvalue magnitude
        (Sec. IV.A).
    options:
        :class:`~repro.core.options.SolverOptions`; defaults when omitted.

    Returns
    -------
    SolveResult
        ``result.omegas`` — sorted crossing frequencies;
        ``result.shifts`` / ``result.work`` — per-shift provenance and
        work counters for performance studies.

    Examples
    --------
    >>> from repro.synth import random_macromodel
    >>> model = random_macromodel(order_per_column=6, num_ports=2, seed=0)
    >>> result = find_imaginary_eigenvalues(model, num_threads=2)
    >>> result.omegas.shape[0] == result.num_crossings
    True
    """
    options = options if options is not None else SolverOptions()
    if strategy == "auto":
        strategy = "bisection" if num_threads == 1 else "queue"

    if strategy == "bisection":
        if num_threads != 1:
            raise ValueError(
                "the classical bisection strategy is inherently sequential;"
                " use strategy='queue' for multi-threaded sweeps"
            )
        return solve_serial(
            model,
            representation=representation,
            strategy="bisection",
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
        )
    if strategy == "queue":
        if num_threads == 1:
            return solve_serial(
                model,
                representation=representation,
                strategy="queue",
                omega_min=omega_min,
                omega_max=omega_max,
                options=options,
            )
        return solve_parallel(
            model,
            num_threads=num_threads,
            representation=representation,
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
            dynamic=True,
        )
    if strategy == "static":
        return solve_parallel(
            model,
            num_threads=num_threads,
            representation=representation,
            omega_min=omega_min,
            omega_max=omega_max,
            options=options,
            dynamic=False,
        )
    raise ValueError(
        f"unknown strategy {strategy!r}; expected 'auto', 'bisection',"
        " 'queue', or 'static'"
    )
