"""Argument validation helpers with consistent, informative error messages.

Every public entry point of the library validates its inputs through these
helpers so that user errors surface as :class:`ValueError` / :class:`TypeError`
with a uniform style, rather than as cryptic numpy broadcasting failures deep
inside a solver.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "ensure_matrix",
    "ensure_vector",
    "ensure_square",
    "ensure_real",
    "ensure_positive_int",
    "ensure_nonnegative_int",
    "ensure_positive_float",
    "ensure_nonnegative_float",
    "ensure_probability",
    "ensure_in_range",
    "ensure_choice",
    "ensure_sorted_frequencies",
]


def ensure_matrix(value, name: str, *, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a 2-D :class:`numpy.ndarray`.

    Parameters
    ----------
    value:
        Array-like input.
    name:
        Argument name used in error messages.
    dtype:
        Optional dtype to coerce to (e.g. ``float`` or ``complex``).

    Returns
    -------
    numpy.ndarray
        A 2-D array view/copy of the input.

    Raises
    ------
    ValueError
        If the input is not interpretable as a 2-D matrix.
    """
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D matrix, got ndim={arr.ndim}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def ensure_vector(
    value, name: str, *, dtype=None, allow_empty: bool = False
) -> np.ndarray:
    """Coerce ``value`` to a 1-D :class:`numpy.ndarray`.

    Raises
    ------
    ValueError
        If the input is not 1-D, is empty while ``allow_empty`` is false, or
        contains non-finite entries.
    """
    arr = np.atleast_1d(np.asarray(value, dtype=dtype))
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-D vector, got ndim={arr.ndim}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def ensure_square(value, name: str, *, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a square 2-D array."""
    arr = ensure_matrix(value, name, dtype=dtype)
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def ensure_real(value, name: str) -> np.ndarray:
    """Require an array to have negligible imaginary part and return it real.

    Arrays that are already real pass through untouched; complex arrays are
    accepted only when their imaginary part is exactly zero everywhere.
    """
    arr = np.asarray(value)
    if np.iscomplexobj(arr):
        if np.any(arr.imag != 0.0):
            raise ValueError(f"{name} must be real-valued")
        arr = arr.real
    return arr


def ensure_positive_int(value, name: str) -> int:
    """Validate a strictly positive integer scalar."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def ensure_nonnegative_int(value, name: str) -> int:
    """Validate an integer scalar >= 0."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def ensure_positive_float(value, name: str) -> float:
    """Validate a strictly positive finite float scalar."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be positive and finite, got {value}")
    return value


def ensure_nonnegative_float(value, name: str) -> float:
    """Validate a finite float scalar >= 0."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be non-negative and finite, got {value}")
    return value


def ensure_probability(value, name: str) -> float:
    """Validate a float in the closed interval [0, 1]."""
    value = ensure_nonnegative_float(value, name)
    if value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def ensure_in_range(value, name: str, lo: float, hi: float) -> float:
    """Validate a finite float in the closed interval [lo, hi]."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or not (lo <= value <= hi):
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value}")
    return value


def ensure_choice(value, name: str, choices) -> str:
    """Validate a string against a fixed set of allowed values.

    The single error message lists every valid choice, so all callers
    (config validation, registries, operators) reject unknown strings the
    same way.
    """
    if not isinstance(value, str):
        raise TypeError(f"{name} must be a string, got {type(value).__name__}")
    choices = tuple(choices)
    if value not in choices:
        listed = ", ".join(repr(c) for c in choices)
        raise ValueError(f"unknown {name} {value!r}; valid choices: {listed}")
    return value


def ensure_sorted_frequencies(freqs, name: str = "frequencies") -> np.ndarray:
    """Validate a strictly increasing, non-negative frequency grid."""
    arr = ensure_vector(freqs, name, dtype=float)
    if np.any(arr < 0.0):
        raise ValueError(f"{name} must be non-negative")
    if arr.size > 1 and np.any(np.diff(arr) <= 0.0):
        raise ValueError(f"{name} must be strictly increasing")
    return arr
