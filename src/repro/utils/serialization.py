"""Conversion of result objects to JSON-serializable primitives.

Every public result type (``SolveResult``, ``PassivityReport``,
``EnforcementResult``, ``HinfResult``, ``FitResult``, ...) exposes a
``to_dict()`` built on :func:`to_jsonable`, so machine consumers (the CLI
``--json`` flag, logging pipelines, services) get one uniform contract:

* numpy scalars become Python ints/floats;
* complex numbers become ``{"re": ..., "im": ...}`` objects;
* numpy arrays become (nested) lists, element-converted recursively;
* dataclasses, mappings, and sequences recurse;
* non-finite floats become ``None`` (JSON has no NaN/Inf).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping

import numpy as np

__all__ = ["to_jsonable"]


def _float(value: float) -> Any:
    value = float(value)
    return value if math.isfinite(value) else None


def _complex(value: complex) -> Any:
    return {"re": _float(value.real), "im": _float(value.imag)}


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable primitives."""
    if obj is None or isinstance(obj, (bool, str, int)):
        return obj
    if isinstance(obj, float):
        return _float(obj)
    if isinstance(obj, complex):
        return _complex(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return _float(obj)
    if isinstance(obj, np.complexfloating):
        return _complex(complex(obj))
    if isinstance(obj, np.ndarray):
        return [to_jsonable(item) for item in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        to_dict = getattr(obj, "to_dict", None)
        if callable(to_dict):
            return to_dict()
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    raise TypeError(f"cannot convert {type(obj).__name__} to a JSON-serializable value")
