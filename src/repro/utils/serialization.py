"""Conversion of result objects to and from JSON-serializable primitives.

Every public result type (``SolveResult``, ``PassivityReport``,
``EnforcementResult``, ``HinfResult``, ``FitResult``, ...) exposes a
``to_dict()`` built on :func:`to_jsonable`, so machine consumers (the CLI
``--json`` flag, logging pipelines, services) get one uniform contract:

* numpy scalars become Python ints/floats;
* complex numbers become ``{"re": ..., "im": ...}`` objects;
* numpy arrays become (nested) lists, element-converted recursively;
* dataclasses, mappings, and sequences recurse;
* non-finite floats become ``None`` (JSON has no NaN/Inf).

The inverse direction — needed by the content-addressed result store and
any service consuming cached ``to_dict()`` payloads — is covered by
:func:`float_from_jsonable`, :func:`complex_from_jsonable`, and
:func:`complex_array_from_jsonable`, which every result type's
``from_dict()`` builds on.  The pair round-trips exactly: JSON float
serialization uses ``repr`` (shortest round-trip), so
``to_jsonable(from_jsonable(x)) == x`` for every payload ``to_jsonable``
can produce.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping

import numpy as np

__all__ = [
    "to_jsonable",
    "float_from_jsonable",
    "complex_from_jsonable",
    "complex_array_from_jsonable",
    "float_array_from_jsonable",
]


def _float(value: float) -> Any:
    value = float(value)
    return value if math.isfinite(value) else None


def _complex(value: complex) -> Any:
    return {"re": _float(value.real), "im": _float(value.imag)}


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable primitives."""
    if obj is None or isinstance(obj, (bool, str, int)):
        return obj
    if isinstance(obj, float):
        return _float(obj)
    if isinstance(obj, complex):
        return _complex(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return _float(obj)
    if isinstance(obj, np.complexfloating):
        return _complex(complex(obj))
    if isinstance(obj, np.ndarray):
        return [to_jsonable(item) for item in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        to_dict = getattr(obj, "to_dict", None)
        if callable(to_dict):
            return to_dict()
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    raise TypeError(f"cannot convert {type(obj).__name__} to a JSON-serializable value")


# ---------------------------------------------------------------------------
# The inverse direction (JSON payload -> numerics)
# ---------------------------------------------------------------------------


def float_from_jsonable(value: Any) -> float:
    """Parse a float produced by :func:`to_jsonable` (``None`` -> NaN)."""
    if value is None:
        return float("nan")
    return float(value)


def complex_from_jsonable(value: Any) -> complex:
    """Parse a complex number produced by :func:`to_jsonable`.

    Accepts the ``{"re": ..., "im": ...}`` object form as well as plain
    reals (which :func:`to_jsonable` emits for float/int scalars).
    """
    if isinstance(value, Mapping):
        return complex(
            float_from_jsonable(value.get("re")), float_from_jsonable(value.get("im"))
        )
    if value is None:
        return complex(float("nan"), 0.0)
    return complex(value)


def complex_array_from_jsonable(values: Any, *, ndim: int = 1) -> np.ndarray:
    """Rebuild a complex ndarray from nested :func:`to_jsonable` lists.

    ``ndim`` shapes the empty case (an empty list carries no nesting
    information): ``np.empty((0,) * ndim)`` when there are no elements.
    """

    def build(node: Any) -> Any:
        if isinstance(node, list):
            return [build(item) for item in node]
        return complex_from_jsonable(node)

    if isinstance(values, list) and not values:
        return np.empty((0,) * max(1, ndim), dtype=complex)
    return np.asarray(build(values), dtype=complex)


def float_array_from_jsonable(values: Any, *, ndim: int = 1) -> np.ndarray:
    """Rebuild a float ndarray from nested :func:`to_jsonable` lists."""

    def build(node: Any) -> Any:
        if isinstance(node, list):
            return [build(item) for item in node]
        return float_from_jsonable(node)

    if isinstance(values, list) and not values:
        return np.empty((0,) * max(1, ndim), dtype=float)
    return np.asarray(build(values), dtype=float)
