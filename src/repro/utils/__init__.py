"""Shared low-level utilities for the repro package.

This subpackage collects numerics helpers that are reused across the
macromodel, Hamiltonian, and eigensolver layers:

* :mod:`repro.utils.validation` -- argument checking with consistent errors;
* :mod:`repro.utils.linalg` -- block-diagonal kernels used by the structured
  state-space realization and the Sherman-Morrison-Woodbury shift-invert;
* :mod:`repro.utils.timing` -- wall-clock and work-unit instrumentation;
* :mod:`repro.utils.rng` -- seeded random-stream management so the randomized
  Arnoldi restarts are reproducible;
* :mod:`repro.utils.logging` -- a tiny logging shim used by solvers.
"""

from repro.utils.rng import RandomStream, as_generator
from repro.utils.timing import Stopwatch, WorkCounter

__all__ = ["RandomStream", "as_generator", "Stopwatch", "WorkCounter"]
