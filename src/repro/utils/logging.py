"""Logging shim: a package-wide logger with a quiet default.

The solvers emit DEBUG-level traces of scheduler decisions (shift promoted,
disk covered, interval split, ...) which are invaluable when studying the
dynamic scheduling behaviour, but silent unless the caller opts in with
:func:`enable_debug_logging`.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_debug_logging"]

_PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """Return a child logger of the package root logger."""
    if name:
        return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")
    return logging.getLogger(_PACKAGE_LOGGER_NAME)


def enable_debug_logging(level: int = logging.DEBUG) -> logging.Logger:
    """Attach a stderr handler to the package logger and set its level.

    Safe to call repeatedly; only one handler is ever attached.
    """
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
