"""Logging shim: a package-wide logger with a quiet default.

The solvers emit DEBUG-level traces of scheduler decisions (shift promoted,
disk covered, interval split, ...) which are invaluable when studying the
dynamic scheduling behaviour, but silent unless the caller opts in with
:func:`enable_debug_logging`.

Structured mode: ``REPRO_LOG_FORMAT=json`` switches the handler to
single-line JSON records, and every record — text or JSON — carries the
``trace_id``/``span_id``/``job_id`` of the active trace context
(:mod:`repro.obs.trace`), making worker logs greppable by job.  The
environment is honored at package import via :func:`init_from_env`;
malformed values raise :class:`~repro.core.config.ConfigError` naming
the variable, the same strict contract as every other ``REPRO_*`` knob.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Optional

__all__ = [
    "ENV_LOG_FORMAT",
    "ENV_LOG_LEVEL",
    "LOG_ENV_VARS",
    "JsonLogFormatter",
    "TraceContextFilter",
    "enable_debug_logging",
    "get_logger",
    "init_from_env",
    "parse_log_format",
    "parse_log_level",
    "structured_logging_active",
]

ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"
ENV_LOG_FORMAT = "REPRO_LOG_FORMAT"

#: Every ``REPRO_LOG_*`` variable this module reads — the docs
#: anti-drift test walks this tuple.
LOG_ENV_VARS = (ENV_LOG_FORMAT, ENV_LOG_LEVEL)

_PACKAGE_LOGGER_NAME = "repro"
_TEXT_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"

#: Structured extras the JSON formatter lifts off the record when a call
#: site supplied them via ``extra=`` (the HTTP access log, workers).
_EXTRA_FIELDS = (
    "http_method",
    "http_path",
    "http_status",
    "duration_ms",
    "worker_id",
    "event",
)


def get_logger(name: str = "") -> logging.Logger:
    """Return a child logger of the package root logger."""
    if name:
        return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")
    return logging.getLogger(_PACKAGE_LOGGER_NAME)


class TraceContextFilter(logging.Filter):
    """Stamp ``trace_id``/``span_id``/``job_id`` from the active trace
    context onto every record, unless the call site already supplied
    them via ``extra=``."""

    def filter(self, record: logging.LogRecord) -> bool:
        from repro.obs import trace as _trace

        trace_id, span_id, job_id = _trace.current_ids()
        if getattr(record, "trace_id", None) is None:
            record.trace_id = trace_id
        if getattr(record, "span_id", None) is None:
            record.span_id = span_id
        if getattr(record, "job_id", None) is None:
            record.job_id = job_id
        return True


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line; correlation fields always present."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "trace_id": getattr(record, "trace_id", None),
            "span_id": getattr(record, "span_id", None),
            "job_id": getattr(record, "job_id", None),
        }
        for key in _EXTRA_FIELDS:
            value = getattr(record, key, None)
            if value is not None:
                payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def parse_log_level(raw: str) -> int:
    """Strictly parse a level name (``DEBUG``, ``info``, ...) or int."""
    value = raw.strip()
    try:
        return int(value)
    except ValueError:
        pass
    resolved = logging.getLevelName(value.upper())
    if isinstance(resolved, int):
        return resolved
    from repro.core.config import ConfigError

    raise ConfigError(
        f"invalid {ENV_LOG_LEVEL}={raw!r}: expected a level name"
        " (DEBUG, INFO, WARNING, ERROR, CRITICAL) or an integer"
    )


def parse_log_format(raw: str) -> str:
    """Strictly parse the output format: ``text`` or ``json``."""
    value = raw.strip().lower()
    if value in ("text", "json"):
        return value
    from repro.core.config import ConfigError

    raise ConfigError(
        f"invalid {ENV_LOG_FORMAT}={raw!r}: expected text or json"
    )


def enable_debug_logging(
    level: int = logging.DEBUG, fmt: Optional[str] = None
) -> logging.Logger:
    """Attach a stderr handler to the package logger and set its level.

    Safe to call repeatedly; only one handler is ever attached.  ``fmt``
    selects ``"text"`` (default) or ``"json"`` output; omitting it keeps
    whatever format a previous call installed.
    """
    logger = get_logger()
    logger.setLevel(level)
    handler = next(
        (h for h in logger.handlers if isinstance(h, logging.StreamHandler)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_TEXT_FORMAT))
        logger.addHandler(handler)
    if not any(isinstance(f, TraceContextFilter) for f in handler.filters):
        handler.addFilter(TraceContextFilter())
    if fmt is not None:
        handler.setFormatter(
            JsonLogFormatter()
            if fmt == "json"
            else logging.Formatter(_TEXT_FORMAT)
        )
    return logger


def structured_logging_active() -> bool:
    """True when the package handler emits JSON records."""
    return any(
        isinstance(h.formatter, JsonLogFormatter)
        for h in get_logger().handlers
    )


def init_from_env() -> Optional[logging.Logger]:
    """Honor ``REPRO_LOG_LEVEL``/``REPRO_LOG_FORMAT`` at package import.

    A no-op when neither variable is set (the library stays quiet by
    default); malformed values raise ``ConfigError`` naming the
    variable.  Setting only the format defaults the level to ``INFO``.
    """
    raw_level = os.environ.get(ENV_LOG_LEVEL)
    raw_format = os.environ.get(ENV_LOG_FORMAT)
    if raw_level is None and raw_format is None:
        return None
    level = (
        parse_log_level(raw_level) if raw_level is not None else logging.INFO
    )
    fmt = parse_log_format(raw_format) if raw_format is not None else "text"
    return enable_debug_logging(level, fmt=fmt)
