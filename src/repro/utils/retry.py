"""Bounded retry with exponential backoff and full jitter.

:func:`retry_call` is the one retry policy shared by every subsystem
that talks to infrastructure which can transiently fail — the SQLite
queue under ``SQLITE_BUSY`` storms, the on-disk result store under
concurrent-writer races — so backoff behaviour is uniform and tested in
one place instead of re-invented per call site.

The policy is deliberately conservative:

* **bounded** — at most ``max_attempts`` calls, never an infinite loop;
* **exponential backoff with full jitter** — attempt ``k`` sleeps a
  uniform random draw from ``[0, min(cap, base * 2**k)]``, the classic
  decorrelation that keeps a fleet of retriers from thundering in
  lockstep;
* **deadline-aware** — an optional wall-clock budget caps the total
  time spent retrying: when the next sleep would cross the deadline the
  last error is raised immediately instead of sleeping past it.

Which exceptions are retriable is the *caller's* decision (``retry_on``
— a predicate or an exception-type tuple); everything else propagates
on the first raise.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, Union

__all__ = ["RetryPolicy", "retry_call"]

RetryOn = Union[
    Callable[[BaseException], bool],
    Tuple[Type[BaseException], ...],
    Type[BaseException],
]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff parameters for :func:`retry_call`.

    Parameters
    ----------
    max_attempts:
        Total calls allowed (first try included); must be >= 1.
    base_seconds:
        Backoff scale: attempt ``k`` (0-based) draws its sleep from
        ``[0, min(cap_seconds, base_seconds * 2**k)]``.
    cap_seconds:
        Upper bound of any single sleep.
    deadline_seconds:
        Total wall-clock budget across all attempts; ``None`` means
        attempts alone bound the retry loop.
    """

    max_attempts: int = 5
    base_seconds: float = 0.02
    cap_seconds: float = 1.0
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_seconds < 0.0:
            raise ValueError(
                f"base_seconds must be >= 0, got {self.base_seconds}"
            )
        if self.cap_seconds < 0.0:
            raise ValueError(
                f"cap_seconds must be >= 0, got {self.cap_seconds}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0.0:
            raise ValueError(
                f"deadline_seconds must be positive, got"
                f" {self.deadline_seconds}"
            )

    def sleep_for(self, attempt: int, rng: random.Random) -> float:
        """The jittered sleep before retry number ``attempt`` (0-based)."""
        ceiling = min(self.cap_seconds, self.base_seconds * (2.0**attempt))
        return rng.uniform(0.0, ceiling)


def _matches(retry_on: RetryOn, exc: BaseException) -> bool:
    if isinstance(retry_on, type):
        return isinstance(exc, retry_on)
    if isinstance(retry_on, tuple):
        return isinstance(exc, retry_on)
    return bool(retry_on(exc))


def retry_call(
    func: Callable,
    *args,
    policy: Optional[RetryPolicy] = None,
    retry_on: RetryOn = (Exception,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    **kwargs,
):
    """Call ``func(*args, **kwargs)``, retrying transient failures.

    Parameters
    ----------
    func:
        The operation; it must be safe to re-run (the caller guarantees
        idempotence of a retried attempt).
    policy:
        :class:`RetryPolicy`; defaults apply when omitted.
    retry_on:
        Exception type(s) or a predicate deciding which failures are
        transient.  Non-matching exceptions propagate immediately.
    on_retry:
        Observer called as ``on_retry(attempt, exc)`` before each
        retry sleep (counters, logging).
    rng:
        Jitter source (deterministic tests inject a seeded one).
    sleep:
        Sleep function (tests inject a recorder).

    Raises
    ------
    The last exception, once attempts or the deadline are exhausted.
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = rng if rng is not None else random.Random()
    deadline = (
        time.monotonic() + policy.deadline_seconds
        if policy.deadline_seconds is not None
        else None
    )
    for attempt in range(policy.max_attempts):
        try:
            return func(*args, **kwargs)
        except BaseException as exc:
            last_attempt = attempt == policy.max_attempts - 1
            if last_attempt or not _matches(retry_on, exc):
                raise
            pause = policy.sleep_for(attempt, rng)
            if deadline is not None and time.monotonic() + pause >= deadline:
                # Sleeping would blow the budget: fail now, honestly.
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(pause)
    raise AssertionError("unreachable: the loop returns or raises")
