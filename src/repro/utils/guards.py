"""Numerical guards: NaN/Inf and conditioning checks for the hot paths.

A passivity *certificate* built on poisoned numerics is worse than a
crash: it is a wrong answer delivered confidently.  These guards sit at
the entry/exit of the fit, solve, and simulate stages and convert
silent numerical poison into a structured :class:`NumericalError` —
which the batch runner records as a per-job diagnostic
(:attr:`~repro.batch.runner.JobResult.diagnostic`) instead of a raw
traceback, so fleet reports can aggregate *why* jobs failed.

:class:`NumericalError` subclasses :class:`ArithmeticError` first (its
semantic home) and :class:`ValueError` second, preserving the public
contract that feeding non-finite samples to e.g. :func:`vector_fit`
raises ``ValueError``.  The batch runner catches ``NumericalError``
*before* any generic handler, and the service/store layers only catch
``ValueError`` around key computation and payload decoding — never
around stage execution — so the diagnostic cannot be swallowed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "CONDITION_LIMIT",
    "NumericalError",
    "ensure_finite",
    "check_conditioning",
]

#: Condition numbers beyond this are treated as numerically meaningless
#: (double precision keeps ~16 digits; 1e12 leaves ~4 trustworthy ones).
CONDITION_LIMIT = 1e12


class NumericalError(ArithmeticError, ValueError):
    """A stage produced (or was handed) numerically meaningless data.

    Attributes
    ----------
    stage:
        Pipeline stage that tripped the guard (``"fit"``, ``"solve"``,
        ``"simulate"``, ...).
    kind:
        ``"nan"``, ``"inf"``, or ``"conditioning"``.
    detail:
        Structured context (array name, condition estimate, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str,
        kind: str,
        detail: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.stage = str(stage)
        self.kind = str(kind)
        self.detail = dict(detail or {})

    def to_dict(self) -> dict:
        """JSON-serializable diagnostic (attached to ``JobResult``)."""
        return {
            "type": "NumericalError",
            "stage": self.stage,
            "kind": self.kind,
            "message": str(self),
            "detail": self.detail,
        }


def ensure_finite(array, *, stage: str, what: str) -> np.ndarray:
    """Raise :class:`NumericalError` when ``array`` holds NaN or Inf.

    Returns the input (as an ndarray) so the guard can be used inline.
    """
    arr = np.asarray(array)
    if arr.size == 0 or np.all(np.isfinite(arr)):
        return arr
    # NaN first: an array holding both is reported as NaN-poisoned,
    # which is almost always the root cause.
    has_nan = bool(np.any(np.isnan(arr)))
    kind = "nan" if has_nan else "inf"
    bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
    raise NumericalError(
        f"{what} contains {bad} non-finite value(s)"
        f" ({'NaN' if has_nan else 'Inf'}) in the {stage} stage",
        stage=stage,
        kind=kind,
        detail={"what": what, "bad_values": bad, "shape": list(arr.shape)},
    )


def check_conditioning(
    matrix,
    *,
    stage: str,
    what: str,
    limit: float = CONDITION_LIMIT,
) -> float:
    """Raise :class:`NumericalError` on a pathologically conditioned matrix.

    Returns the 2-norm condition estimate.  Meant for matrices that are
    formed once and then drive a whole stage (e.g. the trapezoidal-rule
    system ``I - A dt/2``), where a near-singular system silently turns
    the entire transient into noise.
    """
    mat = ensure_finite(matrix, stage=stage, what=what)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1] or mat.shape[0] == 0:
        return 1.0
    cond = float(np.linalg.cond(mat))
    if not np.isfinite(cond) or cond > limit:
        raise NumericalError(
            f"{what} is pathologically conditioned in the {stage} stage"
            f" (cond ~ {cond:.3e}, limit {limit:.1e})",
            stage=stage,
            kind="conditioning",
            detail={"what": what, "condition": cond, "limit": limit},
        )
    return cond
