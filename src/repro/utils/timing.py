"""Wall-clock and work-unit instrumentation.

The paper evaluates its parallel solver by CPU time and speedup factors
(Table I, Fig. 6).  A CPython reproduction cannot rely on wall-clock alone
(the GIL serializes pure-Python bookkeeping), so every solver in this
library *also* counts abstract work units: operator applications, Arnoldi
steps, restarts, and shift iterations.  Work-based speedups expose the
scheduler's behaviour — including the superlinear effect of dynamic shift
elimination — independently of the host interpreter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Stopwatch", "WorkCounter"]


class Stopwatch:
    """A simple re-entrant wall-clock stopwatch.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Stopwatch":
        """Start (or restart) timing; returns self for chaining."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the accumulated elapsed seconds."""
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time."""
        self._elapsed = 0.0
        self._started_at = None

    @property
    def elapsed(self) -> float:
        """Accumulated seconds, including any currently running span."""
        running = 0.0
        if self._started_at is not None:
            running = time.perf_counter() - self._started_at
        return self._elapsed + running

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class WorkCounter:
    """Thread-safe accumulator of abstract solver work units.

    Attributes
    ----------
    operator_applies:
        Number of shift-inverted (or plain) Hamiltonian operator
        applications — the dominant O(n p) kernel.
    arnoldi_steps:
        Number of Krylov basis extensions (each includes one operator apply
        plus orthogonalization).
    restarts:
        Number of explicit Arnoldi restarts.
    shifts_processed:
        Number of completed single-shift iterations.
    shifts_eliminated:
        Number of tentative shifts removed from the queue *without* being
        processed, because a completed convergence disk covered them
        (eq. 24 of the paper).  This is the source of superlinear speedup.
    small_solves:
        Number of dense 2p x 2p core factorizations/solves.
    """

    operator_applies: int = 0
    arnoldi_steps: int = 0
    restarts: int = 0
    shifts_processed: int = 0
    shifts_eliminated: int = 0
    small_solves: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, **counts: int) -> None:
        """Atomically add increments, e.g. ``counter.add(arnoldi_steps=1)``."""
        with self._lock:
            for key, value in counts.items():
                if not hasattr(self, key) or key.startswith("_"):
                    raise AttributeError(f"unknown work counter field: {key}")
                setattr(self, key, getattr(self, key) + int(value))

    def merge(self, other: "WorkCounter") -> None:
        """Atomically accumulate the counts of another counter into this one."""
        with self._lock:
            self.operator_applies += other.operator_applies
            self.arnoldi_steps += other.arnoldi_steps
            self.restarts += other.restarts
            self.shifts_processed += other.shifts_processed
            self.shifts_eliminated += other.shifts_eliminated
            self.small_solves += other.small_solves

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the counts."""
        with self._lock:
            return {
                "operator_applies": self.operator_applies,
                "arnoldi_steps": self.arnoldi_steps,
                "restarts": self.restarts,
                "shifts_processed": self.shifts_processed,
                "shifts_eliminated": self.shifts_eliminated,
                "small_solves": self.small_solves,
            }

    @property
    def total_work(self) -> int:
        """Scalar work metric: operator applies dominate the runtime."""
        with self._lock:
            return self.operator_applies + 4 * self.small_solves
