"""Seeded random-stream management.

The multi-shift eigensolver restarts its Arnoldi iterations from random
vectors (Sec. V of the paper discusses the resulting run-to-run statistical
variation).  To make experiments reproducible while still allowing genuinely
independent randomized runs, all random numbers in the library flow through
:class:`RandomStream`, which can spawn statistically independent child
streams — one per shift — deterministically from a root seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RandomStream", "as_generator"]

SeedLike = Union[None, int, np.random.Generator, "RandomStream"]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Normalize any seed-like object to a :class:`numpy.random.Generator`."""
    if isinstance(seed, RandomStream):
        return seed.generator
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RandomStream:
    """A reproducible, forkable source of random vectors.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws entropy from the OS (non-reproducible);
        an integer gives a reproducible stream.

    Notes
    -----
    Child streams created by :meth:`spawn` are independent of the parent and
    of each other regardless of the order in which the parent is used, which
    is exactly what the parallel solver needs: each single-shift iteration
    owns a private child stream keyed by its shift index, so the eigenvalues
    found do not depend on thread interleaving.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, RandomStream):
            self._seed_seq = seed._seed_seq.spawn(1)[0]
        elif isinstance(seed, np.random.Generator):
            # Derive a sequence from the generator's own bit stream.
            self._seed_seq = np.random.SeedSequence(int(seed.integers(0, 2**63)))
        else:
            self._seed_seq = np.random.SeedSequence(seed)
        self._generator = np.random.default_rng(self._seed_seq)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    def spawn(self, key: Optional[int] = None) -> "RandomStream":
        """Create an independent child stream.

        Parameters
        ----------
        key:
            Optional integer key.  When given, the child is derived
            deterministically from ``(root_entropy, key)`` so that the same
            key always yields the same stream, independent of call order.
        """
        if key is None:
            child_seq = self._seed_seq.spawn(1)[0]
        else:
            child_seq = np.random.SeedSequence(
                entropy=self._seed_seq.entropy, spawn_key=(int(key),)
            )
        child = object.__new__(RandomStream)
        child._seed_seq = child_seq
        child._generator = np.random.default_rng(child_seq)
        return child

    def complex_vector(self, size: int) -> np.ndarray:
        """Draw a unit-norm complex vector (Arnoldi start vector)."""
        v = self._generator.standard_normal(
            size
        ) + 1j * self._generator.standard_normal(size)
        norm = np.linalg.norm(v)
        if norm == 0.0:  # astronomically unlikely, but stay safe
            v = np.ones(size, dtype=complex)
            norm = np.sqrt(size)
        return v / norm

    def real_vector(self, size: int) -> np.ndarray:
        """Draw a unit-norm real vector."""
        v = self._generator.standard_normal(size)
        norm = np.linalg.norm(v)
        if norm == 0.0:
            v = np.ones(size, dtype=float)
            norm = np.sqrt(size)
        return v / norm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStream(entropy={self._seed_seq.entropy!r})"
