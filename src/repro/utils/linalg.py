"""Dense and structured linear-algebra kernels.

The structured SIMO realization of the paper (eq. 2) stores the state matrix
``A`` as a block diagonal of 1x1 blocks (real poles) and 2x2 rotation-like
blocks (complex-conjugate pole pairs after the real transformation of
ref. [9]).  The kernels here solve shifted systems against such blocks in
O(n) vectorized numpy operations — the workhorse behind the O(n p)
Sherman-Morrison-Woodbury shift-invert of eq. (6).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "blkdiag",
    "solve_shifted_diagonal",
    "solve_shifted_diagonal_many",
    "solve_shifted_rot2",
    "solve_shifted_rot2_many",
    "apply_rot2",
    "orthonormalize_against",
    "relative_spacing",
]


def blkdiag(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Assemble a dense block-diagonal matrix from a sequence of blocks.

    Equivalent to :func:`scipy.linalg.block_diag` but accepts an empty
    sequence (returning a 0x0 array) and always promotes to a common dtype.
    """
    mats = [np.atleast_2d(np.asarray(b)) for b in blocks]
    if not mats:
        return np.zeros((0, 0))
    dtype = np.result_type(*[m.dtype for m in mats])
    rows = sum(m.shape[0] for m in mats)
    cols = sum(m.shape[1] for m in mats)
    out = np.zeros((rows, cols), dtype=dtype)
    r = c = 0
    for m in mats:
        out[r : r + m.shape[0], c : c + m.shape[1]] = m
        r += m.shape[0]
        c += m.shape[1]
    return out


def solve_shifted_diagonal(
    diag: np.ndarray, shift: complex, rhs: np.ndarray
) -> np.ndarray:
    """Solve ``(diag(d) - shift*I) x = rhs`` element-wise.

    Parameters
    ----------
    diag:
        1-D array of diagonal entries ``d``.
    shift:
        Complex shift.
    rhs:
        Right-hand side with leading dimension ``len(diag)``; trailing
        dimensions are broadcast (each column solved independently).

    Raises
    ------
    ZeroDivisionError
        If the shift coincides (to machine precision) with a diagonal entry,
        making the block singular.
    """
    diag = np.asarray(diag)
    denom = diag - shift
    if denom.size and np.min(np.abs(denom)) == 0.0:
        raise ZeroDivisionError(
            "shift coincides with a real pole; shifted block is singular"
        )
    if rhs.ndim == 1:
        return rhs / denom
    return rhs / denom[:, None]


def solve_shifted_diagonal_many(
    diag: np.ndarray, shifts: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve ``(diag(d) - shift_k*I) x_k = rhs`` for a whole batch of shifts.

    The multi-shift companion of :func:`solve_shifted_diagonal`: the
    right-hand side is *shared* across shifts (the multi-shift structure of
    frequency sweeps, where ``B`` is fixed and only the evaluation point
    moves), so the solves reduce to one broadcast divide.

    Parameters
    ----------
    diag:
        1-D array of diagonal entries ``d`` (length ``m``).
    shifts:
        1-D array of ``K`` complex shifts.
    rhs:
        Shared right-hand side of shape ``(m,)`` or ``(m, j)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(K, m)`` or ``(K, m, j)`` — one solution per shift.

    Raises
    ------
    ZeroDivisionError
        If any shift coincides (to machine precision) with a diagonal entry.
    """
    diag = np.asarray(diag)
    shifts = np.asarray(shifts)
    rhs = np.asarray(rhs)
    denom = diag[None, :] - shifts[:, None]  # (K, m)
    if denom.size and np.min(np.abs(denom)) == 0.0:
        raise ZeroDivisionError(
            "shift coincides with a real pole; shifted block is singular"
        )
    if rhs.ndim == 1:
        return rhs[None, :] / denom
    return rhs[None, :, :] / denom[:, :, None]


def apply_rot2(alpha: np.ndarray, beta: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Apply a batch of 2x2 blocks ``[[alpha, beta], [-beta, alpha]]``.

    Parameters
    ----------
    alpha, beta:
        1-D arrays of length ``m`` (one entry per 2x2 block).
    x:
        Array of shape ``(m, 2)`` or ``(m, 2, k)`` holding the per-block
        input vectors.

    Returns
    -------
    numpy.ndarray
        Same shape as ``x``.
    """
    alpha = np.asarray(alpha)
    beta = np.asarray(beta)
    x = np.asarray(x)
    if x.ndim == 2:
        out = np.empty_like(x, dtype=np.result_type(x.dtype, alpha.dtype))
        out[:, 0] = alpha * x[:, 0] + beta * x[:, 1]
        out[:, 1] = -beta * x[:, 0] + alpha * x[:, 1]
        return out
    out = np.empty_like(x, dtype=np.result_type(x.dtype, alpha.dtype))
    out[:, 0, :] = alpha[:, None] * x[:, 0, :] + beta[:, None] * x[:, 1, :]
    out[:, 1, :] = -beta[:, None] * x[:, 0, :] + alpha[:, None] * x[:, 1, :]
    return out


def solve_shifted_rot2(
    alpha: np.ndarray, beta: np.ndarray, shift: complex, rhs: np.ndarray
) -> np.ndarray:
    """Solve a batch of shifted 2x2 systems.

    Each block has the rotation-like form ``[[alpha, beta], [-beta, alpha]]``
    (the real realization of a complex pole pair ``alpha +/- j*beta``); the
    systems solved are ``(block - shift*I2) x = rhs`` for every block at
    once.

    The inverse of ``[[a, b], [-b, a]]`` (with ``a = alpha - shift``,
    ``b = beta``) is ``[[a, -b], [b, a]] / (a^2 + b^2)``.

    Parameters
    ----------
    alpha, beta:
        1-D arrays of length ``m``.
    shift:
        Complex shift.
    rhs:
        Array of shape ``(m, 2)`` or ``(m, 2, k)``.

    Raises
    ------
    ZeroDivisionError
        If the shift coincides with one of the block eigenvalues
        ``alpha +/- j*beta``.
    """
    alpha = np.asarray(alpha)
    beta = np.asarray(beta)
    rhs = np.asarray(rhs)
    a = alpha - shift
    b = beta
    det = a * a + b * b
    if det.size and np.min(np.abs(det)) == 0.0:
        raise ZeroDivisionError(
            "shift coincides with a complex pole; shifted block is singular"
        )
    if rhs.ndim == 2:
        out = np.empty(rhs.shape, dtype=np.result_type(rhs.dtype, det.dtype))
        out[:, 0] = (a * rhs[:, 0] - b * rhs[:, 1]) / det
        out[:, 1] = (b * rhs[:, 0] + a * rhs[:, 1]) / det
        return out
    out = np.empty(rhs.shape, dtype=np.result_type(rhs.dtype, det.dtype))
    det_c = det[:, None]
    out[:, 0, :] = (a[:, None] * rhs[:, 0, :] - b[:, None] * rhs[:, 1, :]) / det_c
    out[:, 1, :] = (b[:, None] * rhs[:, 0, :] + a[:, None] * rhs[:, 1, :]) / det_c
    return out


def solve_shifted_rot2_many(
    alpha: np.ndarray, beta: np.ndarray, shifts: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve the shifted 2x2 batch of :func:`solve_shifted_rot2` for many shifts.

    The right-hand side is shared across the ``K`` shifts; every
    ``(block, shift)`` combination is solved with one broadcast expression
    using the closed-form inverse of ``[[a, b], [-b, a]]``.

    Parameters
    ----------
    alpha, beta:
        1-D arrays of length ``m`` (one entry per 2x2 block).
    shifts:
        1-D array of ``K`` complex shifts.
    rhs:
        Shared right-hand side of shape ``(m, 2)`` or ``(m, 2, j)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(K, m, 2)`` or ``(K, m, 2, j)``.

    Raises
    ------
    ZeroDivisionError
        If any shift coincides with a block eigenvalue ``alpha +/- j*beta``.
    """
    alpha = np.asarray(alpha)
    beta = np.asarray(beta)
    shifts = np.asarray(shifts)
    rhs = np.asarray(rhs)
    a = alpha[None, :] - shifts[:, None]  # (K, m)
    b = beta  # (m,)
    det = a * a + (b * b)[None, :]
    if det.size and np.min(np.abs(det)) == 0.0:
        raise ZeroDivisionError(
            "shift coincides with a complex pole; shifted block is singular"
        )
    dtype = np.result_type(rhs.dtype, det.dtype)
    if rhs.ndim == 2:
        out = np.empty((shifts.size,) + rhs.shape, dtype=dtype)
        out[:, :, 0] = (a * rhs[None, :, 0] - b[None, :] * rhs[None, :, 1]) / det
        out[:, :, 1] = (b[None, :] * rhs[None, :, 0] + a * rhs[None, :, 1]) / det
        return out
    out = np.empty((shifts.size,) + rhs.shape, dtype=dtype)
    a3 = a[:, :, None]
    b3 = b[None, :, None]
    det3 = det[:, :, None]
    out[:, :, 0, :] = (a3 * rhs[None, :, 0, :] - b3 * rhs[None, :, 1, :]) / det3
    out[:, :, 1, :] = (b3 * rhs[None, :, 0, :] + a3 * rhs[None, :, 1, :]) / det3
    return out


def orthonormalize_against(basis: np.ndarray, vector: np.ndarray, *, passes: int = 2):
    """Orthonormalize ``vector`` against the columns of ``basis``.

    Uses classical Gram-Schmidt with ``passes`` re-orthogonalization sweeps
    ("twice is enough", Kahan/Parlett) — each sweep is a pair of BLAS-2
    products, which is both faster and numerically tighter than one
    element-at-a-time modified Gram-Schmidt pass in floating point.

    Parameters
    ----------
    basis:
        ``(n, k)`` array with orthonormal columns (``k`` may be 0).
    vector:
        Length-``n`` vector to orthogonalize.
    passes:
        Number of projection sweeps (2 is the robust default).

    Returns
    -------
    (coeffs, norm, q):
        ``coeffs`` — accumulated projection coefficients (length ``k``);
        ``norm`` — the norm of the orthogonalized remainder;
        ``q`` — the unit remainder, or ``None`` when the remainder vanished
        (vector was numerically inside ``span(basis)``).
    """
    basis = np.asarray(basis)
    w = np.array(vector, dtype=np.result_type(vector, basis.dtype), copy=True)
    k = basis.shape[1] if basis.ndim == 2 else 0
    coeffs = np.zeros(k, dtype=w.dtype)
    original_norm = np.linalg.norm(w)
    for _ in range(max(1, passes)):
        if k == 0:
            break
        proj = basis.conj().T @ w
        w -= basis @ proj
        coeffs += proj
    norm = float(np.linalg.norm(w))
    # Breakdown detection: the remainder is in span(basis) to machine
    # precision when its norm collapsed by ~eps relative to the input.
    if original_norm == 0.0 or norm <= 1e-14 * max(1.0, original_norm):
        return coeffs, 0.0, None
    return coeffs, norm, w / norm


def relative_spacing(values: np.ndarray) -> float:
    """Return the smallest relative gap between sorted real values.

    Used by tests to reason about eigenvalue cluster resolvability; returns
    ``inf`` for fewer than two values.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size < 2:
        return float("inf")
    scale = max(1.0, float(np.max(np.abs(arr))))
    return float(np.min(np.diff(arr)) / scale)
