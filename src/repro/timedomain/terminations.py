"""Port termination networks: closing the p-port into a simulable system.

A scattering macromodel maps incident waves ``a`` to reflected waves
``b = H a``.  Embedding it in a circuit means terminating each port with
a resistive source network: a Thevenin source of impedance ``R_k``
behind port k re-injects part of the reflected wave,

.. math::

    a_k(t) = \\Gamma_k\\, b_k(t) + e_k(t), \\qquad
    \\Gamma_k = \\frac{R_k - z_0}{R_k + z_0},

where ``e_k`` is the source wave (the stimulus) and ``Gamma_k`` the
termination's reflection coefficient.  ``R_k = z_0`` (matched, the
default) gives ``Gamma = 0`` — the open-loop case where the stimulus
drives the ports directly.  ``R_k = 0`` is a short (``Gamma = -1``),
``R_k = inf`` an open (``Gamma = +1``).

The integrators absorb the algebraic loop exactly: with the one-step
input coupling of the discretized model the per-step feedback equation
is linear, so each step solves a precomputed ``p x p`` system instead of
iterating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["Termination"]


@dataclass(frozen=True)
class Termination:
    """Per-port resistive termination (immutable, JSON-serializable).

    Parameters
    ----------
    resistances:
        Per-port termination resistances in ohms; ``None`` (default)
        terminates every port with the reference impedance ``z0``
        (matched — no reflections).  A single float broadcasts to all
        ports.  ``0.0`` shorts a port, ``math.inf`` leaves it open.
    z0:
        Reference impedance of the wave variables.
    """

    resistances: Optional[Tuple[float, ...]] = None
    z0: float = 50.0

    def __post_init__(self):
        if not (self.z0 > 0.0 and math.isfinite(self.z0)):
            raise ValueError(f"z0 must be positive and finite, got {self.z0}")
        if self.resistances is not None:
            if isinstance(self.resistances, (int, float)):
                object.__setattr__(
                    self, "resistances", (float(self.resistances),)
                )
            else:
                object.__setattr__(
                    self,
                    "resistances",
                    tuple(float(r) for r in self.resistances),
                )
            for r in self.resistances:
                if math.isnan(r) or r < 0.0:
                    raise ValueError(
                        f"resistances must be >= 0 (inf = open), got {r}"
                    )

    @classmethod
    def matched(cls, *, z0: float = 50.0) -> "Termination":
        """All ports terminated with the reference impedance."""
        return cls(resistances=None, z0=z0)

    @property
    def is_matched(self) -> bool:
        """True when every port reflection coefficient is zero."""
        if self.resistances is None:
            return True
        return all(r == self.z0 for r in self.resistances)

    def gamma(self, num_ports: int) -> np.ndarray:
        """Per-port reflection coefficients, shape ``(num_ports,)``."""
        if self.resistances is None:
            return np.zeros(num_ports, dtype=float)
        if len(self.resistances) == 1:
            rs = np.full(num_ports, self.resistances[0], dtype=float)
        elif len(self.resistances) == num_ports:
            rs = np.asarray(self.resistances, dtype=float)
        else:
            raise ValueError(
                f"termination names {len(self.resistances)} resistances but"
                f" the model has {num_ports} ports"
            )
        with np.errstate(invalid="ignore"):
            gamma = (rs - self.z0) / (rs + self.z0)
        gamma[np.isinf(rs)] = 1.0
        return gamma

    def to_dict(self) -> dict:
        """JSON-serializable description (exact :meth:`from_dict` inverse).

        Infinite resistances (open ports) serialize as the string
        ``"inf"`` — JSON has no infinity literal and the canonical cache
        keys reject NaN/Inf floats.
        """
        resistances = None
        if self.resistances is not None:
            resistances = [
                "inf" if math.isinf(r) else float(r) for r in self.resistances
            ]
        return {"resistances": resistances, "z0": float(self.z0)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Termination":
        """Rebuild a termination from a :meth:`to_dict` payload."""
        resistances = payload.get("resistances")
        if resistances is not None:
            resistances = tuple(
                math.inf if r == "inf" else float(r) for r in resistances
            )
        return cls(resistances=resistances, z0=float(payload.get("z0", 50.0)))

    def __repr__(self) -> str:
        if self.resistances is None:
            return f"Termination(matched, z0={self.z0:g})"
        return f"Termination(R={list(self.resistances)}, z0={self.z0:g})"
