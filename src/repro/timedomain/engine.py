"""The transient engine: stimulus + integrator + termination -> result.

:func:`simulate` is the subsystem's front door: it synthesizes the
stimulus waveforms, closes the port loop through the termination
network, advances the model with the chosen integrator, meters the port
energies, and packages everything as an immutable, JSON-serializable
:class:`SimulationResult` — the object the :class:`~repro.api.Macromodel`
facade, the CLI, the batch runner, and the HTTP service all share.

The default configuration (matched termination, recursive convolution,
timestep resolving the fastest pole) is chosen so that
``simulate(model)`` on any stable macromodel is a one-liner that either
witnesses a passivity violation (``energy.energy_gain > 1``) or
demonstrates a contractive response.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.macromodel.simo import SimoRealization
from repro.macromodel.statespace import StateSpace
from repro.timedomain.energy import DEFAULT_ENERGY_TOL, EnergyReport, energy_report
from repro.timedomain.integrators import (
    DISCRETIZATIONS,
    closed_loop_response,
)
from repro.timedomain.stimulus import Stimulus
from repro.timedomain.terminations import Termination
from repro.utils.serialization import (
    float_array_from_jsonable,
    float_from_jsonable,
    to_jsonable,
)
from repro.utils.validation import (
    ensure_choice,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = [
    "INTEGRATORS",
    "SimulationResult",
    "default_timestep",
    "simulate",
]

#: Integrators the engine dispatches on.
INTEGRATORS = ("recursive", "statespace")

ModelLike = Union[PoleResidueModel, SimoRealization, StateSpace]


def _model_poles(model: ModelLike) -> np.ndarray:
    if isinstance(model, PoleResidueModel):
        return model.poles
    return model.poles()


def default_timestep(
    model: ModelLike, *, oversample: float = 16.0, freq: Optional[float] = None
) -> float:
    """Timestep resolving the model's fastest dynamics.

    ``2 pi / (oversample * w_max)`` with ``w_max`` the largest pole
    magnitude (and the stimulus tone frequency, when given) — the
    default puts ~16 samples on the fastest natural period.
    """
    ensure_positive_float(oversample, "oversample")
    poles = np.asarray(_model_poles(model))
    w_max = float(np.max(np.abs(poles))) if poles.size else 1.0
    if freq is not None:
        w_max = max(w_max, float(freq))
    w_max = max(w_max, 1e-12)
    return 2.0 * np.pi / (oversample * w_max)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one transient run (immutable, JSON-serializable).

    Attributes
    ----------
    integrator:
        ``"recursive"`` or ``"statespace"``.
    discretization:
        The state-space rule used (``None`` for recursive convolution).
    dt, num_steps:
        The time grid.
    stimulus, termination:
        The excitation and the closing network, by value.
    energy:
        The :class:`EnergyReport` passivity witness.
    elapsed:
        Wall-clock seconds the integration took.
    incident, reflected:
        The simulated port waves ``(num_steps, p)``; ``None`` when the
        run was asked not to keep waveforms (compact results for the
        store/service tier).
    """

    integrator: str
    discretization: Optional[str]
    dt: float
    num_steps: int
    stimulus: Stimulus
    termination: Termination
    energy: EnergyReport
    elapsed: float
    incident: Optional[np.ndarray] = None
    reflected: Optional[np.ndarray] = None

    @property
    def energy_gain(self) -> float:
        """Shortcut to the witness number (``energy.energy_gain``)."""
        return self.energy.energy_gain

    @property
    def times(self) -> np.ndarray:
        """The sample instants ``0, dt, ..., (num_steps - 1) dt``."""
        return np.arange(self.num_steps) * self.dt

    def without_waveforms(self) -> "SimulationResult":
        """A compact copy with the waveform arrays dropped."""
        if self.incident is None and self.reflected is None:
            return self
        return SimulationResult(
            integrator=self.integrator,
            discretization=self.discretization,
            dt=self.dt,
            num_steps=self.num_steps,
            stimulus=self.stimulus,
            termination=self.termination,
            energy=self.energy,
            elapsed=self.elapsed,
        )

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        rule = (
            self.integrator
            if self.discretization is None
            else f"{self.integrator}/{self.discretization}"
        )
        return f"{self.stimulus!r} through {rule}: {self.energy.summary()}"

    def to_dict(self, *, include_waveforms: bool = False) -> dict:
        """JSON-serializable dictionary (exact :meth:`from_dict` inverse).

        Waveforms are excluded by default — a result headed for the
        content-addressed store or an HTTP response only needs the
        witness, not megabytes of samples.
        """
        payload = {
            "integrator": self.integrator,
            "discretization": self.discretization,
            "dt": float(self.dt),
            "num_steps": int(self.num_steps),
            "stimulus": self.stimulus.to_dict(),
            "termination": self.termination.to_dict(),
            "energy": self.energy.to_dict(),
            "elapsed": float(self.elapsed),
        }
        if include_waveforms and self.incident is not None:
            payload["incident"] = to_jsonable(self.incident)
            payload["reflected"] = to_jsonable(self.reflected)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result from a :meth:`to_dict` payload."""
        incident = payload.get("incident")
        reflected = payload.get("reflected")
        return cls(
            integrator=str(payload["integrator"]),
            discretization=(
                None
                if payload.get("discretization") is None
                else str(payload["discretization"])
            ),
            dt=float_from_jsonable(payload["dt"]),
            num_steps=int(payload["num_steps"]),
            stimulus=Stimulus.from_dict(payload["stimulus"]),
            termination=Termination.from_dict(payload["termination"]),
            energy=EnergyReport.from_dict(payload["energy"]),
            elapsed=float_from_jsonable(payload["elapsed"]),
            incident=(
                None
                if incident is None
                else float_array_from_jsonable(incident, ndim=2)
            ),
            reflected=(
                None
                if reflected is None
                else float_array_from_jsonable(reflected, ndim=2)
            ),
        )

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.integrator}, steps={self.num_steps},"
            f" gain={self.energy.energy_gain:.6f})"
        )


def _as_stimulus(stimulus) -> Stimulus:
    if isinstance(stimulus, Stimulus):
        return stimulus
    if isinstance(stimulus, str):
        return Stimulus(kind=stimulus)
    if isinstance(stimulus, dict):
        return Stimulus.from_dict(stimulus)
    raise TypeError(
        f"stimulus must be a Stimulus, kind string, or to_dict() payload,"
        f" got {type(stimulus).__name__}"
    )


def _statespace_of(model: ModelLike) -> StateSpace:
    if isinstance(model, StateSpace):
        return model
    if isinstance(model, SimoRealization):
        return model.to_statespace()
    from repro.macromodel.realization import pole_residue_to_simo

    return pole_residue_to_simo(model).to_statespace()


def simulate(
    model: ModelLike,
    stimulus: Union[Stimulus, str, dict] = "prbs",
    *,
    dt: Optional[float] = None,
    num_steps: int = 4096,
    integrator: str = "recursive",
    discretization: str = "tustin",
    termination: Optional[Termination] = None,
    tol: float = DEFAULT_ENERGY_TOL,
    keep_waveforms: bool = True,
) -> SimulationResult:
    """Run one transient simulation and meter the port energies.

    Parameters
    ----------
    model:
        A :class:`PoleResidueModel`, :class:`SimoRealization`, or dense
        :class:`StateSpace`.  Recursive convolution requires the
        pole/residue form; the state-space integrator accepts all three
        (structured models are realized densely first).
    stimulus:
        A :class:`Stimulus`, a kind string (``"prbs"``, ``"impulse"``,
        ...) using that kind's defaults, or a ``Stimulus.to_dict()``
        payload.
    dt:
        Timestep; defaults to :func:`default_timestep`.
    num_steps:
        Window length in samples.
    integrator:
        ``"recursive"`` (exact exponential updates on the poles) or
        ``"statespace"`` (discretized dense stepping).
    discretization:
        ``"tustin"`` or ``"zoh"`` — state-space integrator only.
    termination:
        Port closing network; matched (reflectionless) by default.
    tol:
        Energy-gain slack of the passivity verdict.
    keep_waveforms:
        Keep the simulated wave arrays on the result (drop them for
        compact store/service payloads).
    """
    ensure_choice(integrator, "integrator", INTEGRATORS)
    ensure_choice(discretization, "discretization", DISCRETIZATIONS)
    num_steps = ensure_positive_int(num_steps, "num_steps")
    stim = _as_stimulus(stimulus)
    term = termination if termination is not None else Termination.matched()
    if integrator == "recursive":
        if not isinstance(model, PoleResidueModel):
            raise TypeError(
                "the recursive-convolution integrator needs a"
                f" PoleResidueModel, got {type(model).__name__}; use"
                " integrator='statespace' for realized models"
            )
        target: ModelLike = model
    else:
        target = _statespace_of(model)
    if dt is None:
        dt = default_timestep(
            model, freq=stim.freq if stim.kind == "tone" else None
        )
    dt = ensure_positive_float(dt, "dt")
    sources = stim.waveforms(num_steps, dt, model.num_ports)
    started = time.perf_counter()
    incident, reflected = closed_loop_response(
        target, sources, dt, term, method=discretization
    )
    elapsed = time.perf_counter() - started
    energy = energy_report(incident, reflected, dt, tol=tol)
    return SimulationResult(
        integrator=integrator,
        discretization=None if integrator == "recursive" else discretization,
        dt=float(dt),
        num_steps=num_steps,
        stimulus=stim,
        termination=term,
        energy=energy,
        elapsed=float(elapsed),
        incident=incident if keep_waveforms else None,
        reflected=reflected if keep_waveforms else None,
    )
