"""Time-domain simulation subsystem: transient validation of macromodels.

The frequency-domain pipeline (fit → characterize → enforce) certifies
passivity analytically; this package demonstrates the *consequence* —
a non-passive macromodel manufactures energy once embedded in a
circuit, a repaired one does not:

    from repro.synth import random_macromodel
    from repro.timedomain import Stimulus, simulate

    model = random_macromodel(20, 2, seed=7, sigma_target=1.05)
    result = simulate(model, Stimulus.prbs(seed=3), num_steps=8192)
    print(result.energy.summary())      # energy gain, per-port balance

Layers: :mod:`~repro.timedomain.stimulus` (impulse / step / trapezoid /
PRBS / tone excitations, seeded and serializable),
:mod:`~repro.timedomain.terminations` (resistive source networks
closing the p-port), :mod:`~repro.timedomain.integrators` (exact
recursive convolution on the pole/residue form, Tustin/ZOH state-space
stepping), :mod:`~repro.timedomain.energy` (cumulative port-energy
passivity witnesses), :mod:`~repro.timedomain.fft` (impulse-response ↔
``transfer_many`` consistency oracle), and
:mod:`~repro.timedomain.engine` (the :func:`simulate` front door the
session facade, CLI, batch runner, and HTTP service share).
"""

from repro.timedomain.energy import EnergyReport, energy_report
from repro.timedomain.engine import (
    INTEGRATORS,
    SimulationResult,
    default_timestep,
    simulate,
)
from repro.timedomain.fft import (
    FftCheck,
    discrete_transfer_many,
    folded_transfer_many,
    impulse_fft_check,
)
from repro.timedomain.integrators import (
    DISCRETIZATIONS,
    closed_loop_response,
    discretize_statespace,
    recursive_coefficients,
    recursive_convolution,
    recursive_convolution_reference,
    statespace_step,
)
from repro.timedomain.stimulus import STIMULUS_KINDS, Stimulus, worst_tone
from repro.timedomain.terminations import Termination

__all__ = [
    "DISCRETIZATIONS",
    "EnergyReport",
    "FftCheck",
    "INTEGRATORS",
    "STIMULUS_KINDS",
    "SimulationResult",
    "Stimulus",
    "Termination",
    "closed_loop_response",
    "default_timestep",
    "discrete_transfer_many",
    "discretize_statespace",
    "energy_report",
    "folded_transfer_many",
    "impulse_fft_check",
    "recursive_coefficients",
    "recursive_convolution",
    "recursive_convolution_reference",
    "simulate",
    "statespace_step",
    "worst_tone",
]
