"""FFT cross-check: simulated impulse response vs frequency response.

The subsystem's internal consistency oracle ties the time-domain
integrator back to the frequency-domain kernels it must agree with.
Two identities are checked, both built on the fact that recursive
convolution is an *exact* LTI map for piecewise-linear input:

1. **Discrete identity (machine precision).**  The recurrence has the
   closed-form discrete transfer function

   .. math::

       \\hat H(z) = D + \\sum_m R_m
           \\frac{\\beta_m + \\gamma_m z}{z - \\alpha_m},

   built from the model data and the exact PWL weights — *independent*
   of the stepping loop.  The FFT of a simulated impulse response must
   match it on the DFT grid to rounding error; any bug in the
   recurrence, the chunked scan, or the residue contraction breaks it.

2. **Folded continuous identity (truncation-controlled).**  Sampling
   the response to PWL input folds the continuous axis onto the circle
   with triangular-interpolation weights:

   .. math::

       \\hat H(e^{i\\theta}) = \\sum_{m \\in \\mathbb{Z}}
           \\operatorname{sinc}^2\\!\\big(\\tfrac{\\theta}{2} + \\pi m\\big)
           \\; H\\!\\Big( i\\,\\frac{\\theta + 2\\pi m}{dt} \\Big),

   a convex combination (the ``sinc^2`` weights are a partition of
   unity) of :meth:`PoleResidueModel.transfer_many` values on the DFT
   grid and its alias images.  Truncating the fold at ``aliases`` terms
   leaves an error decaying like ``aliases^-3``; with a handful of
   terms the simulated spectrum matches ``transfer_many`` to below
   1e-6.  This identity is also why energy-based passivity witnesses
   are sound: ``sigma_max(H) <= 1`` everywhere forces
   ``sigma_max(\\hat H) <= 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.macromodel.rational import PoleResidueModel
from repro.timedomain.integrators import (
    recursive_coefficients,
    recursive_convolution,
)
from repro.utils.serialization import to_jsonable
from repro.utils.validation import ensure_positive_float, ensure_positive_int

__all__ = [
    "FftCheck",
    "discrete_transfer_many",
    "folded_transfer_many",
    "impulse_fft_check",
]


def discrete_transfer_many(
    model: PoleResidueModel, dt: float, thetas
) -> np.ndarray:
    """Exact discrete transfer function of the PWL recurrence.

    Evaluates ``Hhat(e^(i theta))`` on an array of digital frequencies
    ``thetas`` (radians/sample); returns ``(K, p, p)`` complex.
    """
    alpha, beta, gamma = recursive_coefficients(model.poles, dt)
    thetas = np.asarray(thetas, dtype=float).reshape(-1)
    z = np.exp(1j * thetas)
    coef = (beta[None, :] + gamma[None, :] * z[:, None]) / (
        z[:, None] - alpha[None, :]
    )
    return model.d[None].astype(complex) + np.einsum(
        "km,mij->kij", coef, model.residues
    )


def folded_transfer_many(
    model: PoleResidueModel, dt: float, thetas, *, aliases: int = 16
) -> np.ndarray:
    """Alias-fold ``transfer_many`` onto the digital frequency circle.

    The constant term enters exactly (its ``sinc^2`` weights are a full
    partition of unity), so only the strictly proper part is truncated
    at ``m = -aliases..aliases``; the dropped tail decays like
    ``aliases^-3``.  Returns ``(K, p, p)``.
    """
    ensure_positive_int(aliases, "aliases")
    dt = ensure_positive_float(dt, "dt")
    thetas = np.asarray(thetas, dtype=float).reshape(-1)
    ms = np.arange(-aliases, aliases + 1)
    phi = thetas[:, None] / 2.0 + np.pi * ms[None, :]  # (K, A)
    weights = np.sinc(phi / np.pi) ** 2
    s_points = 1j * (thetas[:, None] + 2.0 * np.pi * ms[None, :]) / dt
    h = model.transfer_many(s_points.ravel()).reshape(
        thetas.size, ms.size, model.num_ports, model.num_ports
    )
    proper = h - model.d[None, None].astype(complex)
    return model.d[None].astype(complex) + np.einsum(
        "ka,kaij->kij", weights, proper
    )


@dataclass(frozen=True)
class FftCheck:
    """Outcome of :func:`impulse_fft_check`.

    ``max_discrete_error`` and ``max_folded_error`` are entrywise
    deviations relative to the spectrum's peak magnitude (``scale``);
    ``tail_magnitude`` is the largest impulse-response sample in the
    final 2% of the window relative to the largest overall — a window
    under-resolution diagnostic (wraparound contaminates the FFT when
    the response has not decayed).
    """

    dt: float
    num_steps: int
    aliases: int
    scale: float
    max_discrete_error: float
    max_folded_error: float
    tail_magnitude: float

    def ok(self, tol: float = 1e-6) -> bool:
        """True when both identities hold to the given relative tolerance."""
        return (
            self.max_discrete_error <= tol and self.max_folded_error <= tol
        )

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of the check outcome."""
        return to_jsonable(
            {
                "dt": float(self.dt),
                "num_steps": int(self.num_steps),
                "aliases": int(self.aliases),
                "scale": float(self.scale),
                "max_discrete_error": float(self.max_discrete_error),
                "max_folded_error": float(self.max_folded_error),
                "tail_magnitude": float(self.tail_magnitude),
            }
        )


def impulse_fft_check(
    model: PoleResidueModel,
    *,
    dt: float,
    num_steps: int,
    aliases: int = 16,
    impulse_index: int = 1,
) -> FftCheck:
    """Cross-check the integrator against the frequency-domain kernels.

    Simulates one impulse per port through
    :func:`~repro.timedomain.integrators.recursive_convolution`,
    deconvolves the spectra (``FFT(b) / FFT(a)``), and compares the
    resulting ``(K, p, p)`` transfer samples against both the exact
    discrete transfer function and the alias-folded ``transfer_many``
    reference on the full DFT grid.
    """
    num_steps = ensure_positive_int(num_steps, "num_steps")
    impulse_index = ensure_positive_int(impulse_index, "impulse_index")
    if impulse_index >= num_steps:
        raise ValueError(
            f"impulse_index ({impulse_index}) must fall inside the window"
            f" ({num_steps} steps)"
        )
    p = model.num_ports
    spectra = np.empty((num_steps, p, p), dtype=complex)
    tail = 0.0
    peak = 0.0
    tail_start = max(1, num_steps - max(1, num_steps // 50))
    for k in range(p):
        u = np.zeros((num_steps, p))
        u[impulse_index, k] = 1.0
        b = recursive_convolution(model, u, dt)
        spectra[:, :, k] = np.fft.fft(b, axis=0)
        peak = max(peak, float(np.max(np.abs(b))))
        tail = max(tail, float(np.max(np.abs(b[tail_start:]))))
    thetas = 2.0 * np.pi * np.arange(num_steps) / num_steps
    # Deconvolve the impulse placement phase (FFT(a) = exp(-i theta n0)).
    spectra *= np.exp(1j * thetas * impulse_index)[:, None, None]
    discrete = discrete_transfer_many(model, dt, thetas)
    signed = np.where(thetas <= np.pi, thetas, thetas - 2.0 * np.pi)
    folded = folded_transfer_many(model, dt, signed, aliases=aliases)
    scale = float(np.max(np.abs(discrete)))
    denom = scale if scale > 0.0 else 1.0
    return FftCheck(
        dt=float(dt),
        num_steps=int(num_steps),
        aliases=int(aliases),
        scale=scale,
        max_discrete_error=float(np.max(np.abs(spectra - discrete))) / denom,
        max_folded_error=float(np.max(np.abs(spectra - folded))) / denom,
        tail_magnitude=tail / peak if peak > 0.0 else 0.0,
    )
